"""X1 — full-system realism check (extension).

Reruns the RL-vs-reactive comparison with cpuidle C-states, DVFS
transition costs, and thermals enabled (the RL policy trains inside the
full-system simulator too).  Shape target: the headline conclusion
survives the added realism.  Implementation:
:func:`repro.experiments.x1_full_system`.
"""

from __future__ import annotations

from repro.experiments import x1_full_system
from repro.qos.energy_per_qos import improvement_percent

from conftest import write_result


def test_x1_full_system(benchmark):
    result = benchmark.pedantic(x1_full_system, rounds=1, iterations=1)
    metrics = {
        f"{g}.mean_energy_per_qos_j": result.mean_j(g)
        for g in ("rl-policy", "performance", "ondemand", "interactive")
    }
    for scenario, qos in result.rl_qos.items():
        metrics[f"{scenario}.rl_qos"] = qos
    write_result("x1_full_system", result.report, metrics=metrics)
    rl_mean = result.mean_j("rl-policy")
    for g in ("performance", "ondemand", "interactive"):
        gain = improvement_percent(result.mean_j(g), rl_mean)
        assert gain > 0.0, f"RL loses to {g} under full-system realism"
    for scenario, qos in result.rl_qos.items():
        assert qos > 0.93, f"QoS compromised on {scenario}"
