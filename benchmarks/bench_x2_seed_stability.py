"""X2 — seed stability of the headline gap (extension).

Repeats the RL-vs-governors comparison over several evaluation seeds on
the gaming scenario.  Shape target: the gap to the jumpy reactive
governors is significant (non-overlapping CIs); conservative's slow ramp
is well matched to gaming's long steady phases, so on this one scenario
RL only has to stay in its band (E1 shows it wins across the full set).
Implementation: :func:`repro.experiments.x2_seed_stability`.
"""

from __future__ import annotations

from repro.experiments import x2_seed_stability

from conftest import write_result


def test_x2_seed_stability(benchmark):
    result = benchmark.pedantic(x2_seed_stability, rounds=1, iterations=1)
    metrics = {
        f"{g}.mean_energy_per_qos_j": m.mean
        for g, m in result.measures.items()
    }
    write_result("x2_seed_stability", result.report, metrics=metrics)
    rl = result.measures["rl-policy"]
    ondemand = result.measures["ondemand"]
    interactive = result.measures["interactive"]
    conservative = result.measures["conservative"]
    assert rl.mean < ondemand.mean
    assert not rl.overlaps(ondemand)
    assert rl.mean < interactive.mean
    assert not rl.overlaps(interactive)
    assert rl.mean < conservative.mean * 1.15
