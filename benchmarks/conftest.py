"""Shared machinery for the experiment benches.

Every bench regenerates one table or figure of the paper (see
DESIGN.md's experiment index).  Heavy shared computations (the full
scenarios x governors sweep) are session-cached so E1/E2/E3 pay for one
sweep.  Each bench writes its rendered table into
``benchmarks/results/<bench>.txt`` so EXPERIMENTS.md numbers can be
traced to a file.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.sweep import SweepResult
from repro.experiments import run_headline_sweep

RESULTS_DIR = Path(__file__).parent / "results"

# One knob for total bench runtime: evaluation trace length and RL
# training budget used by the sweep-based benches.
EVAL_DURATION_S = 20.0
TRAIN_EPISODES = 20
EVAL_SEED = 100


def write_result(name: str, text: str) -> None:
    """Persist a bench's rendered table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


@pytest.fixture(scope="session")
def full_sweep() -> SweepResult:
    """The E1/E2/E3 data: six governors + RL over the six-scenario set."""
    return run_headline_sweep(
        duration_s=EVAL_DURATION_S,
        eval_seed=EVAL_SEED,
        train_episodes=TRAIN_EPISODES,
    )
