"""Shared machinery for the experiment benches.

Every bench regenerates one table or figure of the paper (see
DESIGN.md's experiment index).  Heavy shared computations (the full
scenarios x governors sweep) are session-cached so E1/E2/E3 pay for one
sweep — and that sweep fans out across all CPU cores through
``repro.fleet``, whose rows are bit-identical to a serial run.  Each
bench writes its rendered table into ``benchmarks/results/<bench>.txt``
so EXPERIMENTS.md numbers can be traced to a file; benches that pass a
``metrics`` mapping additionally get a machine-readable
``benchmarks/results/<bench>.json`` so the perf trajectory can be
tracked across PRs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.analysis.sweep import SweepResult
from repro.fleet import FleetResult, FleetSpec, fleet_summary, run_fleet
from repro.governors import BASELINE_SIX
from repro.perf import LEDGER_ENV_VAR, new_run_id, record_run
from repro.workload.scenarios import EVALUATION_SET

RESULTS_DIR = Path(__file__).parent / "results"

# One knob for total bench runtime: evaluation trace length and RL
# training budget used by the sweep-based benches.
EVAL_DURATION_S = 20.0
TRAIN_EPISODES = 20
EVAL_SEED = 100

# All benches of one pytest invocation share a ledger run id, so
# ``repro perf gate`` sees them as one "current" run.  The ledger is
# anchored at the repo root (not the cwd) unless REPRO_PERF_LEDGER says
# otherwise.
_BENCH_RUN_ID = new_run_id()
_LEDGER_PATH = os.environ.get(LEDGER_ENV_VAR) or str(
    Path(__file__).parent.parent / ".repro" / "perf-ledger.jsonl"
)


def write_result(
    name: str, text: str, metrics: dict[str, float] | None = None
) -> None:
    """Persist a bench's rendered table under benchmarks/results/.

    Args:
        name: Bench id (the file stem).
        text: The rendered table, written to ``<name>.txt``.
        metrics: Optional metric-name -> value mapping, written to
            ``<name>.json`` for machine-readable tracking across PRs
            and appended to the performance ledger (``repro.perf``) so
            ``repro perf gate`` can test the trajectory.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if metrics is not None:
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(metrics, indent=2, sort_keys=True) + "\n"
        )
        record_run(
            "bench", name, metrics,
            {"duration_s": EVAL_DURATION_S, "episodes": TRAIN_EPISODES,
             "seed": EVAL_SEED},
            run_id=_BENCH_RUN_ID, path=_LEDGER_PATH,
        )
    print()
    print(text)


@pytest.fixture(scope="session")
def headline_fleet() -> FleetResult:
    """The E1/E2/E3 grid executed through the fleet runner on all cores.

    Six governors + RL over the six-scenario set; rows are bit-identical
    to the serial :func:`repro.experiments.run_headline_sweep` (pinned by
    ``tests/test_fleet.py``), and the per-job wall clocks let benches
    report the serial-vs-parallel wall-clock ratio.
    """
    spec = FleetSpec(
        scenarios=tuple(EVALUATION_SET),
        governors=tuple(BASELINE_SIX),
        seeds=(EVAL_SEED,),
        include_rl=True,
        duration_s=EVAL_DURATION_S,
        train_episodes=TRAIN_EPISODES,
    )
    return run_fleet(spec, jobs=os.cpu_count())


@pytest.fixture(scope="session")
def full_sweep(headline_fleet: FleetResult) -> SweepResult:
    """The E1/E2/E3 data: six governors + RL over the six-scenario set."""
    return headline_fleet.sweep_result()


def fleet_footer(fleet: FleetResult) -> str:
    """The execution-summary lines benches append to their tables."""
    return "fleet execution (shared E1/E2/E3 sweep):\n" + fleet_summary(fleet)
