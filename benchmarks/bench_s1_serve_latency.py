"""S1 — served decision latency.

The serving claim behind the subsystem: a policy served from a bounded
asyncio queue answers decision requests at sub-millisecond latency, so
putting a service boundary in front of the Q-table does not erase the
paper's software-vs-hardware latency argument (E4's 3.92x/40x; compare
programmatically via ``repro latency --format json``).  The bench boots
a :class:`repro.serve.PolicyServer` from a freshly trained snapshot,
streams decision requests through it under a metrics capture, and reads
the p50/p99 off the ``serve.decision_latency_s`` histogram — the same
numbers ``repro serve --ledger`` records in production.
"""

from __future__ import annotations

import asyncio
import time

from repro import obs
from repro.core.trainer import train_policy
from repro.obs.metrics import histogram_quantile
from repro.serve import DecisionRequest, PolicyServer, ServeConfig
from repro.serve.protocol import observation_from_mapping
from repro.soc.presets import tiny_test_chip
from repro.workload.scenarios import get_scenario

from conftest import write_result

N_REQUESTS = 2000


def _serve_round() -> tuple[dict, object]:
    chip = tiny_test_chip()
    policies = train_policy(
        chip, get_scenario("audio_playback"), episodes=3,
        episode_duration_s=3.0,
    ).policies
    server = PolicyServer(
        policies, tiny_test_chip(), ServeConfig(workers=2)
    )
    cluster = server.chip.cluster_names[0]
    requests = [
        DecisionRequest(
            observation=observation_from_mapping(
                {"cluster": cluster, "utilization": (i % 10) / 10},
                server.chip,
            ),
            request_id=f"r{i}",
        )
        for i in range(N_REQUESTS)
    ]

    # Closed loop: await each reply before submitting the next, so the
    # histogram reads pure service latency, not self-inflicted queue
    # wait from batch submission.
    async def run() -> None:
        await server.start()
        for request in requests:
            await server.request(request)
        await server.shutdown()

    with obs.capture(trace=False) as session:
        start = time.perf_counter()
        asyncio.run(run())
        elapsed = time.perf_counter() - start
    return session.metrics.snapshot(), (server, elapsed)


def test_s1_serve_latency(benchmark):
    snapshot, (server, elapsed) = benchmark.pedantic(
        _serve_round, rounds=1, iterations=1
    )
    hist = snapshot["histograms"]["serve.decision_latency_s"]
    p50 = histogram_quantile(hist, 0.50)
    p99 = histogram_quantile(hist, 0.99)
    mean = hist["sum"] / hist["count"]
    throughput = N_REQUESTS / elapsed
    metrics = {
        "decision_latency_p50_s": p50,
        "decision_latency_p99_s": p99,
        "decision_latency_mean_s": mean,
        "throughput_rps": throughput,
        "decisions": float(server.stats.served_decisions),
        "rejected": float(server.stats.rejected),
    }
    report = "\n".join(
        [
            f"S1: served decision latency ({N_REQUESTS} closed-loop "
            f"requests, {server.config.workers} workers)",
            f"  p50:        {p50 * 1e6:8.1f} us",
            f"  p99:        {p99 * 1e6:8.1f} us",
            f"  mean:       {mean * 1e6:8.1f} us",
            f"  throughput: {throughput:8.0f} decisions/s",
            f"  served: {server.stats.served_decisions}, "
            f"rejected: {server.stats.rejected}",
        ]
    )
    write_result("s1_serve_latency", report, metrics=metrics)
    assert server.stats.served_decisions == N_REQUESTS
    assert server.stats.rejected == 0
    assert hist["count"] == N_REQUESTS
    # Generous sanity band: a served decision must stay sub-10ms even on
    # a loaded CI box; locally it sits in the tens-of-microseconds.
    assert p50 < 0.01
    assert p99 < 0.05
