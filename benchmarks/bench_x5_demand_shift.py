"""X5 — robustness to demand shift (extension).

A policy trained on nominal gaming demand faces the same scenario at
0.7x and 1.3x per-frame work (an app update, a heavier scene).  Shape
target: with online learning enabled the policy keeps beating ondemand
at every shift level and holds QoS on the heavier-than-trained load.
Implementation: :mod:`repro.workload.perturb` transforms.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core.trainer import train_policy
from repro.governors import create
from repro.sim.engine import Simulator
from repro.soc.presets import exynos5422
from repro.workload.perturb import scale_demand
from repro.workload.scenarios import get_scenario

from conftest import write_result

FACTORS = [0.7, 1.0, 1.3]


def _run():
    chip = exynos5422()
    scenario = get_scenario("gaming")
    training = train_policy(chip, scenario, episodes=16, episode_duration_s=20.0)
    base_trace = scenario.trace(20.0, seed=100)

    rows = []
    for factor in FACTORS:
        trace = scale_demand(base_trace, factor)
        # Online adaptation stays on, as deployed.
        rl = Simulator(chip, trace, training.policies).run()
        ondemand = Simulator(chip, trace, lambda c: create("ondemand")).run()
        rows.append(
            (factor, rl.energy_per_qos_j * 1e3, rl.qos.mean_qos,
             ondemand.energy_per_qos_j * 1e3, ondemand.qos.mean_qos)
        )
    return rows


def _report(rows) -> str:
    return format_table(
        ["demand x", "RL E/QoS [mJ]", "RL QoS", "ondemand E/QoS [mJ]",
         "ondemand QoS"],
        rows,
        title="X5: gaming-trained policy under demand shift",
    )


def test_x5_demand_shift(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    metrics: dict[str, float] = {}
    for factor, rl_j, rl_qos, od_j, od_qos in rows:
        slug = f"x{factor:g}".replace(".", "_")
        metrics[f"{slug}.rl_energy_per_qos_mj"] = rl_j
        metrics[f"{slug}.rl_qos"] = rl_qos
        metrics[f"{slug}.ondemand_energy_per_qos_mj"] = od_j
    write_result("x5_demand_shift", _report(rows), metrics=metrics)
    for factor, rl_j, rl_qos, od_j, _od_qos in rows:
        if factor >= 1.0:
            # At and above the trained demand the policy must stay ahead.
            assert rl_j < od_j, f"loses to ondemand at {factor}x demand"
        else:
            # Lighter-than-trained load favours ondemand's race-to-idle;
            # the adapting policy must stay within 10%.
            assert rl_j < od_j * 1.10, f"far behind ondemand at {factor}x"
        assert rl_qos > 0.9, f"QoS collapsed at {factor}x demand"
