"""E2 — per-scenario energy-per-QoS breakdown (the comparison figure).

Shape target: in every scenario the RL policy beats (or ties within 2%)
each canonical dynamic governor, and stays within 15% of the best
baseline overall — a per-scenario lucky *static* pick (userspace at just
the right OPP) may edge it out on an individual scenario, as long as RL
is never far behind.  Implementation:
:func:`repro.experiments.e2_per_scenario`.
"""

from __future__ import annotations

from repro.experiments import e2_per_scenario

from conftest import fleet_footer, write_result

DYNAMIC_GOVERNORS = ("performance", "powersave", "ondemand", "interactive")


def test_e2_per_scenario(benchmark, full_sweep, headline_fleet):
    result = benchmark.pedantic(
        e2_per_scenario, args=(full_sweep,), rounds=1, iterations=1
    )
    metrics = {
        f"{scenario}:{governor}:mj_per_unit": value * 1e3
        for (scenario, governor), value in result.cells_j.items()
    }
    metrics["fleet_speedup"] = headline_fleet.speedup
    write_result(
        "e2_per_scenario",
        result.report + "\n\n" + fleet_footer(headline_fleet),
        metrics=metrics,
    )
    for scenario in full_sweep.scenarios():
        rl = result.cells_j[(scenario, "rl-policy")]
        for g in DYNAMIC_GOVERNORS:
            assert rl <= result.cells_j[(scenario, g)] * 1.02, (scenario, g)
        assert result.rl_within(scenario, 1.15), scenario
