"""O3 — learning-ledger overhead on the training loop.

PR 9's learning ledger appends one structured record per training
episode (reward, TD-error stats, epsilon, Q norms, coverage, greedy
churn).  The contract mirrors O1/O2's: with no recorder attached,
``train_policy`` must not pay a single extra branch per step; with a
recorder attached, the ledger is observation-only — every episode
record and every learned Q-value must be bit-identical to the
unledgered run, because the recorder only *reads* learner state after
each episode.  This bench pins both: bit-identical training results,
and a sane bound on the cost of snapshotting greedy policies and
appending JSONL.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.core.trainer import TrainingResult, train_policy
from repro.obs import LearnRecorder, read_learn_log
from repro.soc.presets import tiny_test_chip
from repro.workload.scenarios import get_scenario

from conftest import write_result

EPISODES = 6
EPISODE_S = 3.0
REPEATS = 3


def _train_round(recorder: LearnRecorder | None) -> tuple[TrainingResult, float]:
    """One training run; returns (result, wall seconds)."""
    start = time.perf_counter()
    result = train_policy(
        tiny_test_chip(), get_scenario("audio_playback"),
        episodes=EPISODES, episode_duration_s=EPISODE_S,
        recorder=recorder,
    )
    return result, time.perf_counter() - start


def _best_of(repeats: int, make_recorder) -> float:
    best = math.inf
    for _ in range(repeats):
        best = min(best, _train_round(make_recorder())[1])
    return best


def _fingerprint(result: TrainingResult) -> list[tuple[float, float, float]]:
    """The per-episode numbers that must not move under observation."""
    return [
        (r.reward, r.energy_per_qos_j, r.td_error_mean_abs)
        for r in result.history
    ]


def test_o3_learn_overhead(benchmark, tmp_path):
    baseline, _ = benchmark.pedantic(
        lambda: _train_round(None), rounds=1, iterations=1
    )

    plain_s = _best_of(REPEATS, lambda: None)
    ledgered, _ = _train_round(LearnRecorder(tmp_path / "bench-o3.jsonl"))
    ledger_dir = tmp_path / "rounds"
    counter = iter(range(REPEATS))
    ledgered_s = _best_of(
        REPEATS,
        lambda: LearnRecorder(ledger_dir / f"round-{next(counter)}.jsonl"),
    )

    # The ledger must not change a single episode or Q-value.
    assert _fingerprint(ledgered) == _fingerprint(baseline)
    for name, policy in baseline.policies.items():
        assert np.array_equal(
            ledgered.policies[name].agent.table.values,
            policy.agent.table.values,
        ), f"ledger perturbed the learned table for cluster {name!r}"

    records = read_learn_log(tmp_path / "bench-o3.jsonl")
    assert len(records) == EPISODES
    assert [r["episode"] for r in records] == list(range(EPISODES))
    assert all(r["scenario"] == "audio_playback" for r in records)

    ratio = ledgered_s / plain_s if plain_s > 0 else math.inf
    per_episode_us = (ledgered_s - plain_s) / EPISODES * 1e6
    lines = [
        "O3: learning-ledger overhead "
        f"({EPISODES} episodes x {EPISODE_S:.0f}s on tiny, "
        f"best of {REPEATS})",
        f"  no recorder : {plain_s * 1e3:8.2f} ms",
        f"  recorder    : {ledgered_s * 1e3:8.2f} ms "
        f"({ratio:.2f}x, {len(records)} ledger records)",
        f"  per episode : {per_episode_us:+.1f} us "
        "(greedy snapshot + TD-stat merge + one JSONL append)",
    ]
    write_result(
        "o3_learn_overhead",
        "\n".join(lines),
        metrics={
            "plain_s": plain_s,
            "ledgered_s": ledgered_s,
            "ledgered_over_plain": ratio,
        },
    )
    # Snapshotting argmax tables and appending one JSON line per
    # episode is allowed to cost, but not pathologically (loose: CI
    # machines are noisy and episodes here are tiny).
    assert ratio < 10.0
