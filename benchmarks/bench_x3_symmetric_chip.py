"""X3 — cross-chip generality: the symmetric-CPU system (extension).

The companion paper evaluates on both asymmetric (big.LITTLE) and
symmetric multicore CPUs; the policy must not depend on heterogeneity.
This bench reruns the comparison on the single-cluster
``symmetric_quad`` preset.  Shape target: the RL policy still beats the
reactive governors' mean on the symmetric chip.
"""

from __future__ import annotations

from repro.analysis.stats import mean
from repro.analysis.tables import format_table
from repro.experiments import run_headline_sweep
from repro.qos.energy_per_qos import improvement_percent
from repro.soc.presets import symmetric_quad

from conftest import write_result

GOVERNORS = ["performance", "powersave", "ondemand", "conservative", "interactive"]
SCENARIOS = ["web_browsing", "video_playback", "camera_preview"]


def _run():
    return run_headline_sweep(
        chip=symmetric_quad(),
        scenario_names=SCENARIOS,
        governor_names=GOVERNORS,
        duration_s=20.0,
        train_episodes=16,
    )


def _report(result) -> str:
    rows = []
    for scenario in result.scenarios():
        rows.append(
            [scenario]
            + [result.cell(scenario, g).energy_per_qos_j * 1e3
               for g in result.governors()]
        )
    table = format_table(
        ["scenario"] + result.governors(),
        rows,
        title="X3: energy/QoS [mJ/unit] on the symmetric quad-core chip",
    )
    baseline_mean = mean([result.mean_energy_per_qos(g) for g in GOVERNORS])
    rl = result.mean_energy_per_qos("rl-policy")
    gain = improvement_percent(baseline_mean, rl)
    return table + (
        f"\n\nimprovement vs the baselines' mean: {gain:.2f}% "
        "(companion paper reports symmetric-CPU savings too)"
    )


def test_x3_symmetric_chip(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    baseline_mean = mean([result.mean_energy_per_qos(g) for g in GOVERNORS])
    rl = result.mean_energy_per_qos("rl-policy")
    metrics = {
        f"{g}.mean_energy_per_qos_j": result.mean_energy_per_qos(g)
        for g in GOVERNORS + ["rl-policy"]
    }
    metrics["improvement_percent"] = improvement_percent(baseline_mean, rl)
    write_result("x3_symmetric_chip", _report(result), metrics=metrics)
    assert improvement_percent(baseline_mean, rl) > 10.0
    # QoS intact on every scenario.
    for scenario in result.scenarios():
        assert result.cell(scenario, "rl-policy").mean_qos > 0.93, scenario