"""L1 — lint driver speed: the summary cache must pay for itself.

The whole-program pass (``repro check --flow``) re-parses and
re-summarises every file it touches, so PR 8 added a content-addressed
summary cache (``.repro/lintcache``) and a ``--jobs`` fan-out.  This
bench pins the economics: a warm cache run over ``src/`` must be
strictly faster than the cold run that populated it, and the parallel
uncached path must agree with the serial one finding-for-finding.
Timings land in the perf ledger so ``repro perf gate`` tracks the
trajectory.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.lint import analyze_paths

from conftest import write_result

REPO_ROOT = Path(__file__).parent.parent
SRC = REPO_ROOT / "src"


def _timed(**kwargs):
    t0 = time.perf_counter()
    result = analyze_paths([SRC], **kwargs)
    return time.perf_counter() - t0, result


def test_l1_lint_speed(tmp_path):
    cache_dir = tmp_path / "lintcache"

    cold_s, cold = _timed(cache_dir=cache_dir)
    warm_s, warm = _timed(cache_dir=cache_dir)
    jobs = max(2, (os.cpu_count() or 2) // 2)
    parallel_s, parallel = _timed(cache=False, jobs=jobs)

    # The shipping tree is flow-clean, cold or warm, serial or parallel.
    assert cold.findings == []
    assert warm.findings == cold.findings
    assert parallel.findings == cold.findings
    assert parallel.suppressed == cold.suppressed

    # Cache accounting: everything misses cold, everything hits warm.
    assert cold.cache_hits == 0
    assert cold.cache_misses == cold.files_checked
    assert warm.cache_hits == warm.files_checked
    assert warm.cache_misses == 0

    # The acceptance bar: warm must beat cold outright.
    assert warm_s < cold_s

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    lines = [
        f"L1: lint driver speed over src/ ({cold.files_checked} files, "
        "flow analysis on)",
        f"  cold (empty cache)   : {cold_s * 1e3:8.1f} ms",
        f"  warm (all hits)      : {warm_s * 1e3:8.1f} ms "
        f"({speedup:.1f}x)",
        f"  uncached, --jobs {jobs}  : {parallel_s * 1e3:8.1f} ms",
    ]
    write_result(
        "l1_lint_speed",
        "\n".join(lines),
        metrics={
            "cold_s": cold_s,
            "warm_s": warm_s,
            "warm_speedup": speedup,
            "parallel_uncached_s": parallel_s,
        },
    )
