"""A6 — FPGA resource estimation for the hardware policy (extension).

Shape target: the reference design (270 states x 5 actions, Q7.8) fits
the smallest common Zynq part, resources grow monotonically with word
length, and the clocked RTL model agrees exactly with the analytical
pipeline on per-step cycles.  Implementation:
:func:`repro.experiments.a6_fpga_resources`.
"""

from __future__ import annotations

from repro.experiments import a6_fpga_resources

from conftest import write_result


def test_a6_fpga_resources(benchmark):
    result = benchmark(a6_fpga_resources)
    luts = [est.luts for est in result.estimates.values()]
    metrics = {
        "max_luts": float(max(luts)),
        "accelerator_power_w": result.accelerator_power_w,
    }
    write_result("a6_fpga_resources", result.report, metrics=metrics)
    assert result.reference_fits()
    assert luts == sorted(luts)
    for _, rtl_cycles, analytical in result.rtl_checks:
        assert rtl_cycles == analytical
    # The accelerator must not burn what it saves: < 10 mW against the
    # hundreds-of-mW E1 savings.
    assert result.accelerator_power_w < 0.01
