"""X7 — batched rollout backend: speedup with bit-identical results.

:mod:`repro.batch` vectorises table-free-governor rollouts (fixed OPP
for the whole run, so the chip/power/QoS models collapse to array
arithmetic) while promising results **bit-identical** to the serial
engine.  This bench runs a 32-rollout table-free sweep both ways and
pins the two halves of that promise:

* every rollout's ``energy_per_qos_j`` matches the serial engine with
  ``==`` (no tolerance), and
* the batch backend is at least 5x faster wall-clock.
"""

from __future__ import annotations

import itertools
import time

from repro.batch import run_batch
from repro.fleet.spec import JobSpec
from repro.fleet.worker import simulate_spec

from conftest import EVAL_DURATION_S, write_result

SCENARIOS = ("gaming", "web_browsing", "video_playback", "idle")
GOVERNORS = ("performance", "powersave", "userspace")
SEEDS = (100, 200, 300)
N_ROLLOUTS = 32
MIN_SPEEDUP = 5.0


def _specs() -> list[JobSpec]:
    grid = [
        JobSpec(scenario=scenario, governor=governor, seed=seed,
                duration_s=EVAL_DURATION_S)
        for scenario, governor, seed
        in itertools.product(SCENARIOS, GOVERNORS, SEEDS)
    ]
    # The grid is 36 rollouts; the bench contract is a 32-rollout sweep.
    return grid[:N_ROLLOUTS]


def test_x7_batch_speedup(benchmark):
    specs = _specs()
    assert len(specs) == N_ROLLOUTS

    t0 = time.perf_counter()
    serial = [simulate_spec(spec) for spec in specs]
    serial_s = time.perf_counter() - t0

    batch = benchmark(lambda: run_batch(specs))

    t0 = time.perf_counter()
    run_batch(specs)
    batch_s = time.perf_counter() - t0

    # Bit-identity first: a fast wrong answer is worthless.
    for spec, a, b in zip(specs, serial, batch):
        assert b.energy_per_qos_j == a.energy_per_qos_j, spec.job_id
        assert b.total_energy_j == a.total_energy_j, spec.job_id
        assert b.qos == a.qos, spec.job_id

    speedup = serial_s / batch_s if batch_s > 0 else float("inf")
    lines = [
        f"X7: batched rollout backend ({N_ROLLOUTS} table-free rollouts, "
        f"{EVAL_DURATION_S:.0f} s each)",
        f"  serial engine : {serial_s:8.3f} s",
        f"  batch backend : {batch_s:8.3f} s  ({speedup:.2f}x)",
        "  energy_per_qos_j bit-identical on every rollout",
    ]
    write_result(
        "x7_batch_speedup",
        "\n".join(lines),
        metrics={
            "serial_s": serial_s,
            "batch_s": batch_s,
            "speedup": speedup,
        },
    )
    assert speedup >= MIN_SPEEDUP
