"""E5 — learning convergence (figure).

After every training episode the policy is frozen and evaluated greedily
on one fixed held-out trace, isolating learning progress from workload
variance.  Shape target: the greedy curve descends from the untrained
policy and flattens at high QoS.  Implementation:
:func:`repro.experiments.e5_learning_curve`.

Convergence is judged by the shared detector primitives
(:mod:`repro.obs.learn`) under
:data:`repro.experiments.learning.E5_CONVERGENCE` — for a positive
series the plateau test is exactly the ``max/min < 1.25`` tail
heuristic this bench used before the detectors existed (pinned by
``tests/test_learn_obs.py``).
"""

from __future__ import annotations

from repro.experiments import e5_learning_curve
from repro.experiments.learning import E5_CONVERGENCE
from repro.obs import is_plateau

from conftest import write_result


def test_e5_convergence(benchmark):
    result = benchmark.pedantic(e5_learning_curve, rounds=1, iterations=1)
    converged_at = result.convergence_episode()
    metrics = {
        "start_energy_per_qos_j": result.start_j,
        "tail_energy_per_qos_j": result.tail_mean_j(),
        "tail_qos": result.tail_qos(),
        "episodes": float(len(result.curve)),
    }
    if converged_at is not None:
        metrics["converged_episode"] = float(converged_at)
    write_result("e5_convergence", result.report, metrics=metrics)
    late = result.tail_mean_j()
    assert late < result.start_j, (
        f"no learning: start {result.start_j:.4g}, late {late:.4g}"
    )
    tail = [
        run.energy_per_qos_j
        for _, run in result.curve[-E5_CONVERGENCE.window:]
    ]
    assert is_plateau(tail, E5_CONVERGENCE.reward_plateau_tol), (
        f"greedy curve still moving over its last "
        f"{E5_CONVERGENCE.window} episodes: {tail}"
    )
    assert converged_at is not None, "curve never plateaued"
    assert result.tail_qos() > 0.95
