"""E5 — learning convergence (figure).

After every training episode the policy is frozen and evaluated greedily
on one fixed held-out trace, isolating learning progress from workload
variance.  Shape target: the greedy curve descends from the untrained
policy and flattens at high QoS.  Implementation:
:func:`repro.experiments.e5_learning_curve`.
"""

from __future__ import annotations

from repro.experiments import e5_learning_curve

from conftest import write_result


def test_e5_convergence(benchmark):
    result = benchmark.pedantic(e5_learning_curve, rounds=1, iterations=1)
    metrics = {
        "start_energy_per_qos_j": result.start_j,
        "tail_energy_per_qos_j": result.tail_mean_j(),
        "tail_qos": result.tail_qos(),
        "episodes": float(len(result.curve)),
    }
    write_result("e5_convergence", result.report, metrics=metrics)
    late = result.tail_mean_j()
    assert late < result.start_j, (
        f"no learning: start {result.start_j:.4g}, late {late:.4g}"
    )
    tail = [run.energy_per_qos_j for _, run in result.curve[-4:]]
    assert max(tail) / min(tail) < 1.25
    assert result.tail_qos() > 0.95
