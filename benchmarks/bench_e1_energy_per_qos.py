"""E1 — the headline table: average energy-per-QoS, RL vs six governors.

Paper claim: "The average energy per unit quality of service (QoS) of
the proposed policy is lower than that of the previous six dynamic
voltage/frequency scaling governors by 31.66%."

Shape target: RL wins against every governor; the mean-of-six
improvement lands in the paper's ~30% band (we require >= 20%).
Implementation: :func:`repro.experiments.e1_energy_per_qos`.
"""

from __future__ import annotations

from repro.experiments import e1_energy_per_qos
from repro.governors import BASELINE_SIX

from conftest import fleet_footer, write_result


def test_e1_energy_per_qos(benchmark, full_sweep, headline_fleet):
    result = benchmark.pedantic(
        e1_energy_per_qos, args=(full_sweep,), rounds=1, iterations=1
    )
    metrics = {
        "improvement_percent": result.improvement_percent,
        "mean_of_six_mj_per_unit": result.mean_of_six_j * 1e3,
        "rl_mj_per_unit": result.rl_j * 1e3,
        "fleet_wall_s": headline_fleet.wall_s,
        "fleet_serial_wall_estimate_s": headline_fleet.serial_wall_estimate_s,
        "fleet_speedup": headline_fleet.speedup,
    }
    for g in BASELINE_SIX:
        metrics[f"improvement_vs_{g}_percent"] = (
            result.per_governor_improvement[g]
        )
    write_result(
        "e1_energy_per_qos",
        result.report + "\n\n" + fleet_footer(headline_fleet),
        metrics=metrics,
    )
    for g in BASELINE_SIX:
        assert result.per_governor_improvement[g] > 0.0, g
    assert result.improvement_percent > 20.0
