"""X6 — one generalist policy for every scenario (extension).

The deployed form of the paper's claim: a *single* policy (one Q-table
per cluster), curriculum-trained across the evaluation set, manages all
six scenarios.  Shape target: the generalist stays close to the
per-scenario specialists (which the E1/E2 sweep trains) and beats
ondemand on average.
"""

from __future__ import annotations

from repro.analysis.stats import mean
from repro.analysis.tables import format_table
from repro.core.trainer import evaluate_policy, train_curriculum
from repro.soc.presets import exynos5422
from repro.workload.scenarios import EVALUATION_SET, get_scenario

from conftest import EVAL_DURATION_S, EVAL_SEED, write_result


def _run(full_sweep):
    chip = exynos5422()
    # Two interleaved passes: revisiting each scenario counters the
    # mild forgetting a single long pass leaves on early scenarios.
    curriculum = [get_scenario(name) for name in EVALUATION_SET] * 2
    training = train_curriculum(
        chip, curriculum, episodes_per_scenario=3,
        episode_duration_s=EVAL_DURATION_S,
    )
    rows = []
    for name in EVALUATION_SET:
        trace = get_scenario(name).trace(EVAL_DURATION_S, seed=EVAL_SEED)
        generalist = evaluate_policy(chip, training.policies, trace)
        specialist_j = full_sweep.cell(name, "rl-policy").energy_per_qos_j
        ondemand_j = full_sweep.cell(name, "ondemand").energy_per_qos_j
        rows.append(
            (name, generalist.energy_per_qos_j * 1e3, specialist_j * 1e3,
             ondemand_j * 1e3, generalist.qos.mean_qos)
        )
    return rows


def _report(rows) -> str:
    return format_table(
        ["scenario", "generalist [mJ]", "specialist [mJ]", "ondemand [mJ]",
         "generalist QoS"],
        rows,
        title="X6: one curriculum-trained policy across every scenario",
    )


def test_x6_generalist(benchmark, full_sweep):
    rows = benchmark.pedantic(_run, args=(full_sweep,), rounds=1, iterations=1)
    generalist_mean = mean([r[1] for r in rows])
    specialist_mean = mean([r[2] for r in rows])
    ondemand_mean = mean([r[3] for r in rows])
    metrics = {
        "generalist_mean_mj": generalist_mean,
        "specialist_mean_mj": specialist_mean,
        "ondemand_mean_mj": ondemand_mean,
        "min_generalist_qos": min(r[-1] for r in rows),
    }
    write_result("x6_generalist", _report(rows), metrics=metrics)
    # The single policy is within 15% of six specialists on average...
    assert generalist_mean < specialist_mean * 1.15
    # ...and still clearly better than ondemand.
    assert generalist_mean < ondemand_mean
    for name, *_rest, qos in rows:
        assert qos > 0.9, name
