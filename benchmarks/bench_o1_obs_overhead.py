"""O1 — observability overhead: disabled probes must be near-free.

The engine, governors, and RL learners carry permanent probe points
(see ``docs/observability.md``).  With the hub disabled — the default —
each probe costs one attribute check, so an uninstrumented run must be
bit-identical to, and indistinguishable in wall-clock from, the
pre-observability engine.  This bench pins both properties: result
equality between disabled and enabled runs, and a sane bound on the
cost of actually collecting spans.
"""

from __future__ import annotations

import math
import time

from repro import obs
from repro.governors import create
from repro.sim.engine import Simulator
from repro.soc.presets import tiny_test_chip
from repro.workload.scenarios import get_scenario

from conftest import write_result

DURATION_S = 10.0
REPEATS = 5


def _run_once():
    trace = get_scenario("audio_playback").trace(DURATION_S, seed=9)
    sim = Simulator(tiny_test_chip(), trace, lambda c: create("ondemand"))
    return sim.run()


def _best_of(repeats: int) -> float:
    best = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        _run_once()
        best = min(best, time.perf_counter() - t0)
    return best


def test_o1_obs_overhead(benchmark):
    baseline = benchmark(_run_once)  # tracing disabled: the shipping path

    disabled_s = _best_of(REPEATS)
    with obs.capture() as session:
        enabled_result = _run_once()
        enabled_s = _best_of(REPEATS)

    # Disabled probes must not change a single bit of the simulation.
    assert enabled_result == baseline
    assert _run_once() == baseline

    n_intervals = sum(
        1 for s in session.tracer.spans if s.name == "engine.interval"
    )
    ratio = enabled_s / disabled_s if disabled_s > 0 else math.inf
    lines = [
        "O1: observability overhead "
        f"({DURATION_S:.0f} s audio_playback on tiny, best of {REPEATS})",
        f"  tracing disabled : {disabled_s * 1e3:8.2f} ms",
        f"  tracing enabled  : {enabled_s * 1e3:8.2f} ms "
        f"({ratio:.2f}x, {len(session.tracer.spans)} spans)",
        f"  per interval     : {len(session.tracer.spans) / n_intervals:.1f} "
        "spans, "
        f"{(enabled_s - disabled_s) / n_intervals * 1e6:+.1f} us",
    ]
    write_result(
        "o1_obs_overhead",
        "\n".join(lines),
        metrics={
            "disabled_s": disabled_s,
            "enabled_s": enabled_s,
            "enabled_over_disabled": ratio,
        },
    )
    # Collection is allowed to cost, but not pathologically (a loose
    # bound: CI machines are noisy).
    assert ratio < 10.0
