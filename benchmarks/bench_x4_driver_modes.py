"""X4 — CPU-side completion strategies for the accelerator (extension).

The paper's communication interface must be driven somehow; kernel
drivers choose between busy-poll and interrupt completion.  This bench
models both for the policy accelerator and reports per-request latency
and bus traffic.  Shape target: polling is lower-latency (the compute
time is far below any IRQ path), interrupts cost microseconds more but
a bounded number of register reads — the classic trade-off, and the
reason a sub-microsecond accelerator is polled in practice.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.hw.driver import AcceleratorDriver, DriverSpec
from repro.hw.fixed_point import DEFAULT_QFORMAT
from repro.hw.registers import RegisterFile

from conftest import write_result

REQUESTS = 200


def _serve(register_file: RegisterFile) -> None:
    register_file.consume_observation()
    register_file.publish_decision(1)


def _run():
    results = {}
    for mode, spec in [
        ("polling", DriverSpec(mode="polling", poll_interval_s=100e-9)),
        ("interrupt (5 us IRQ)", DriverSpec(mode="interrupt", irq_latency_s=5e-6)),
        ("interrupt (20 us IRQ)", DriverSpec(mode="interrupt", irq_latency_s=20e-6)),
    ]:
        registers = RegisterFile(qformat=DEFAULT_QFORMAT)
        driver = AcceleratorDriver(registers, spec=spec)
        for i in range(REQUESTS):
            driver.request((i % 6, 0, 2, 2), reward=-0.5, service=_serve)
        mean_polls = sum(t.polls for t in driver.transactions) / REQUESTS
        results[mode] = (driver.mean_latency_s, mean_polls)
    return results


def _report(results) -> str:
    rows = [
        (mode, latency * 1e6, polls)
        for mode, (latency, polls) in results.items()
    ]
    return format_table(
        ["completion mode", "mean latency [us]", "DECISION reads/request"],
        rows,
        title=f"X4: driver completion strategies over {REQUESTS} requests",
    )


def test_x4_driver_modes(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    metrics: dict[str, float] = {}
    for mode, (latency, polls) in results.items():
        slug = mode.split(" ")[0] if "(" not in mode else mode.replace(
            "interrupt (", "irq_").replace(" us IRQ)", "us")
        metrics[f"{slug}.mean_latency_s"] = latency
        metrics[f"{slug}.polls_per_request"] = polls
    write_result("x4_driver_modes", _report(results), metrics=metrics)
    polling = results["polling"][0]
    irq5 = results["interrupt (5 us IRQ)"][0]
    irq20 = results["interrupt (20 us IRQ)"][0]
    # Polling wins on latency for a sub-microsecond accelerator.
    assert polling < irq5 < irq20
    # And the polled path still lands under a microsecond end-to-end.
    assert polling < 1e-6
