"""X8 — lock-step RL training: speedup with bit-identical learning.

:mod:`repro.batch.rl` trains groups of structurally-matching
``rl-policy`` jobs lock-step — every rollout advances through the same
interval together, with the featurise → TD-update → select hot loop
batched across rollouts — while promising results **bit-identical** to
the serial :func:`repro.core.trainer.train_policy` path.  This bench
runs a 32-rollout RL sweep (train + greedy evaluation) both ways and
pins the two halves of that promise:

* every rollout's evaluation result matches the serial trainer with
  ``==`` (no tolerance) — energy, QoS report, switch counts — and
* the lock-step path is at least 5x faster wall-clock.
"""

from __future__ import annotations

import time

from repro.batch import run_batch
from repro.fleet.spec import JobSpec
from repro.fleet.worker import simulate_spec

from conftest import write_result

N_ROLLOUTS = 32
TRAIN_EPISODES = 3
EPISODE_S = 4.0
EVAL_S = 4.0
MIN_SPEEDUP = 5.0


def _specs() -> list[JobSpec]:
    return [
        JobSpec(
            scenario="web_browsing",
            governor="rl-policy",
            seed=100 + k,
            duration_s=EVAL_S,
            train_episodes=TRAIN_EPISODES,
            train_episode_s=EPISODE_S,
            train_base_seed=1000 * k,
        )
        for k in range(N_ROLLOUTS)
    ]


def test_x8_rl_batch_speedup(benchmark):
    specs = _specs()

    t0 = time.perf_counter()
    serial = [simulate_spec(spec) for spec in specs]
    serial_s = time.perf_counter() - t0

    batch = benchmark(lambda: run_batch(specs))

    t0 = time.perf_counter()
    run_batch(specs)
    batch_s = time.perf_counter() - t0

    # Bit-identity first: a fast wrong answer is worthless.
    for spec, a, b in zip(specs, serial, batch):
        assert b.total_energy_j == a.total_energy_j, spec.job_id
        assert b.dynamic_energy_j == a.dynamic_energy_j, spec.job_id
        assert b.leakage_energy_j == a.leakage_energy_j, spec.job_id
        assert b.qos == a.qos, spec.job_id
        assert b.opp_switches == a.opp_switches, spec.job_id
        assert b.energy_per_qos_j == a.energy_per_qos_j, spec.job_id

    speedup = serial_s / batch_s if batch_s > 0 else float("inf")
    lines = [
        f"X8: lock-step RL training ({N_ROLLOUTS} rollouts, "
        f"{TRAIN_EPISODES} episodes x {EPISODE_S:.0f} s + "
        f"{EVAL_S:.0f} s greedy eval each)",
        f"  serial trainer : {serial_s:8.3f} s",
        f"  lock-step batch: {batch_s:8.3f} s  ({speedup:.2f}x)",
        "  training + evaluation bit-identical on every rollout",
    ]
    write_result(
        "x8_rl_batch_speedup",
        "\n".join(lines),
        metrics={
            "serial_s": serial_s,
            "batch_s": batch_s,
            "speedup": speedup,
        },
    )
    assert speedup >= MIN_SPEEDUP
