"""E3 — QoS preservation: savings "without compromising user satisfaction".

Shape target: the RL policy's QoS is at or above the level of the
practical reactive governors (ondemand/interactive class) at lower mean
energy, and far above powersave.  Implementation:
:func:`repro.experiments.e3_qos_preservation`.
"""

from __future__ import annotations

from repro.experiments import e3_qos_preservation

from conftest import write_result


def test_e3_qos_preservation(benchmark, full_sweep):
    result = benchmark.pedantic(
        e3_qos_preservation, args=(full_sweep,), rounds=1, iterations=1
    )
    metrics: dict[str, float] = {}
    for governor in result.mean_qos:
        metrics[f"{governor}:mean_qos"] = result.mean_qos[governor]
        metrics[f"{governor}:miss_rate"] = result.miss_rate[governor]
        metrics[f"{governor}:mean_energy_j"] = result.mean_energy_j[governor]
    write_result("e3_qos_preservation", result.report, metrics=metrics)
    rl_qos = result.mean_qos["rl-policy"]
    assert rl_qos > 0.95, "RL policy compromises user satisfaction"
    assert rl_qos >= result.mean_qos["powersave"]
    assert rl_qos >= result.mean_qos["ondemand"] - 0.03
    assert rl_qos >= result.mean_qos["interactive"] - 0.03
    assert result.mean_energy_j["rl-policy"] < result.mean_energy_j["ondemand"]
    assert result.mean_energy_j["rl-policy"] < result.mean_energy_j["interactive"]
