"""A4 — fixed-point word-length sweep.

Shape target: decision agreement and energy/QoS converge to the float
reference as bits grow; the reference 16-bit Q7.8 is already
indistinguishable.  Implementation:
:func:`repro.experiments.a4_wordlength`.
"""

from __future__ import annotations

from repro.experiments import a4_wordlength

from conftest import write_result


def test_a4_wordlength(benchmark):
    result = benchmark.pedantic(a4_wordlength, rounds=1, iterations=1)
    ref = result.row("Q7.8")
    metrics = {
        "q7_8.agreement": ref.agreement,
        "q7_8.energy_per_qos_j": ref.run.energy_per_qos_j,
        "software.energy_per_qos_j": result.software.energy_per_qos_j,
    }
    write_result("a4_wordlength", result.report, metrics=metrics)
    assert result.row("Q11.12").agreement >= result.row("Q2.2").agreement
    ref = result.row("Q7.8")
    assert ref.agreement > 0.85
    sw_j = result.software.energy_per_qos_j
    assert abs(ref.run.energy_per_qos_j - sw_j) / sw_j < 0.15
