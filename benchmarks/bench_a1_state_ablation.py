"""A1 — state-feature ablation.

Which parts of the policy's state earn their keep?  Retrain with one
feature disabled at a time (bin count 1 collapses a feature).  Shape
target: dropping the anticipatory QoS-slack signal collapses QoS;
utilisation alone is far worse; milder ablations stay within noise of
the full state.  Implementation:
:func:`repro.experiments.a1_state_ablation`.
"""

from __future__ import annotations

from repro.experiments import a1_state_ablation

from conftest import write_result


def test_a1_state_ablation(benchmark):
    result = benchmark.pedantic(a1_state_ablation, rounds=1, iterations=1)
    metrics = {
        f"{label}.energy_per_qos_j": run.energy_per_qos_j
        for label, run in result.results.items()
    }
    metrics.update(
        {
            f"{label}.mean_qos": run.qos.mean_qos
            for label, run in result.results.items()
        }
    )
    write_result("a1_state_ablation", result.report, metrics=metrics)
    runs = result.results
    full = runs["full"].energy_per_qos_j
    assert runs["no-slack"].energy_per_qos_j > full
    assert runs["no-slack"].qos.mean_qos < runs["full"].qos.mean_qos
    assert runs["util-only"].energy_per_qos_j > full
    best = min(r.energy_per_qos_j for r in runs.values())
    assert full <= best * 1.15
