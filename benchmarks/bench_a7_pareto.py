"""A7 — the energy-QoS Pareto frontier (extension).

Energy-per-QoS is one projection; the frontier view asks whether any
baseline strictly beats the RL policy on *both* axes simultaneously.
Shape target: on the gaming evaluation trace, the RL policy is not
dominated by any realisable baseline (a small tolerance absorbs
measurement noise).
"""

from __future__ import annotations

from repro.analysis.pareto import FrontierPoint, frontier_table, pareto_frontier
from repro.core.trainer import evaluate_policy, train_policy
from repro.governors import create
from repro.governors.base import available
from repro.sim.engine import Simulator
from repro.soc.presets import exynos5422
from repro.workload.scenarios import get_scenario

from conftest import write_result


def _run():
    chip = exynos5422()
    scenario = get_scenario("gaming")
    trace = scenario.trace(20.0, seed=100)
    points = []
    for name in available():
        run = Simulator(chip, trace, lambda c, n=name: create(n)).run()
        points.append(FrontierPoint(name, run.total_energy_j, run.qos.mean_qos))
    training = train_policy(chip, scenario, episodes=16, episode_duration_s=20.0)
    rl = evaluate_policy(chip, training.policies, trace)
    points.append(FrontierPoint("rl-policy", rl.total_energy_j, rl.qos.mean_qos))
    return points


def test_a7_pareto(benchmark):
    points = benchmark.pedantic(_run, rounds=1, iterations=1)
    report = frontier_table(points)
    frontier = pareto_frontier(points)
    report += "\nfrontier: " + " -> ".join(p.label for p in frontier)
    metrics: dict[str, float] = {"frontier_size": float(len(frontier))}
    for p in points:
        metrics[f"{p.label}.energy_j"] = p.energy_j
        metrics[f"{p.label}.qos"] = p.qos
    write_result("a7_pareto", report, metrics=metrics)

    rl = next(p for p in points if p.label == "rl-policy")
    # No baseline strictly beats the policy on both axes (1% energy / one
    # QoS point of tolerance for noise).
    for p in points:
        if p.label == "rl-policy":
            continue
        strictly_dominates = (
            p.energy_j < rl.energy_j * 0.99 and p.qos > rl.qos + 0.01
        )
        assert not strictly_dominates, f"{p.label} dominates the RL policy"
    # The frontier's high-QoS end includes a near-perfect-QoS point.
    assert max(p.qos for p in frontier) > 0.99
