"""E4 — decision latency: hardware vs software policy implementation.

Paper claims: 3.92x faster decisions in hardware (journal, typical
case); "up to 40x" (DAC, best case).  Implementation:
:func:`repro.experiments.e4_decision_latency`; the software and hardware
paths are operation-count models (see DESIGN.md for the calibration
caveat).
"""

from __future__ import annotations

from repro.experiments import (
    PAPER_TYPICAL_SPEEDUP,
    e4_decision_latency,
)

from conftest import write_result


def test_e4_decision_latency(benchmark):
    result = benchmark(e4_decision_latency)
    metrics = {
        "typical_speedup": result.typical.speedup,
        "best_case_speedup": result.best_case.speedup,
        "typical_software_s": result.typical.software_s,
        "typical_hardware_s": result.typical.hardware_s,
    }
    write_result("e4_decision_latency", result.report, metrics=metrics)
    assert abs(result.typical.speedup - PAPER_TYPICAL_SPEEDUP) < 0.05 * PAPER_TYPICAL_SPEEDUP
    assert 25.0 < result.best_case.speedup < 60.0
    assert all(row.speedup > 1.0 for row in result.rows)
