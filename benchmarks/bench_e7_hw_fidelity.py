"""E7 — fixed-point hardware fidelity.

Transfers a trained software policy into the Q7.8 datapath and compares
greedy decision agreement and end-to-end energy/QoS.  Shape target:
near-total agreement and a negligible energy-per-QoS gap.
Implementation: :func:`repro.experiments.e7_hw_fidelity`.
"""

from __future__ import annotations

from repro.experiments import e7_hw_fidelity

from conftest import write_result


def test_e7_hw_fidelity(benchmark):
    result = benchmark.pedantic(e7_hw_fidelity, rounds=1, iterations=1)
    metrics = {
        "min_agreement": min(result.agreements.values()),
        "hardware_qos": result.hardware.qos.mean_qos,
        "software_qos": result.software.qos.mean_qos,
        "energy_per_qos_delta": result.energy_per_qos_delta,
    }
    write_result("e7_hw_fidelity", result.report, metrics=metrics)
    assert all(a > 0.85 for a in result.agreements.values()), result.agreements
    assert abs(result.hardware.qos.mean_qos - result.software.qos.mean_qos) < 0.05
    assert result.energy_per_qos_delta < 0.15
