"""A2 — reward-weight sweep: the energy vs QoS trade-off dial.

Shape target: QoS grows with lambda_qos and energy grows with it too —
the knob works and the default sits at a sensible knee.  Implementation:
:func:`repro.experiments.a2_reward_sweep`.
"""

from __future__ import annotations

from repro.experiments import a2_reward_sweep

from conftest import write_result


def test_a2_reward_sweep(benchmark):
    result = benchmark.pedantic(a2_reward_sweep, rounds=1, iterations=1)
    metrics: dict[str, float] = {}
    for lam, run in result.results.items():
        metrics[f"lambda_{lam:g}.mean_qos"] = run.qos.mean_qos
        metrics[f"lambda_{lam:g}.energy_j"] = run.total_energy_j
    write_result("a2_reward_sweep", result.report, metrics=metrics)
    runs = result.results
    assert runs[0.0].qos.mean_qos < runs[16.0].qos.mean_qos
    assert runs[16.0].total_energy_j > runs[0.0].total_energy_j
    assert runs[1.0].qos.mean_qos > 0.95
