"""E6 — online adaptation across scenario switches (figure).

"The policy can flexibly manage the system power regardless of the
application scenario": a gaming-trained policy keeps learning online as
the device switches to video playback and web browsing.  Shape target:
on each unseen scenario the adapting policy lands within a modest factor
of a specialist and beats ondemand, with QoS intact.  Implementation:
:func:`repro.experiments.e6_adaptation`.
"""

from __future__ import annotations

from repro.experiments import e6_adaptation

from conftest import write_result


def test_e6_adaptation(benchmark):
    result = benchmark.pedantic(e6_adaptation, rounds=1, iterations=1)
    metrics: dict[str, float] = {}
    for seg in result.segments:
        metrics[f"{seg.scenario}.adapting_qos"] = seg.adapting_qos
        metrics[f"{seg.scenario}.adapting_j"] = seg.adapting_j
        metrics[f"{seg.scenario}.ondemand_j"] = seg.ondemand_j
        metrics[f"{seg.scenario}.specialist_j"] = seg.specialist_j
    write_result("e6_adaptation", result.report, metrics=metrics)
    for seg in result.segments:
        assert seg.adapting_qos > 0.9, f"{seg.scenario}: QoS collapsed while adapting"
        assert seg.adapting_j < seg.ondemand_j * 1.05, (
            f"{seg.scenario}: worse than ondemand"
        )
        assert seg.adapting_j < seg.specialist_j * 1.35, (
            f"{seg.scenario}: far from the specialist"
        )
