"""A3 — learner ablation: Q-learning vs SARSA vs double-Q vs static oracle.

Shape target: the TD learners land in one band (the choice of TD rule is
not load-bearing), and the learned policy stays close to the
*unrealisable* static oracle, which peeks at the evaluation trace.
Implementation: :func:`repro.experiments.a3_learner_ablation`.
"""

from __future__ import annotations

from repro.experiments import a3_learner_ablation

from conftest import write_result


def test_a3_learner_ablation(benchmark):
    result = benchmark.pedantic(a3_learner_ablation, rounds=1, iterations=1)
    metrics = {
        f"{label}.energy_per_qos_j": run.energy_per_qos_j
        for label, run in result.learners.items()
    }
    metrics["oracle.energy_per_qos_j"] = result.oracle.energy_per_qos_j
    write_result("a3_learner_ablation", result.report, metrics=metrics)
    q_run = result.learners["Q-learning (paper)"]
    for label, other in result.learners.items():
        ratio = other.energy_per_qos_j / q_run.energy_per_qos_j
        assert 0.7 < ratio < 1.4, label
    assert q_run.energy_per_qos_j < result.oracle.energy_per_qos_j * 1.25
    assert q_run.qos.mean_qos >= result.oracle.qos.mean_qos - 0.02
