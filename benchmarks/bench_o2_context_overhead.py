"""O2 — correlation + ops-logging overhead on the serve closed loop.

PR 7's correlation layer threads a ``trace_id`` through every request
and optionally appends one structured ops-log record per outcome.  The
contract mirrors O1's: with no ops log attached and no trace ids on the
wire, ``PolicyServer._correlate`` must short-circuit to a single
attribute check and the serve path must match the pre-correlation
numbers; with correlation active, ids must never change a decision —
who asked is not allowed to affect what is computed.  This bench pins
both: bit-identical decisions between the plain and correlated loops,
and a sane bound on the cost of stamping ids and writing records.
"""

from __future__ import annotations

import asyncio
import math
import time

from repro.core.trainer import train_policy
from repro.obs import OpsLogger, read_ops_log
from repro.serve import DecisionRequest, PolicyServer, ServeConfig
from repro.serve.protocol import observation_from_mapping
from repro.soc.presets import tiny_test_chip
from repro.workload.scenarios import get_scenario

from conftest import write_result

N_REQUESTS = 500
REPEATS = 3

_POLICIES = train_policy(
    tiny_test_chip(), get_scenario("audio_playback"), episodes=3,
    episode_duration_s=3.0,
).policies


def _serve_round(ops_log: OpsLogger | None) -> tuple[list[int], float]:
    """One closed serve loop; returns (decisions, wall seconds)."""
    server = PolicyServer(
        _POLICIES, tiny_test_chip(), ServeConfig(workers=2),
        ops_log=ops_log,
    )
    cluster = server.chip.cluster_names[0]
    requests = [
        DecisionRequest(
            observation=observation_from_mapping(
                {"cluster": cluster, "utilization": (i % 10) / 10},
                server.chip,
            ),
            request_id=f"r{i}",
        )
        for i in range(N_REQUESTS)
    ]

    decisions: list[int] = []

    async def run() -> None:
        await server.start()
        for request in requests:
            reply = await server.request(request)
            decisions.append(reply.opp_index)
        await server.shutdown()

    start = time.perf_counter()
    asyncio.run(run())
    return decisions, time.perf_counter() - start


def _best_of(repeats: int, ops_log: OpsLogger | None) -> float:
    best = math.inf
    for _ in range(repeats):
        best = min(best, _serve_round(ops_log)[1])
    return best


def test_o2_context_overhead(benchmark, tmp_path):
    baseline, _ = benchmark.pedantic(
        lambda: _serve_round(None), rounds=1, iterations=1
    )

    plain_s = _best_of(REPEATS, None)
    ops_log = OpsLogger(tmp_path / "bench-o2-ops.jsonl")
    correlated, _ = _serve_round(ops_log)
    correlated_s = _best_of(REPEATS, ops_log)

    # Correlation must not change a single decision.
    assert correlated == baseline
    assert _serve_round(None)[0] == baseline

    records = read_ops_log(ops_log.path)
    decision_records = [r for r in records if r["kind"] == "decision"]
    assert len(decision_records) >= N_REQUESTS
    assert all(r["trace_id"] for r in decision_records)

    ratio = correlated_s / plain_s if plain_s > 0 else math.inf
    per_request_us = (correlated_s - plain_s) / N_REQUESTS * 1e6
    lines = [
        "O2: correlation + ops-log overhead "
        f"({N_REQUESTS} closed-loop decisions on tiny, best of {REPEATS})",
        f"  plain       : {plain_s * 1e3:8.2f} ms",
        f"  correlated  : {correlated_s * 1e3:8.2f} ms "
        f"({ratio:.2f}x, {ops_log.written} ops records)",
        f"  per request : {per_request_us:+.1f} us "
        "(trace-id stamp + one JSONL append)",
    ]
    write_result(
        "o2_context_overhead",
        "\n".join(lines),
        metrics={
            "plain_s": plain_s,
            "correlated_s": correlated_s,
            "correlated_over_plain": ratio,
        },
    )
    # Stamping ids and appending one JSON line per request is allowed
    # to cost, but not pathologically (loose: CI machines are noisy).
    assert ratio < 10.0
