"""A menu-style cpuidle governor.

Predicts each core's next idle duration from its recent idle history
(EWMA, as the kernel's menu governor does with its correction factors)
and selects the deepest C-state whose target residency fits.  The
simulation engine asks it once per interval per idle core and applies
the selected state's power fraction to that core's idle power.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.idle.cstates import CStateTable, mobile_cstates


@dataclass
class MenuIdleGovernor:
    """Per-core idle-duration prediction and C-state selection.

    Attributes:
        table: The C-state table to select from.
        ewma_alpha: Smoothing of the per-core idle-duration estimate.
        latency_limit_s: Optional global wake-latency constraint (a QoS
            knob: latency-critical workloads can forbid deep states).
    """

    table: CStateTable = field(default_factory=mobile_cstates)
    ewma_alpha: float = 0.3
    latency_limit_s: float | None = None
    _predicted: dict[str, float] = field(default_factory=dict, repr=False)
    _idle_run: dict[str, float] = field(default_factory=dict, repr=False)
    selections: dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not 0 < self.ewma_alpha <= 1:
            raise ConfigurationError(f"ewma_alpha must be in (0, 1]: {self.ewma_alpha}")

    def observe(self, core_id: str, idle_s: float, interval_s: float) -> int:
        """Feed one interval's idle time for a core and select its C-state.

        Args:
            core_id: Stable identifier of the core (e.g. ``"big/2"``).
            idle_s: Idle time within the interval, in seconds.
            interval_s: The interval length.

        Returns:
            The selected C-state index for the *next* idle period.
        """
        if not 0 <= idle_s <= interval_s * (1 + 1e-9):
            raise ConfigurationError(
                f"idle time {idle_s} outside interval [0, {interval_s}]"
            )
        # Track contiguous idle: a fully idle interval extends the run,
        # any activity resets it.  The prediction blends the run length
        # with the EWMA of recent idle fractions.
        run = self._idle_run.get(core_id, 0.0)
        if idle_s >= interval_s * (1 - 1e-9):
            run += interval_s
        else:
            run = idle_s
        self._idle_run[core_id] = run

        prev = self._predicted.get(core_id, idle_s)
        predicted = prev + self.ewma_alpha * (idle_s - prev)
        self._predicted[core_id] = predicted

        selection = self.table.deepest_allowed(
            max(predicted, run), self.latency_limit_s
        )
        self.selections[core_id] = selection
        return selection

    def power_fraction(self, core_id: str) -> float:
        """Idle-power multiplier for the core's current C-state (1.0 for
        cores never observed)."""
        selection = self.selections.get(core_id, 0)
        return self.table[selection].power_fraction

    def state_name(self, core_id: str) -> str:
        """Current C-state name for a core."""
        return self.table[self.selections.get(core_id, 0)].name

    def reset(self) -> None:
        """Forget all prediction and selection state."""
        self._predicted.clear()
        self._idle_run.clear()
        self.selections.clear()
