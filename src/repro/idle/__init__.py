"""cpuidle substrate: C-state tables and the menu-style idle governor."""

from repro.idle.cstates import CState, CStateTable, mobile_cstates
from repro.idle.governor import MenuIdleGovernor

__all__ = ["CState", "CStateTable", "MenuIdleGovernor", "mobile_cstates"]
