"""CPU idle states (C-states).

Mobile SoCs do not just clock-gate idle cores: the cpuidle subsystem
picks among progressively deeper sleep states — WFI (clock gate), core
power collapse, cluster power collapse — trading higher entry/exit
latency for lower residency power.  Governors interact with this: a
DVFS policy that races to a high frequency and finishes early leaves
more room for deep idle, which is why "race to idle" sometimes wins.

This module defines the C-state tables; :mod:`repro.idle.governor`
implements the menu-style state selection, and the simulation engine
applies the result as a per-interval idle-power discount.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CState:
    """One idle state.

    Attributes:
        name: State name (e.g. ``"WFI"``, ``"core-off"``).
        power_fraction: Idle power in this state as a fraction of the
            core's shallow-idle (clock-gated) power, in [0, 1].  WFI is
            1.0 by definition; deeper states are smaller.
        target_residency_s: Minimum idle duration for which entering the
            state pays off (break-even including entry/exit energy).
        exit_latency_s: Wake-up latency; a pending-deadline constraint
            can veto states that wake too slowly.
    """

    name: str
    power_fraction: float
    target_residency_s: float
    exit_latency_s: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.power_fraction <= 1.0:
            raise ConfigurationError(
                f"C-state {self.name}: power fraction must be in [0, 1]: "
                f"{self.power_fraction}"
            )
        if self.target_residency_s < 0 or self.exit_latency_s < 0:
            raise ConfigurationError(
                f"C-state {self.name}: residency and latency must be non-negative"
            )


class CStateTable:
    """An ordered table of idle states, shallow to deep.

    Validation enforces the physical ordering: deeper states save more
    power, need longer residency, and wake more slowly.

    Args:
        states: States ordered shallow to deep.  The first state must
            have ``power_fraction`` 1.0 (shallow clock gating is the
            baseline the power model already charges).
    """

    def __init__(self, states: Sequence[CState]):
        if not states:
            raise ConfigurationError("C-state table needs at least one state")
        if states[0].power_fraction != 1.0:
            raise ConfigurationError(
                "the shallowest C-state must have power fraction 1.0 "
                f"(got {states[0].power_fraction})"
            )
        for shallow, deep in zip(states, states[1:]):
            if deep.power_fraction >= shallow.power_fraction:
                raise ConfigurationError(
                    f"C-state {deep.name} must save more power than {shallow.name}"
                )
            if deep.target_residency_s <= shallow.target_residency_s:
                raise ConfigurationError(
                    f"C-state {deep.name} must need longer residency than "
                    f"{shallow.name}"
                )
            if deep.exit_latency_s < shallow.exit_latency_s:
                raise ConfigurationError(
                    f"C-state {deep.name} cannot wake faster than {shallow.name}"
                )
        self._states = tuple(states)

    def __len__(self) -> int:
        return len(self._states)

    def __getitem__(self, index: int) -> CState:
        return self._states[index]

    def __iter__(self):
        return iter(self._states)

    @property
    def states(self) -> tuple[CState, ...]:
        return self._states

    def deepest_allowed(
        self, predicted_idle_s: float, latency_limit_s: float | None = None
    ) -> int:
        """Index of the deepest state whose residency fits the predicted
        idle span and whose exit latency respects the limit.

        This is the core of the kernel's menu governor selection rule.

        Args:
            predicted_idle_s: Expected idle duration.
            latency_limit_s: Maximum tolerable wake latency (``None`` =
                unconstrained).

        Returns:
            A state index (0 = shallowest; always valid).
        """
        if predicted_idle_s < 0:
            raise ConfigurationError(
                f"predicted idle must be non-negative: {predicted_idle_s}"
            )
        chosen = 0
        for i, state in enumerate(self._states):
            if state.target_residency_s > predicted_idle_s:
                break
            if latency_limit_s is not None and state.exit_latency_s > latency_limit_s:
                break
            chosen = i
        return chosen


def mobile_cstates() -> CStateTable:
    """A typical three-level mobile C-state table.

    WFI (baseline), core power collapse (~25% of WFI power, 100 us
    residency), cluster power collapse (~5%, 2 ms residency) — the
    structure of big.LITTLE cpuidle drivers.
    """
    return CStateTable(
        [
            CState("WFI", power_fraction=1.0, target_residency_s=0.0,
                   exit_latency_s=1e-6),
            CState("core-off", power_fraction=0.25, target_residency_s=100e-6,
                   exit_latency_s=50e-6),
            CState("cluster-off", power_fraction=0.05, target_residency_s=2e-3,
                   exit_latency_s=500e-6),
        ]
    )
