"""Dynamic (switching) power model.

Dynamic CMOS power follows ``P = alpha * Ceff * V^2 * f`` where ``alpha``
is the activity factor.  We fold activity into the core's interval
utilisation: a core that executed for 40 % of an interval dissipated
switching power for 40 % of it.  An idle-but-clocked core still burns a
small fraction of full activity (clock tree and always-on logic).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DynamicPowerModel:
    """Utilisation-scaled CV^2f switching power.

    Attributes:
        idle_activity: Fraction of full switching activity an idle-but-
            clocked core exhibits (clock tree, snoop logic).  Typical
            published values for mobile cores are 3-10 %.
    """

    idle_activity: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.idle_activity <= 1.0:
            raise ConfigurationError(
                f"idle_activity must be in [0, 1]: {self.idle_activity}"
            )

    def core_power_w(
        self,
        ceff_f: float,
        voltage_v: float,
        freq_hz: float,
        utilization: float,
        idle_scale: float = 1.0,
    ) -> float:
        """Average dynamic power of one core over an interval.

        Args:
            ceff_f: Effective switched capacitance in farads.
            voltage_v: Supply voltage in volts.
            freq_hz: Clock frequency in hertz.
            utilization: Fraction of the interval spent executing, [0, 1].
            idle_scale: C-state multiplier on the idle portion's power in
                [0, 1]; 1.0 is shallow clock gating (WFI), smaller values
                model core/cluster power collapse.

        Returns:
            Average power in watts.

        Raises:
            ConfigurationError: If utilisation or idle_scale is outside
                [0, 1] or any electrical parameter is negative.
        """
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError(f"utilization must be in [0, 1]: {utilization}")
        if not 0.0 <= idle_scale <= 1.0:
            raise ConfigurationError(f"idle_scale must be in [0, 1]: {idle_scale}")
        if ceff_f < 0 or voltage_v < 0 or freq_hz < 0:
            raise ConfigurationError("electrical parameters must be non-negative")
        activity = utilization + (1.0 - utilization) * self.idle_activity * idle_scale
        return activity * ceff_f * voltage_v * voltage_v * freq_hz
