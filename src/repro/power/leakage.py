"""Static (leakage) power model.

Sub-threshold leakage grows superlinearly with voltage and exponentially
with temperature.  We use the standard compact form

    P_leak = I0(V) * V * exp(beta * (T - T_ref))

with ``I0(V) = leak_a_per_v * V`` (so leakage power is quadratic in V at
the reference temperature), which matches the curvature of published
mobile-SoC leakage measurements well enough for governor comparisons.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LeakagePowerModel:
    """Voltage- and temperature-dependent leakage power.

    Attributes:
        t_ref_c: Reference junction temperature in Celsius at which the
            core's ``leak_a_per_v`` coefficient was characterised.
        beta_per_c: Exponential temperature sensitivity (1/degC).  Mobile
            28 nm silicon roughly doubles leakage every ~25 degC, i.e.
            beta ~ ln(2)/25 ~ 0.028.
    """

    t_ref_c: float = 45.0
    beta_per_c: float = 0.028

    def __post_init__(self) -> None:
        if self.beta_per_c < 0:
            raise ConfigurationError(
                f"temperature sensitivity must be non-negative: {self.beta_per_c}"
            )

    def core_power_w(
        self, leak_a_per_v: float, voltage_v: float, temp_c: float | None = None
    ) -> float:
        """Leakage power of one core.

        Args:
            leak_a_per_v: The core's leakage conductance coefficient (A/V).
            voltage_v: Supply voltage in volts.
            temp_c: Junction temperature; ``None`` means the reference
                temperature (temperature scaling disabled).

        Returns:
            Leakage power in watts.
        """
        if leak_a_per_v < 0 or voltage_v < 0:
            raise ConfigurationError("leakage parameters must be non-negative")
        base = leak_a_per_v * voltage_v * voltage_v
        if temp_c is None:
            return base
        return base * math.exp(self.beta_per_c * (temp_c - self.t_ref_c))
