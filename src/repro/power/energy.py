"""Energy accounting over simulation intervals."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.power.model import PowerBreakdown


@dataclass
class EnergyMeter:
    """Integrates interval power samples into cumulative energy.

    The simulator calls :meth:`record` once per interval with the average
    power over that interval; the meter accumulates joules split by
    component and remembers the sample count for averaging.
    """

    dynamic_j: float = 0.0
    leakage_j: float = 0.0
    uncore_j: float = 0.0
    elapsed_s: float = 0.0
    samples: int = 0
    _peak_power_w: float = field(default=0.0, repr=False)

    def record(self, power: PowerBreakdown, interval_s: float) -> None:
        """Add one interval's energy.

        Args:
            power: Average power over the interval.
            interval_s: Interval duration in seconds (must be positive).
        """
        if interval_s <= 0:
            raise ConfigurationError(f"interval must be positive: {interval_s}")
        self.dynamic_j += power.dynamic_w * interval_s
        self.leakage_j += power.leakage_w * interval_s
        self.uncore_j += power.uncore_w * interval_s
        self.elapsed_s += interval_s
        self.samples += 1
        self._peak_power_w = max(self._peak_power_w, power.total_w)

    @property
    def total_j(self) -> float:
        """Total accumulated energy in joules."""
        return self.dynamic_j + self.leakage_j + self.uncore_j

    @property
    def average_power_w(self) -> float:
        """Mean power over all recorded time; 0 before any sample."""
        return self.total_j / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def peak_power_w(self) -> float:
        """Highest single-interval average power observed."""
        return self._peak_power_w

    def reset(self) -> None:
        """Clear all accumulators."""
        self.dynamic_j = 0.0
        self.leakage_j = 0.0
        self.uncore_j = 0.0
        self.elapsed_s = 0.0
        self.samples = 0
        self._peak_power_w = 0.0
