"""Power and energy substrate: dynamic/leakage models, metering, battery."""

from repro.power.battery import Battery
from repro.power.dynamic import DynamicPowerModel
from repro.power.energy import EnergyMeter
from repro.power.leakage import LeakagePowerModel
from repro.power.model import PowerBreakdown, PowerModel

__all__ = [
    "Battery",
    "DynamicPowerModel",
    "EnergyMeter",
    "LeakagePowerModel",
    "PowerBreakdown",
    "PowerModel",
]
