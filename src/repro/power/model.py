"""Combined chip power model: dynamic + leakage per core, summed upward."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.power.dynamic import DynamicPowerModel
from repro.power.leakage import LeakagePowerModel
from repro.soc.chip import Chip
from repro.soc.cluster import Cluster


@dataclass(frozen=True)
class PowerBreakdown:
    """Power of one cluster (or chip) split into components, in watts."""

    dynamic_w: float
    leakage_w: float
    uncore_w: float = 0.0

    @property
    def total_w(self) -> float:
        return self.dynamic_w + self.leakage_w + self.uncore_w

    def __add__(self, other: "PowerBreakdown") -> "PowerBreakdown":
        return PowerBreakdown(
            dynamic_w=self.dynamic_w + other.dynamic_w,
            leakage_w=self.leakage_w + other.leakage_w,
            uncore_w=self.uncore_w + other.uncore_w,
        )


@dataclass(frozen=True)
class PowerModel:
    """Full-chip power model.

    Attributes:
        dynamic: The switching-power component model.
        leakage: The static-power component model.
        uncore_w: Constant chip uncore/interconnect/memory-controller power
            attributed to the SoC regardless of DVFS state.  This is the
            floor that makes racing-to-idle at absurdly low frequencies
            unattractive, as on real devices.
    """

    dynamic: DynamicPowerModel = field(default_factory=DynamicPowerModel)
    leakage: LeakagePowerModel = field(default_factory=LeakagePowerModel)
    uncore_w: float = 0.25

    def cluster_power(
        self,
        cluster: Cluster,
        temp_c: float | None = None,
        idle_scales: list[float] | None = None,
    ) -> PowerBreakdown:
        """Average power of one cluster over the last simulated interval.

        Uses each core's recorded utilisation and the cluster's current OPP.

        Args:
            cluster: The cluster to price.
            temp_c: Junction temperature for leakage scaling.
            idle_scales: Optional per-core C-state power multipliers (from
                :class:`repro.idle.MenuIdleGovernor`); a power-collapsed
                core's idle fraction pays ``scale`` times the shallow-idle
                dynamic *and* leakage power.  ``None`` means shallow
                clock-gating everywhere.
        """
        v = cluster.voltage_v
        f = cluster.freq_hz
        if idle_scales is not None and len(idle_scales) != len(cluster.cores):
            raise ConfigurationError(
                f"{len(idle_scales)} idle scales for {len(cluster.cores)} cores"
            )
        dyn = 0.0
        leak = 0.0
        for i, core in enumerate(cluster.cores):
            scale = idle_scales[i] if idle_scales is not None else 1.0
            util = core.utilization
            dyn += self.dynamic.core_power_w(core.spec.ceff_f, v, f, util, scale)
            full_leak = self.leakage.core_power_w(core.spec.leak_a_per_v, v, temp_c)
            # Power collapse removes the rail for the idle fraction.
            leak += full_leak * (util + (1.0 - util) * scale)
        return PowerBreakdown(dynamic_w=dyn, leakage_w=leak)

    def chip_power(self, chip: Chip, temp_c: float | None = None) -> PowerBreakdown:
        """Average power of the whole chip over the last simulated interval."""
        total = PowerBreakdown(0.0, 0.0, uncore_w=self.uncore_w)
        for cluster in chip:
            total = total + self.cluster_power(cluster, temp_c)
        return total
