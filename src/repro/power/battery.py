"""A simple battery drain model (extension beyond the paper).

Mobile power-management papers ultimately care about battery life; this
model converts accumulated energy into state-of-charge so examples can
report "hours of use" style numbers.  It is deliberately simple: a fixed
usable energy budget with a coulombic efficiency factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass
class Battery:
    """Tracks battery state of charge against drawn energy.

    Attributes:
        capacity_j: Usable energy when full, in joules.  A typical
            3000 mAh / 3.85 V phone pack holds about 41.6 kJ.
        efficiency: Discharge efficiency in (0, 1]; the fraction of drawn
            energy actually delivered by the cell chemistry.
    """

    capacity_j: float = 41_580.0
    efficiency: float = 0.95
    drained_j: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_j <= 0:
            raise ConfigurationError(f"capacity must be positive: {self.capacity_j}")
        if not 0 < self.efficiency <= 1:
            raise ConfigurationError(f"efficiency must be in (0, 1]: {self.efficiency}")

    def drain(self, energy_j: float) -> None:
        """Draw ``energy_j`` joules from the pack (clamped at empty)."""
        if energy_j < 0:
            raise ConfigurationError(f"drained energy must be non-negative: {energy_j}")
        self.drained_j = min(self.capacity_j, self.drained_j + energy_j / self.efficiency)

    @property
    def state_of_charge(self) -> float:
        """Remaining charge fraction in [0, 1]."""
        return 1.0 - self.drained_j / self.capacity_j

    @property
    def empty(self) -> bool:
        return self.drained_j >= self.capacity_j

    def runtime_estimate_s(self, average_power_w: float) -> float:
        """Estimated remaining runtime at a sustained average power draw.

        Returns ``float('inf')`` for zero power.
        """
        if average_power_w < 0:
            raise ConfigurationError(f"power must be non-negative: {average_power_w}")
        remaining = (self.capacity_j - self.drained_j) * self.efficiency
        return float("inf") if average_power_w == 0 else remaining / average_power_w
