"""Pareto-frontier analysis over the (energy, QoS) plane.

Energy-per-QoS collapses the two objectives into one number; the
frontier view keeps them separate: a policy is *dominated* if another
policy delivers at least as much QoS for no more energy.  The
interesting question for the paper's policy is whether it sits on the
frontier — i.e. no baseline strictly beats it on both axes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError


@dataclass(frozen=True)
class FrontierPoint:
    """One policy's position in the energy-QoS plane.

    Attributes:
        label: Policy name.
        energy_j: Total energy (lower is better).
        qos: Mean QoS (higher is better).
    """

    label: str
    energy_j: float
    qos: float

    def dominates(self, other: "FrontierPoint", tolerance: float = 0.0) -> bool:
        """Whether this point is at least as good on both axes and
        strictly better on one (within ``tolerance`` slack on ties)."""
        no_worse = (
            self.energy_j <= other.energy_j + tolerance
            and self.qos >= other.qos - tolerance
        )
        strictly_better = (
            self.energy_j < other.energy_j - tolerance
            or self.qos > other.qos + tolerance
        )
        return no_worse and strictly_better


def pareto_frontier(points: list[FrontierPoint]) -> list[FrontierPoint]:
    """The non-dominated subset, sorted by ascending energy.

    Raises:
        ReproError: For an empty point set.
    """
    if not points:
        raise ReproError("frontier of an empty point set")
    frontier = [
        p for p in points
        if not any(q.dominates(p) for q in points if q is not p)
    ]
    return sorted(frontier, key=lambda p: p.energy_j)


def on_frontier(label: str, points: list[FrontierPoint]) -> bool:
    """Whether the named point survives domination by the others.

    Raises:
        ReproError: If the label is not among the points.
    """
    matches = [p for p in points if p.label == label]
    if not matches:
        raise ReproError(f"no point labelled {label!r}")
    frontier_labels = {p.label for p in pareto_frontier(points)}
    return label in frontier_labels


def frontier_table(points: list[FrontierPoint]) -> str:
    """Render all points, marking frontier membership."""
    from repro.analysis.tables import format_table

    frontier_labels = {p.label for p in pareto_frontier(points)}
    rows = [
        (p.label, p.energy_j, p.qos,
         "*" if p.label in frontier_labels else "")
        for p in sorted(points, key=lambda p: p.energy_j)
    ]
    return format_table(
        ["policy", "energy [J]", "QoS", "frontier"],
        rows,
        title="energy-QoS plane (frontier members marked *)",
    )
