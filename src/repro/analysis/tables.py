"""Plain-text table rendering for benchmark reports.

The benches print the same rows the paper's tables/figures report; this
module keeps the formatting in one place so every report looks alike.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ReproError


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table.

    Args:
        headers: Column titles.
        rows: Cell values; each row must match the header arity.  Floats
            are rendered with 4 significant digits; everything else via
            ``str``.
        title: Optional title line printed above the table.

    Returns:
        The rendered table as one string (no trailing newline).
    """
    if not headers:
        raise ReproError("table needs at least one column")
    rendered: list[list[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ReproError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        rendered.append([_cell(v) for v in row])
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:
            return "nan"
        if value == float("inf"):
            return "inf"
        return f"{value:.4g}"
    return str(value)
