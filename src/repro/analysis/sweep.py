"""Experiment sweeps: scenarios x governors, with RL training folded in.

This is the harness the E1/E2/E3 benches (and the examples) share: run
every baseline governor and the trained RL policy over every scenario,
on identical seeded traces, and collect the comparison rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import PolicyConfig
from repro.core.trainer import evaluate_policy, train_policy
from repro.errors import ReproError
from repro.governors import create
from repro.power.model import PowerModel
from repro.qos.energy_per_qos import improvement_percent
from repro.sim.engine import Simulator
from repro.sim.result import SimulationResult
from repro.soc.chip import Chip
from repro.workload.scenarios import Scenario, get_scenario


@dataclass(frozen=True)
class SweepRow:
    """One (scenario, governor) cell of the comparison."""

    scenario: str
    governor: str
    energy_j: float
    mean_qos: float
    deadline_miss_rate: float
    energy_per_qos_j: float


@dataclass
class SweepResult:
    """All rows of a scenarios-x-governors sweep."""

    rows: list[SweepRow] = field(default_factory=list)

    def governors(self) -> list[str]:
        """Governor names present, in first-seen order."""
        seen: list[str] = []
        for row in self.rows:
            if row.governor not in seen:
                seen.append(row.governor)
        return seen

    def scenarios(self) -> list[str]:
        """Scenario names present, in first-seen order."""
        seen: list[str] = []
        for row in self.rows:
            if row.scenario not in seen:
                seen.append(row.scenario)
        return seen

    def cell(self, scenario: str, governor: str) -> SweepRow:
        """The row for one (scenario, governor) pair.

        Raises:
            ReproError: If the pair was not swept.
        """
        for row in self.rows:
            if row.scenario == scenario and row.governor == governor:
                return row
        raise ReproError(f"no sweep cell for ({scenario!r}, {governor!r})")

    def mean_energy_per_qos(self, governor: str) -> float:
        """Mean energy/QoS of one governor across all swept scenarios."""
        values = [r.energy_per_qos_j for r in self.rows if r.governor == governor]
        if not values:
            raise ReproError(f"governor {governor!r} not in sweep")
        return sum(values) / len(values)

    def improvement_over(self, baseline: str, proposed: str) -> float:
        """Percent reduction of mean energy/QoS, proposed vs. baseline."""
        return improvement_percent(
            self.mean_energy_per_qos(baseline), self.mean_energy_per_qos(proposed)
        )


def run_baseline(
    chip: Chip,
    scenario: Scenario,
    governor_name: str,
    duration_s: float = 30.0,
    seed: int = 100,
    interval_s: float = 0.01,
    power_model: PowerModel | None = None,
) -> SimulationResult:
    """Run one baseline governor on one scenario trace."""
    trace = scenario.trace(duration_s, seed=seed)
    sim = Simulator(
        chip,
        trace,
        lambda cluster: create(governor_name),
        power_model=power_model or PowerModel(),
        interval_s=interval_s,
    )
    return sim.run()


def sweep(
    chip: Chip,
    scenario_names: list[str],
    governor_names: list[str],
    include_rl: bool = True,
    duration_s: float = 30.0,
    eval_seed: int = 100,
    train_episodes: int = 12,
    policy_config: PolicyConfig | None = None,
    interval_s: float = 0.01,
    jobs: int = 1,
) -> SweepResult:
    """Run the full comparison grid.

    For each scenario, every baseline governor runs on the *same* seeded
    evaluation trace; the RL policy is first trained on that scenario
    (seeds disjoint from the evaluation seed) and then evaluated greedily
    on the identical evaluation trace.

    Args:
        chip: The MPSoC (a fresh preset instance; its state is reused
            across runs after resets).
        scenario_names: Scenarios to sweep.
        governor_names: Baseline governors to sweep.
        include_rl: Whether to train and evaluate the proposed policy.
        duration_s: Evaluation trace length.
        eval_seed: Seed of the shared evaluation trace.
        train_episodes: RL training episodes per scenario.
        policy_config: RL policy configuration.
        interval_s: DVFS sampling interval.
        jobs: Worker processes; ``jobs != 1`` runs every grid cell (and
            each scenario's RL training) through the fleet runner
            (:mod:`repro.fleet`), with ``0`` meaning the CPU count.
            Rows are bit-identical to the serial path either way.
    """
    if not scenario_names:
        raise ReproError("sweep needs at least one scenario")
    if jobs != 1:
        return _sweep_fleet(
            chip, scenario_names, governor_names, include_rl, duration_s,
            eval_seed, train_episodes, policy_config, interval_s, jobs,
        )
    result = SweepResult()
    power_model = PowerModel()
    for scenario_name in scenario_names:
        scenario = get_scenario(scenario_name)
        eval_trace = scenario.trace(duration_s, seed=eval_seed)
        for governor_name in governor_names:
            sim = Simulator(
                chip,
                eval_trace,
                lambda cluster: create(governor_name),
                power_model=power_model,
                interval_s=interval_s,
            )
            run = sim.run()
            result.rows.append(_row(scenario_name, governor_name, run))
        if include_rl:
            training = train_policy(
                chip,
                scenario,
                episodes=train_episodes,
                episode_duration_s=duration_s,
                base_seed=0,
                config=policy_config,
                interval_s=interval_s,
                power_model=power_model,
            )
            run = evaluate_policy(
                chip, training.policies, eval_trace,
                interval_s=interval_s, power_model=power_model,
            )
            result.rows.append(_row(scenario_name, "rl-policy", run))
    return result


def _sweep_fleet(
    chip: Chip,
    scenario_names: list[str],
    governor_names: list[str],
    include_rl: bool,
    duration_s: float,
    eval_seed: int,
    train_episodes: int,
    policy_config: PolicyConfig | None,
    interval_s: float,
    jobs: int,
) -> SweepResult:
    """The parallel sweep: one fleet job per grid cell.

    Each job rebuilds the chip from its preset (falling back to shipping
    the chip object itself for non-preset chips) and regenerates its
    traces from the same seeds the serial path uses, so the aggregated
    rows are bit-identical to the serial nested loops.
    """
    from dataclasses import replace

    from repro.fleet import FleetSpec, run_fleet
    from repro.soc.presets import PRESETS

    for name in scenario_names:
        get_scenario(name)  # fail fast, as the serial path would
    spec = FleetSpec(
        scenarios=tuple(scenario_names),
        governors=tuple(governor_names),
        seeds=(eval_seed,),
        include_rl=include_rl,
        duration_s=duration_s,
        interval_s=interval_s,
        train_episodes=train_episodes,
        train_base_seed=0,
    )
    job_specs = spec.expand()
    if chip.name in PRESETS:
        job_specs = [replace(j, chip=chip.name) for j in job_specs]
    else:
        job_specs = [replace(j, chip=chip.name, chip_obj=chip) for j in job_specs]
    if policy_config is not None:
        job_specs = [replace(j, policy_config=policy_config) for j in job_specs]
    fleet = run_fleet(job_specs, jobs=jobs)
    return fleet.sweep_result()


def _row(scenario: str, governor: str, run: SimulationResult) -> SweepRow:
    return SweepRow(
        scenario=scenario,
        governor=governor,
        energy_j=run.total_energy_j,
        mean_qos=run.qos.mean_qos,
        deadline_miss_rate=run.qos.deadline_miss_rate,
        energy_per_qos_j=run.energy_per_qos_j,
    )
