"""Small statistics helpers used by the benches."""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import ReproError


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on an empty sequence."""
    if not values:
        raise ReproError("mean of empty sequence")
    return sum(values) / len(values)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (the right average for ratios)."""
    if not values:
        raise ReproError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ReproError(f"geomean requires positive values: {values}")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (0.0 for fewer than two values)."""
    if len(values) < 2:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / (len(values) - 1))


def normalize_to(values: Sequence[float], reference: float) -> list[float]:
    """Each value divided by ``reference`` (must be non-zero)."""
    if reference == 0:
        raise ReproError("cannot normalise to zero")
    return [v / reference for v in values]
