"""One-shot report generation: run the experiments, write a markdown file.

``generate_report`` runs a configurable subset of the paper experiments
and assembles their rendered tables into one markdown document — the
programmatic equivalent of running the whole benchmark tree, for users
who want a single artefact (or a quick small-scale smoke run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.errors import ReproError

# Experiment ids in canonical order.  Each entry maps to a zero-argument
# callable (built in _runners) returning an object with a .report str.
_ORDER = ["e1", "e2", "e3", "e4", "e5", "e6", "e7", "a1", "a2", "a3", "a4",
          "a6", "x2"]


@dataclass
class ReportConfig:
    """Scaling knobs for the report run.

    Attributes:
        experiments: Which ids to include (subset of E1-E7/A1-A6/X2;
            lower-case).  X1 is omitted by default for runtime.
        duration_s: Evaluation trace length for sweep-based experiments.
        train_episodes: RL training budget.
        episode_duration_s: Per-episode trace length for per-scenario
            experiments.
        jobs: Worker processes for the fleet-capable experiments (the
            headline sweep and X2); ``0`` = CPU count, 1 = serial.
        title: Document title.
    """

    experiments: list[str] = field(
        default_factory=lambda: ["e1", "e2", "e3", "e4", "e7"]
    )
    duration_s: float = 20.0
    train_episodes: int = 20
    episode_duration_s: float = 15.0
    jobs: int = 1
    title: str = "RL power-management reproduction report"


def _runners(config: ReportConfig) -> dict[str, Callable[[], object]]:
    from repro.experiments import (
        a1_state_ablation,
        a2_reward_sweep,
        a3_learner_ablation,
        a4_wordlength,
        a6_fpga_resources,
        e1_energy_per_qos,
        e2_per_scenario,
        e3_qos_preservation,
        e4_decision_latency,
        e5_learning_curve,
        e6_adaptation,
        e7_hw_fidelity,
        run_headline_sweep,
        x2_seed_stability,
    )

    sweep_cache: dict[str, object] = {}

    def sweep_once():
        if "sweep" not in sweep_cache:
            sweep_cache["sweep"] = run_headline_sweep(
                duration_s=config.duration_s,
                train_episodes=config.train_episodes,
                jobs=config.jobs,
            )
        return sweep_cache["sweep"]

    per_scenario = dict(
        train_episodes=config.train_episodes,
        episode_duration_s=config.episode_duration_s,
    )
    return {
        "e1": lambda: e1_energy_per_qos(sweep_once()),
        "e2": lambda: e2_per_scenario(sweep_once()),
        "e3": lambda: e3_qos_preservation(sweep_once()),
        "e4": e4_decision_latency,
        "e5": lambda: e5_learning_curve(
            episodes=config.train_episodes,
            episode_duration_s=config.episode_duration_s,
        ),
        "e6": lambda: e6_adaptation(segment_duration_s=config.duration_s),
        "e7": lambda: e7_hw_fidelity(**per_scenario),
        "a1": lambda: a1_state_ablation(**per_scenario),
        "a2": lambda: a2_reward_sweep(**per_scenario),
        "a3": lambda: a3_learner_ablation(
            train_episodes=config.train_episodes,
            episode_duration_s=config.episode_duration_s,
        ),
        "a4": lambda: a4_wordlength(**per_scenario),
        "a6": a6_fpga_resources,
        "x2": lambda: x2_seed_stability(
            duration_s=config.duration_s,
            train_episodes=config.train_episodes,
            jobs=config.jobs,
        ),
    }


def generate_report(
    config: ReportConfig | None = None, path: str | Path | None = None
) -> str:
    """Run the configured experiments and render one markdown document.

    Args:
        config: What to run and at what scale.
        path: Optional file to write the document to.

    Returns:
        The markdown text.

    Raises:
        ReproError: For unknown experiment ids.
    """
    config = config or ReportConfig()
    runners = _runners(config)
    unknown = set(config.experiments) - set(runners)
    if unknown:
        raise ReproError(
            f"unknown experiment ids {sorted(unknown)}; "
            f"available: {sorted(runners)}"
        )
    sections = [f"# {config.title}", ""]
    ordered = [e for e in _ORDER if e in config.experiments]
    for exp_id in ordered:
        result = runners[exp_id]()
        sections.append(f"## {exp_id.upper()}")
        sections.append("")
        sections.append("```")
        sections.append(result.report)  # type: ignore[attr-defined]
        sections.append("```")
        sections.append("")
    text = "\n".join(sections)
    if path is not None:
        Path(path).write_text(text)
    return text
