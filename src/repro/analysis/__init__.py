"""Experiment harness support: sweeps, tables, plots, statistics."""

from repro.analysis.export import result_to_json, sweep_from_csv, sweep_to_csv
from repro.analysis.pareto import (
    FrontierPoint,
    frontier_table,
    on_frontier,
    pareto_frontier,
)
from repro.analysis.plot import histogram, line_chart, sparkline
from repro.analysis.repeat import (
    RepeatedMeasure,
    repeat_jobs_over_seeds,
    repeat_over_seeds,
)
from repro.analysis.report import ReportConfig, generate_report
from repro.analysis.stats import geomean, mean, normalize_to, stdev
from repro.analysis.sweep import SweepResult, SweepRow, run_baseline, sweep
from repro.analysis.tables import format_table

__all__ = [
    "FrontierPoint",
    "RepeatedMeasure",
    "ReportConfig",
    "SweepResult",
    "SweepRow",
    "format_table",
    "frontier_table",
    "generate_report",
    "geomean",
    "histogram",
    "line_chart",
    "mean",
    "normalize_to",
    "on_frontier",
    "pareto_frontier",
    "repeat_jobs_over_seeds",
    "repeat_over_seeds",
    "result_to_json",
    "run_baseline",
    "sparkline",
    "stdev",
    "sweep",
    "sweep_from_csv",
    "sweep_to_csv",
]
