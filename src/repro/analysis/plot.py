"""Text-mode plotting for benchmark figures.

The paper's figures (learning curves, per-interval frequency traces) are
regenerated as terminal-friendly ASCII charts so the benches produce
figure artefacts without a plotting dependency.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ReproError

_BARS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A one-line unicode sparkline of a series.

    Values are min-max normalised; a constant series renders mid-height.
    """
    if not values:
        raise ReproError("sparkline of empty series")
    lo, hi = min(values), max(values)
    if hi == lo:
        return _BARS[4] * len(values)
    span = hi - lo
    chars = []
    for v in values:
        idx = int((v - lo) / span * (len(_BARS) - 1))
        chars.append(_BARS[idx])
    return "".join(chars)


def line_chart(
    values: Sequence[float],
    height: int = 10,
    width: int | None = None,
    title: str | None = None,
    y_format: str = "{:.3g}",
) -> str:
    """A block-character line chart with a labelled y-axis.

    Args:
        values: The series to plot.
        height: Chart height in rows (>= 2).
        width: Optional resampled width; ``None`` plots one column per
            point.
        title: Optional title line.
        y_format: Format spec for the axis labels.

    Returns:
        The rendered chart (no trailing newline).
    """
    if not values:
        raise ReproError("cannot plot an empty series")
    if height < 2:
        raise ReproError(f"chart height must be >= 2: {height}")
    series = list(values)
    if width is not None:
        if width < 1:
            raise ReproError(f"chart width must be >= 1: {width}")
        series = _resample(series, width)

    lo, hi = min(series), max(series)
    span = hi - lo if hi > lo else 1.0
    # Row index (0 = top) for each column.
    rows_for_col = [
        height - 1 - int((v - lo) / span * (height - 1)) for v in series
    ]
    label_lo = y_format.format(lo)
    label_hi = y_format.format(hi)
    label_w = max(len(label_lo), len(label_hi))

    lines: list[str] = []
    if title:
        lines.append(title)
    for row in range(height):
        if row == 0:
            label = label_hi.rjust(label_w)
        elif row == height - 1:
            label = label_lo.rjust(label_w)
        else:
            label = " " * label_w
        cells = []
        for col, vrow in enumerate(rows_for_col):
            if vrow == row:
                cells.append("●")
            elif vrow < row and (row < height - 1 or vrow < height - 1):
                cells.append("│" if row > vrow else " ")
            else:
                cells.append(" ")
        lines.append(f"{label} ┤{''.join(cells)}")
    lines.append(" " * label_w + " └" + "─" * len(series))
    return "\n".join(lines)


def _resample(series: list[float], width: int) -> list[float]:
    """Bucket-mean resampling to a fixed number of columns."""
    if len(series) <= width:
        return series
    out: list[float] = []
    for i in range(width):
        start = i * len(series) // width
        end = max(start + 1, (i + 1) * len(series) // width)
        bucket = series[start:end]
        out.append(sum(bucket) / len(bucket))
    return out


def histogram(
    values: Sequence[float], bins: int = 10, width: int = 40, title: str | None = None
) -> str:
    """A horizontal ASCII histogram.

    Args:
        values: Samples.
        bins: Number of equal-width bins.
        width: Maximum bar width in characters.
        title: Optional title line.
    """
    if not values:
        raise ReproError("histogram of empty data")
    if bins < 1 or width < 1:
        raise ReproError("bins and width must be >= 1")
    lo, hi = min(values), max(values)
    if hi == lo:
        hi = lo + 1.0
    counts = [0] * bins
    for v in values:
        idx = min(int((v - lo) / (hi - lo) * bins), bins - 1)
        counts[idx] += 1
    peak = max(counts)
    lines = [title] if title else []
    for i, count in enumerate(counts):
        edge = lo + (hi - lo) * i / bins
        bar = "█" * (count * width // peak if peak else 0)
        lines.append(f"{edge:10.3g} | {bar} {count}")
    return "\n".join(lines)
