"""Exporting experiment results to CSV/JSON.

Sweep results and simulation summaries serialise to flat files so they
can be analysed outside Python (spreadsheets, R, plotting tools).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.analysis.sweep import SweepResult, SweepRow
from repro.errors import ReproError
from repro.sim.result import SimulationResult

_SWEEP_FIELDS = [
    "scenario", "governor", "energy_j", "mean_qos",
    "deadline_miss_rate", "energy_per_qos_j",
]


def sweep_to_csv(result: SweepResult, path: str | Path) -> None:
    """Write a sweep's rows as CSV (one row per scenario x governor)."""
    if not result.rows:
        raise ReproError("cannot export an empty sweep")
    with Path(path).open("w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=_SWEEP_FIELDS)
        writer.writeheader()
        for row in result.rows:
            writer.writerow(
                {
                    "scenario": row.scenario,
                    "governor": row.governor,
                    "energy_j": repr(row.energy_j),
                    "mean_qos": repr(row.mean_qos),
                    "deadline_miss_rate": repr(row.deadline_miss_rate),
                    "energy_per_qos_j": repr(row.energy_per_qos_j),
                }
            )


def sweep_from_csv(path: str | Path) -> SweepResult:
    """Read a sweep written by :func:`sweep_to_csv`.

    Raises:
        ReproError: On missing columns or unparseable rows.
    """
    path = Path(path)
    rows: list[SweepRow] = []
    with path.open(newline="") as f:
        reader = csv.DictReader(f)
        missing = set(_SWEEP_FIELDS) - set(reader.fieldnames or [])
        if missing:
            raise ReproError(f"sweep CSV {path} missing columns: {sorted(missing)}")
        for lineno, row in enumerate(reader, start=2):
            try:
                rows.append(
                    SweepRow(
                        scenario=row["scenario"],
                        governor=row["governor"],
                        energy_j=float(row["energy_j"]),
                        mean_qos=float(row["mean_qos"]),
                        deadline_miss_rate=float(row["deadline_miss_rate"]),
                        energy_per_qos_j=float(row["energy_per_qos_j"]),
                    )
                )
            except (KeyError, ValueError) as exc:
                raise ReproError(f"{path}:{lineno}: bad sweep row: {exc}") from exc
    return SweepResult(rows=rows)


def result_to_json(result: SimulationResult, path: str | Path | None = None) -> dict:
    """Serialise a run summary (no time series) as a JSON-ready dict;
    optionally write it to a file."""
    payload = {
        "governor": result.governor,
        "trace": result.trace_name,
        "duration_s": result.duration_s,
        "total_energy_j": result.total_energy_j,
        "dynamic_energy_j": result.dynamic_energy_j,
        "leakage_energy_j": result.leakage_energy_j,
        "uncore_energy_j": result.uncore_energy_j,
        "intervals": result.intervals,
        "opp_switches": result.opp_switches,
        "energy_per_qos_j": result.energy_per_qos_j,
        "qos": {
            "n_units": result.qos.n_units,
            "n_completed": result.qos.n_completed,
            "n_on_time": result.qos.n_on_time,
            "n_dropped": result.qos.n_dropped,
            "mean_qos": result.qos.mean_qos,
            "deadline_miss_rate": result.qos.deadline_miss_rate,
            "mean_lateness_s": result.qos.mean_lateness_s,
        },
    }
    if path is not None:
        Path(path).write_text(json.dumps(payload, indent=1))
    return payload
