"""Multi-seed repetition and confidence intervals.

Single-seed comparisons can flatter either side; this harness repeats a
(governor, scenario) measurement across seeds and reports mean, sample
standard deviation, and a normal-approximation confidence interval, so
benches can state how stable a gap is.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.analysis.stats import mean, stdev
from repro.errors import ReproError

if TYPE_CHECKING:
    from repro.fleet.spec import JobSpec

# Two-sided z values for common confidence levels.
_Z = {0.90: 1.645, 0.95: 1.960, 0.99: 2.576}


@dataclass(frozen=True)
class RepeatedMeasure:
    """Summary of one metric measured across seeds.

    Attributes:
        values: Per-seed measurements, in seed order.
        confidence: The confidence level of :attr:`ci_halfwidth`.
    """

    values: tuple[float, ...]
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if not self.values:
            raise ReproError("repeated measure needs at least one value")
        if self.confidence not in _Z:
            raise ReproError(
                f"confidence must be one of {sorted(_Z)}: {self.confidence}"
            )

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return mean(self.values)

    @property
    def stdev(self) -> float:
        return stdev(self.values)

    @property
    def ci_halfwidth(self) -> float:
        """Normal-approximation half-width of the confidence interval of
        the mean (0.0 for a single sample)."""
        if self.n < 2:
            return 0.0
        return _Z[self.confidence] * self.stdev / math.sqrt(self.n)

    def overlaps(self, other: "RepeatedMeasure") -> bool:
        """Whether the two confidence intervals overlap (a quick, and
        conservative, no-significant-difference check)."""
        lo_a, hi_a = self.mean - self.ci_halfwidth, self.mean + self.ci_halfwidth
        lo_b, hi_b = other.mean - other.ci_halfwidth, other.mean + other.ci_halfwidth
        return lo_a <= hi_b and lo_b <= hi_a

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.ci_halfwidth:.2g} (n={self.n})"


def repeat_over_seeds(
    measure: Callable[[int], float],
    seeds: list[int],
    confidence: float = 0.95,
) -> RepeatedMeasure:
    """Run a seeded measurement over several seeds.

    Args:
        measure: Callable mapping a seed to a scalar metric (e.g. runs a
            simulation and returns energy/QoS).
        seeds: Seeds to evaluate; at least one.
        confidence: Confidence level for the interval.
    """
    if not seeds:
        raise ReproError("need at least one seed")
    return RepeatedMeasure(
        values=tuple(measure(seed) for seed in seeds), confidence=confidence
    )


def repeat_jobs_over_seeds(
    spec: "JobSpec",
    seeds: list[int],
    metric: str = "energy_per_qos_j",
    jobs: int = 1,
    confidence: float = 0.95,
    timeout_s: float | None = None,
    retries: int = 0,
) -> RepeatedMeasure:
    """Repeat one fleet job across evaluation seeds, possibly in parallel.

    The declarative sibling of :func:`repeat_over_seeds`: instead of a
    closure, the measurement is a :class:`~repro.fleet.spec.JobSpec`
    re-run at each seed through :func:`repro.fleet.run_fleet`, so the
    repeats can fan out over worker processes.  Values are returned in
    seed order regardless of completion order.

    Args:
        spec: The job to repeat; its own ``seed`` field is ignored.
        seeds: Evaluation seeds; at least one.
        metric: :class:`~repro.fleet.worker.JobSuccess` attribute to
            collect (``energy_j``, ``mean_qos``, ``deadline_miss_rate``,
            or ``energy_per_qos_j``).
        jobs: Worker processes (``0`` = CPU count).
        confidence: Confidence level for the interval.
        timeout_s: Per-job wall-clock budget.
        retries: Extra attempts per failed job.

    Raises:
        ReproError: If any seed's job finally fails, or for an unknown
            metric name.
    """
    from repro.fleet import run_fleet

    if not seeds:
        raise ReproError("need at least one seed")
    valid = ("energy_j", "mean_qos", "deadline_miss_rate", "energy_per_qos_j")
    if metric not in valid:
        raise ReproError(f"unknown metric {metric!r}; available: {list(valid)}")
    result = run_fleet(
        [spec.with_seed(seed) for seed in seeds],
        jobs=jobs,
        timeout_s=timeout_s,
        retries=retries,
    )
    result.raise_on_failure()
    return RepeatedMeasure(
        values=tuple(getattr(s, metric) for s in result.successes),
        confidence=confidence,
    )
