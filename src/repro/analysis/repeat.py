"""Multi-seed repetition and confidence intervals.

Single-seed comparisons can flatter either side; this harness repeats a
(governor, scenario) measurement across seeds and reports mean, sample
standard deviation, and a normal-approximation confidence interval, so
benches can state how stable a gap is.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.analysis.stats import mean, stdev
from repro.errors import ReproError

# Two-sided z values for common confidence levels.
_Z = {0.90: 1.645, 0.95: 1.960, 0.99: 2.576}


@dataclass(frozen=True)
class RepeatedMeasure:
    """Summary of one metric measured across seeds.

    Attributes:
        values: Per-seed measurements, in seed order.
        confidence: The confidence level of :attr:`ci_halfwidth`.
    """

    values: tuple[float, ...]
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if not self.values:
            raise ReproError("repeated measure needs at least one value")
        if self.confidence not in _Z:
            raise ReproError(
                f"confidence must be one of {sorted(_Z)}: {self.confidence}"
            )

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return mean(self.values)

    @property
    def stdev(self) -> float:
        return stdev(self.values)

    @property
    def ci_halfwidth(self) -> float:
        """Normal-approximation half-width of the confidence interval of
        the mean (0.0 for a single sample)."""
        if self.n < 2:
            return 0.0
        return _Z[self.confidence] * self.stdev / math.sqrt(self.n)

    def overlaps(self, other: "RepeatedMeasure") -> bool:
        """Whether the two confidence intervals overlap (a quick, and
        conservative, no-significant-difference check)."""
        lo_a, hi_a = self.mean - self.ci_halfwidth, self.mean + self.ci_halfwidth
        lo_b, hi_b = other.mean - other.ci_halfwidth, other.mean + other.ci_halfwidth
        return lo_a <= hi_b and lo_b <= hi_a

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.ci_halfwidth:.2g} (n={self.n})"


def repeat_over_seeds(
    measure: Callable[[int], float],
    seeds: list[int],
    confidence: float = 0.95,
) -> RepeatedMeasure:
    """Run a seeded measurement over several seeds.

    Args:
        measure: Callable mapping a seed to a scalar metric (e.g. runs a
            simulation and returns energy/QoS).
        seeds: Seeds to evaluate; at least one.
        confidence: Confidence level for the interval.
    """
    if not seeds:
        raise ReproError("need at least one seed")
    return RepeatedMeasure(
        values=tuple(measure(seed) for seed in seeds), confidence=confidence
    )
