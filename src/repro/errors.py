"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch one base class at an API boundary.  Specific subclasses
mark configuration mistakes versus runtime simulation problems, which
call for different handling (fix your inputs vs. inspect the run).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A model or policy was constructed with inconsistent parameters."""


class OPPError(ConfigurationError):
    """An operating-performance-point table is malformed or an OPP lookup
    fell outside the table."""


class WorkloadError(ReproError):
    """A workload trace or scenario definition is invalid."""


class SimulationError(ReproError):
    """The simulation engine entered an inconsistent state."""


class GovernorError(ReproError):
    """A DVFS governor was misconfigured or produced an illegal decision."""


class PolicyError(ReproError):
    """The RL power-management policy was misconfigured."""


class ObsError(ReproError):
    """The observability layer was misused (unbalanced spans, a metric
    re-registered under another type, or a malformed exported trace)."""


class PerfError(ReproError):
    """The performance ledger or regression gate was misused (malformed
    ledger lines, an unknown metric polarity override, an empty
    comparison) — distinct from a *regression*, which is a property of
    the measured code, not an error."""


class CacheError(ReproError):
    """The run cache was misused (an unserialisable spec was hashed, a
    cache directory could not be created, or an entry is malformed) —
    distinct from a cache *miss*, which is a normal outcome reported as
    ``None``, not an error."""


class ServeError(ReproError):
    """The policy-decision service was misconfigured (bad serve config,
    a malformed request payload, a submit after shutdown) — distinct
    from a *rejection*, which is a normal backpressure/deadline outcome
    reported as a response, not an exception."""


class ServeOverloaded(ServeError):
    """The serve queue hit its bound; raised internally by the queue
    backend and converted into an explicit ``overloaded`` rejection at
    the submission boundary."""


class LintError(ReproError):
    """The static-analysis engine was misconfigured (unknown rule code,
    unparsable input, malformed baseline) — distinct from a finding,
    which is a property of the *checked* code, not an error."""


class HardwareModelError(ReproError):
    """The hardware (fixed-point / pipeline / interface) model detected an
    illegal configuration or datapath condition."""


class FixedPointError(HardwareModelError):
    """A fixed-point conversion overflowed without saturation enabled, or
    the Q-format itself is invalid."""
