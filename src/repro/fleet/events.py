"""Fleet progress/telemetry events.

The runner emits one event object per lifecycle transition — fleet
start, job queued, job done/failed/retried, fleet finish — to an
optional ``on_event`` callback.  :class:`EventLog` is the collecting
callback used by tests and the library API; :func:`format_event` renders
one human line per event for the CLI's live progress stream.

Job wall-clock and simulated-seconds-per-wall-second throughput are
measured inside the worker process and travel back on the completion
events, so the parent sees per-job cost without any shared state.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Mapping


@dataclass(frozen=True)
class FleetEvent:
    """Base class for all fleet telemetry events."""


@dataclass(frozen=True)
class FleetStarted(FleetEvent):
    """The fleet began executing.

    Attributes:
        n_jobs: Total jobs in the grid.
        workers: Worker-process count (1 = in-process serial).
    """

    n_jobs: int
    workers: int


@dataclass(frozen=True)
class JobQueued(FleetEvent):
    """A job was submitted to the pool.

    Attributes:
        trace_id: Correlation id from the job spec's
            ``trace_context`` (``""`` for uncorrelated jobs) — carried
            on every Job* event so an event stream joins against ops
            logs and merged traces.
    """

    index: int
    job_id: str
    trace_id: str = ""


@dataclass(frozen=True)
class JobCached(FleetEvent):
    """A job's result was served from the run cache — no simulation ran.

    Emitted instead of :class:`JobQueued`/:class:`JobDone` for cache
    hits; the job still contributes a normal
    :class:`~repro.fleet.worker.JobSuccess` outcome (with
    ``cached=True``) so aggregation is oblivious to where rows came
    from.

    Attributes:
        wall_s: Cache-probe wall-clock seconds (microseconds, not a
            simulation's).
    """

    index: int
    job_id: str
    wall_s: float
    trace_id: str = ""


@dataclass(frozen=True)
class JobDone(FleetEvent):
    """A job finished successfully.

    Attributes:
        wall_s: Worker-side wall-clock seconds for the attempt.
        sim_throughput: Simulated seconds per wall-clock second.
        metrics: The worker's observability-registry snapshot
            (``collect_metrics`` jobs only, else ``None``).
        trace_path: The job's Chrome trace file (``trace_dir`` jobs
            only, else ``None``).
    """

    index: int
    job_id: str
    wall_s: float
    sim_throughput: float
    metrics: Mapping[str, Any] | None = None
    trace_path: str | None = None
    trace_id: str = ""


@dataclass(frozen=True)
class JobFailed(FleetEvent):
    """A job attempt failed (it may still be retried).

    Attributes:
        attempt: 1-based attempt number that failed.
        error: One-line error description.
        timed_out: Whether the failure was the per-job timeout.
        final: Whether the retry budget is exhausted (this failure
            becomes the job's :class:`~repro.fleet.worker.JobFailure`
            row).
    """

    index: int
    job_id: str
    attempt: int
    error: str
    timed_out: bool
    final: bool
    trace_id: str = ""


@dataclass(frozen=True)
class JobRetried(FleetEvent):
    """A failed job was re-queued.

    Attributes:
        attempt: 1-based attempt number about to run.
    """

    index: int
    job_id: str
    attempt: int
    trace_id: str = ""


@dataclass(frozen=True)
class FleetProgress(FleetEvent):
    """Running totals, emitted after every job completion."""

    done: int
    failed: int
    total: int
    elapsed_s: float


@dataclass(frozen=True)
class FleetFinished(FleetEvent):
    """The fleet drained.

    Attributes:
        done: Successful job count.
        failed: Finally-failed job count.
        wall_s: Fleet wall-clock seconds.
    """

    done: int
    failed: int
    wall_s: float


@dataclass
class EventLog:
    """An ``on_event`` callback that records every event.

    Usage::

        log = EventLog()
        run_fleet(spec, on_event=log)
        assert log.count(JobDone) == spec.n_jobs
    """

    events: list[FleetEvent] = field(default_factory=list)

    def __call__(self, event: FleetEvent) -> None:
        self.events.append(event)

    def of_type(self, kind: type) -> list[FleetEvent]:
        """All recorded events of one class."""
        return [e for e in self.events if isinstance(e, kind)]

    def count(self, kind: type) -> int:
        """How many events of one class were recorded."""
        return len(self.of_type(kind))


def format_event(event: FleetEvent, ts: str | None = None) -> str | None:
    """One timestamped progress line, or ``None`` for silent events.

    ``JobQueued`` is silent (a 1000-job grid would print 1000 lines
    before any work happened); completions, retries and fleet
    transitions each get a line, prefixed with a wall-clock ISO-8601
    timestamp so fleet logs are machine-parseable (sortable, and
    greppable by second).  Pass ``ts`` to pin the stamp (tests).
    """
    line = _format_event_body(event)
    if line is None:
        return None
    if ts is None:
        ts = time.strftime("%Y-%m-%dT%H:%M:%S")
    return f"{ts} {line}"


def _format_event_body(event: FleetEvent) -> str | None:
    if isinstance(event, FleetStarted):
        plural = "es" if event.workers != 1 else ""
        return f"fleet: {event.n_jobs} jobs on {event.workers} process{plural}"
    if isinstance(event, JobCached):
        return f"cache {event.job_id}  hit ({event.wall_s * 1e3:.2f} ms)"
    if isinstance(event, JobDone):
        return (
            f"done  {event.job_id}  "
            f"wall {event.wall_s:6.2f} s  "
            f"{event.sim_throughput:6.1f} sim-s/s"
        )
    if isinstance(event, JobFailed):
        tag = "timeout" if event.timed_out else "failed"
        state = "giving up" if event.final else "will retry"
        return f"{tag} {event.job_id} (attempt {event.attempt}, {state}): {event.error}"
    if isinstance(event, JobRetried):
        return f"retry {event.job_id} (attempt {event.attempt})"
    if isinstance(event, FleetProgress):
        return (
            f"progress: {event.done + event.failed}/{event.total} "
            f"({event.failed} failed) in {event.elapsed_s:.1f} s"
        )
    if isinstance(event, FleetFinished):
        return (
            f"fleet finished: {event.done} ok, {event.failed} failed, "
            f"wall {event.wall_s:.1f} s"
        )
    return None


def format_progress_line(event: FleetProgress, width: int = 30) -> str:
    """A single-line progress bar for in-place (``--progress live``)
    rendering: ``[#####.....] 12/40 (0 failed) 3.2 s``."""
    total = max(event.total, 1)
    completed = event.done + event.failed
    filled = int(width * completed / total)
    bar = "#" * filled + "." * (width - filled)
    return (
        f"[{bar}] {completed}/{event.total} "
        f"({event.failed} failed) {event.elapsed_s:.1f} s"
    )
