"""repro.fleet — parallel fleet execution for device-scale sweeps.

A declarative grid of simulation jobs — chip preset x scenario x
governor-or-checkpoint x seed — executed across worker processes with
deterministic per-job seeding, per-job timeouts, bounded retry, failure
isolation, and a progress/telemetry event stream.  Parallel results
aggregate bit-identically to serial runs.

Quick start::

    from repro.fleet import FleetSpec, run_fleet

    spec = FleetSpec(
        scenarios=("gaming", "web_browsing"),
        governors=("ondemand", "schedutil"),
        seeds=(100, 200),
        duration_s=10.0,
    )
    result = run_fleet(spec, jobs=4)
    print(result.sweep_result(seed=100).mean_energy_per_qos("ondemand"))

Module map:

* :mod:`repro.fleet.spec`      — :class:`JobSpec` / :class:`FleetSpec`
* :mod:`repro.fleet.worker`    — per-job execution, timeout guard,
  :class:`JobSuccess` / :class:`JobFailure`
* :mod:`repro.fleet.runner`    — the process-pool executor
* :mod:`repro.fleet.events`    — telemetry events + :class:`EventLog`
* :mod:`repro.fleet.aggregate` — order-independent aggregation
"""

from repro.fleet.aggregate import (
    failure_table,
    fleet_summary,
    merge_job_metrics,
    result_table,
    split_by_seed,
    to_sweep_result,
    to_sweep_rows,
    trace_paths,
)
from repro.fleet.events import (
    EventLog,
    FleetEvent,
    FleetFinished,
    FleetProgress,
    FleetStarted,
    JobCached,
    JobDone,
    JobFailed,
    JobQueued,
    JobRetried,
    format_event,
    format_progress_line,
)
from repro.fleet.runner import FleetResult, resolve_workers, run_fleet
from repro.fleet.spec import CHECKPOINT_PREFIX, RL_POLICY, FleetSpec, JobSpec
from repro.fleet.worker import (
    JobFailure,
    JobMeasurement,
    JobOutcome,
    JobSuccess,
    JobTimeout,
    execute_job,
    run_job,
)

__all__ = [
    "CHECKPOINT_PREFIX",
    "EventLog",
    "FleetEvent",
    "FleetFinished",
    "FleetProgress",
    "FleetResult",
    "FleetSpec",
    "FleetStarted",
    "JobCached",
    "JobDone",
    "JobFailed",
    "JobFailure",
    "JobMeasurement",
    "JobOutcome",
    "JobQueued",
    "JobRetried",
    "JobSpec",
    "JobSuccess",
    "JobTimeout",
    "RL_POLICY",
    "execute_job",
    "failure_table",
    "fleet_summary",
    "format_event",
    "format_progress_line",
    "merge_job_metrics",
    "resolve_workers",
    "result_table",
    "run_fleet",
    "run_job",
    "split_by_seed",
    "to_sweep_result",
    "to_sweep_rows",
    "trace_paths",
]
