"""Order-independent aggregation of fleet outcomes.

Workers finish in nondeterministic order; every function here sorts by
the job's grid index first, so a parallel fleet aggregates to exactly
the rows a serial run would produce — the determinism contract the
tests pin down.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

from repro.analysis.sweep import SweepResult, SweepRow
from repro.analysis.tables import format_table
from repro.fleet.worker import JobFailure, JobSuccess
from repro.obs.metrics import merge_snapshots

if TYPE_CHECKING:
    from repro.fleet.runner import FleetResult


def to_sweep_rows(successes: Iterable[JobSuccess]) -> list[SweepRow]:
    """Sweep rows from successful jobs, in grid order."""
    return [
        SweepRow(
            scenario=s.spec.scenario,
            governor=s.spec.governor,
            energy_j=s.energy_j,
            mean_qos=s.mean_qos,
            deadline_miss_rate=s.deadline_miss_rate,
            energy_per_qos_j=s.energy_per_qos_j,
        )
        for s in sorted(successes, key=lambda s: s.index)
    ]


def to_sweep_result(
    successes: Iterable[JobSuccess], seed: int | None = None
) -> SweepResult:
    """A :class:`~repro.analysis.sweep.SweepResult` from fleet successes.

    Args:
        successes: Completed jobs (any order; re-sorted by grid index).
        seed: Keep only jobs of one evaluation seed (``None`` = all).
    """
    kept = [
        s for s in successes if seed is None or s.spec.seed == seed
    ]
    return SweepResult(rows=to_sweep_rows(kept))


def split_by_seed(successes: Iterable[JobSuccess]) -> dict[int, SweepResult]:
    """One :class:`~repro.analysis.sweep.SweepResult` per evaluation seed."""
    seeds: list[int] = []
    for s in successes:
        if s.spec.seed not in seeds:
            seeds.append(s.spec.seed)
    return {seed: to_sweep_result(successes, seed=seed) for seed in seeds}


def merge_job_metrics(successes: Iterable[JobSuccess]) -> dict[str, Any]:
    """Fold per-job observability snapshots into one grid-wide snapshot.

    Jobs that carried no snapshot (``collect_metrics`` off, or a
    pre-observability worker) are skipped; counters and histograms sum
    across the grid, gauges average
    (:func:`repro.obs.metrics.merge_snapshots` semantics).  Sorted by
    grid index first so the fold order — and thus any floating-point
    accumulation — is deterministic.
    """
    ordered = sorted(successes, key=lambda s: s.index)
    return merge_snapshots(
        s.metrics for s in ordered if s.metrics is not None
    )


def trace_paths(successes: Iterable[JobSuccess]) -> list[str]:
    """Per-job Chrome trace files (grid order), ``trace_dir`` jobs only.

    Feed these to :func:`repro.obs.export.merge_trace_files` to stitch
    the fleet onto one timeline.
    """
    ordered = sorted(successes, key=lambda s: s.index)
    return [s.trace_path for s in ordered if s.trace_path is not None]


def result_table(successes: Iterable[JobSuccess]) -> str:
    """The per-job metric table (grid order), for CLI/report output."""
    rows = [
        (
            s.spec.scenario,
            s.spec.governor,
            s.spec.seed,
            s.energy_j,
            s.mean_qos,
            s.energy_per_qos_j * 1e3,
            s.wall_s,
        )
        for s in sorted(successes, key=lambda s: s.index)
    ]
    return format_table(
        ["scenario", "governor", "seed", "energy [J]", "QoS",
         "E/QoS [mJ/unit]", "wall [s]"],
        rows,
        title="fleet results",
    )


def failure_table(failures: Iterable[JobFailure]) -> str:
    """The failed-job table (grid order), empty string when clean."""
    failures = sorted(failures, key=lambda f: f.index)
    if not failures:
        return ""
    rows = [
        (
            f.job_id,
            f.error_type,
            f.error[:60],
            f.attempts,
            "yes" if f.timed_out else "no",
        )
        for f in failures
    ]
    return format_table(
        ["job", "error", "message", "attempts", "timeout"],
        rows,
        title="failed jobs",
    )


def fleet_summary(result: "FleetResult") -> str:
    """One-paragraph execution summary of a
    :class:`~repro.fleet.runner.FleetResult` (wall clock, throughput,
    estimated serial-vs-parallel speedup)."""
    successes = result.successes
    sim_s = sum(s.sim_duration_s for s in successes)
    lines = [
        f"jobs:     {len(successes)} ok, {len(result.failures)} failed "
        f"of {result.n_jobs} (workers: {result.workers})",
        f"wall:     {result.wall_s:.2f} s fleet, "
        f"{result.serial_wall_estimate_s:.2f} s serial estimate "
        f"({result.speedup:.2f}x speedup)",
    ]
    if result.wall_s > 0 and sim_s > 0:
        lines.append(
            f"sim rate: {sim_s / result.wall_s:.1f} simulated s "
            "per wall s (evaluation traces, fleet-wide)"
        )
    if result.cache_hits:
        lines.append(
            f"cache:    {result.cache_hits} of {result.n_jobs} jobs "
            "served from the run cache (no simulation)"
        )
    return "\n".join(lines)
