"""The fleet executor: a job grid over a process pool.

``run_fleet`` takes an expanded job list (or a
:class:`~repro.fleet.spec.FleetSpec`) and executes every job with

* **failure isolation** — a crashing or hanging job becomes a structured
  :class:`~repro.fleet.worker.JobFailure` row; the rest of the grid is
  unaffected,
* **bounded retry** — failed/timed-out jobs are re-queued up to
  ``retries`` extra attempts,
* **deterministic aggregation** — outcomes are sorted by grid index, so
  the result is independent of worker count and completion order, and
* **telemetry** — every lifecycle transition is emitted to ``on_event``
  (see :mod:`repro.fleet.events`).

``jobs=1`` runs everything in-process through the *same* guarded entry
point, which is both the fast path for small grids and the reference the
determinism tests compare the pool against.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.errors import ReproError
from repro.fleet.events import (
    FleetEvent,
    FleetFinished,
    FleetProgress,
    FleetStarted,
    JobCached,
    JobDone,
    JobFailed,
    JobQueued,
    JobRetried,
)
from repro.fleet.spec import FleetSpec, JobSpec
from repro.fleet.worker import (
    JobFailure,
    JobMeasurement,
    JobOutcome,
    JobSuccess,
    execute_job,
    run_job,
)

if TYPE_CHECKING:
    from repro.analysis.sweep import SweepResult
    from repro.cache import RunCache
    from repro.obs.opslog import OpsLogger


def _trace_id(spec: JobSpec) -> str:
    """The spec's correlation id, for stamping onto fleet events."""
    return spec.trace_context.trace_id if spec.trace_context else ""


def resolve_workers(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` means the CPU count."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ReproError(f"worker count must be >= 1: {jobs}")
    return jobs


@dataclass
class FleetResult:
    """Everything a finished fleet produced.

    Attributes:
        outcomes: One entry per grid job, in grid order (successes and
            failures interleaved exactly where their specs sat).
        workers: Worker-process count used.
        wall_s: Fleet wall-clock seconds.
    """

    outcomes: list[JobOutcome] = field(default_factory=list)
    workers: int = 1
    wall_s: float = 0.0

    @property
    def successes(self) -> list[JobSuccess]:
        return [o for o in self.outcomes if isinstance(o, JobSuccess)]

    @property
    def failures(self) -> list[JobFailure]:
        return [o for o in self.outcomes if isinstance(o, JobFailure)]

    @property
    def n_jobs(self) -> int:
        return len(self.outcomes)

    @property
    def cache_hits(self) -> int:
        """Jobs served from the run cache instead of simulated."""
        return sum(1 for s in self.successes if s.cached)

    @property
    def cache_misses(self) -> int:
        """Jobs that actually executed (everything not a cache hit)."""
        return self.n_jobs - self.cache_hits

    @property
    def serial_wall_estimate_s(self) -> float:
        """Sum of per-job walls — what one process would have paid."""
        return sum(o.wall_s for o in self.outcomes)

    @property
    def speedup(self) -> float:
        """Estimated serial-vs-fleet wall-clock ratio."""
        return self.serial_wall_estimate_s / self.wall_s if self.wall_s > 0 else 0.0

    def raise_on_failure(self) -> None:
        """Raise a :class:`ReproError` summarising any failed jobs."""
        if not self.failures:
            return
        lines = [
            f"  {f.job_id}: {f.error_type}: {f.error} "
            f"({f.attempts} attempt{'s' if f.attempts != 1 else ''})"
            for f in self.failures
        ]
        raise ReproError(
            f"{len(self.failures)} of {self.n_jobs} fleet jobs failed:\n"
            + "\n".join(lines)
        )

    def sweep_result(
        self, seed: int | None = None, strict: bool = True
    ) -> "SweepResult":
        """The successes as a :class:`~repro.analysis.sweep.SweepResult`.

        Args:
            seed: Keep only rows of one evaluation seed (``None`` = all).
            strict: Raise if any job failed (default), rather than
                silently aggregating a grid with holes.
        """
        from repro.fleet.aggregate import to_sweep_result

        if strict:
            self.raise_on_failure()
        return to_sweep_result(self.successes, seed=seed)


def _resolve_cache(cache: "RunCache | bool | None") -> "RunCache | None":
    """Normalise the ``cache`` argument: ``True`` opens the default
    store, ``False``/``None`` disables caching, a :class:`RunCache`
    instance is used as-is."""
    if cache is None or cache is False:
        return None
    if cache is True:
        from repro.cache import RunCache

        return RunCache()
    return cache


def run_fleet(
    spec: FleetSpec | Sequence[JobSpec],
    jobs: int | None = None,
    timeout_s: float | None = None,
    retries: int | None = None,
    on_event: Callable[[FleetEvent], None] | None = None,
    job_fn: Callable[[JobSpec], JobMeasurement] = execute_job,
    cache: "RunCache | bool | None" = None,
    ops_log: "OpsLogger | None" = None,
) -> FleetResult:
    """Execute a grid of simulation jobs, possibly in parallel.

    Args:
        spec: A :class:`~repro.fleet.spec.FleetSpec` (expanded here) or
            an already-expanded job list.
        jobs: Worker processes; ``None`` defers to the fleet spec (or 1
            for a bare job list), ``0`` means the CPU count.
        timeout_s: Per-job wall-clock budget (``None`` defers to the
            spec; jobs overrunning it fail with ``timed_out=True``).
        retries: Extra attempts per failed job (``None`` defers to the
            spec, default 0).
        on_event: Telemetry callback (:mod:`repro.fleet.events`).
        job_fn: Measurement function executed per job; must be a
            module-level (picklable) callable for ``jobs > 1``.
        cache: Content-addressed run cache (:mod:`repro.cache`).
            ``True`` opens the default store; a :class:`RunCache`
            instance pins a specific directory.  Cacheable jobs whose
            result is already stored are served without dispatching a
            worker (a :class:`~repro.fleet.events.JobCached` event
            instead of queue/done), and fresh successes are stored for
            the next run.  ``None``/``False`` (default) disables both.
        ops_log: Structured ops logger
            (:class:`repro.obs.opslog.OpsLogger`); every terminal job
            transition (done, cached, final failure) appends one
            ``kind="job"`` record carrying the job's trace_id.

    Returns:
        A :class:`FleetResult` with one outcome per job in grid order.
    """
    if isinstance(spec, FleetSpec):
        specs = spec.expand()
        jobs = spec.jobs if jobs is None else jobs
        timeout_s = spec.timeout_s if timeout_s is None else timeout_s
        retries = spec.retries if retries is None else retries
    else:
        specs = list(spec)
    jobs = resolve_workers(1 if jobs is None else jobs)
    retries = 0 if retries is None else retries
    if retries < 0:
        raise ReproError(f"retries must be non-negative: {retries}")
    if not specs:
        raise ReproError("fleet needs at least one job")

    store = _resolve_cache(cache)
    start = time.perf_counter()

    # Cache probe: hits become ready-made outcomes before any worker
    # spawns; only the misses are dispatched.
    outcomes: list[JobOutcome] = []
    indexed: list[tuple[int, JobSpec]] = []
    if store is None:
        indexed = list(enumerate(specs))
    else:
        for index, job_spec in enumerate(specs):
            probe_start = time.perf_counter()
            measurement = store.probe(job_spec)
            if measurement is None:
                indexed.append((index, job_spec))
                continue
            outcomes.append(
                JobSuccess(
                    spec=job_spec,
                    index=index,
                    energy_j=measurement.energy_j,
                    mean_qos=measurement.mean_qos,
                    deadline_miss_rate=measurement.deadline_miss_rate,
                    energy_per_qos_j=measurement.energy_per_qos_j,
                    sim_duration_s=measurement.sim_duration_s,
                    wall_s=time.perf_counter() - probe_start,
                    attempts=0,
                    cached=True,
                )
            )

    workers = max(1, min(jobs, len(indexed) if store is not None else len(specs)))
    emit = on_event or (lambda event: None)
    if ops_log is not None:
        emit = _ops_logging_emit(ops_log, emit)
    emit(FleetStarted(n_jobs=len(specs), workers=workers))
    for hit in outcomes:
        emit(JobCached(index=hit.index, job_id=hit.job_id, wall_s=hit.wall_s,
                       trace_id=_trace_id(hit.spec)))
    if outcomes:
        emit(
            FleetProgress(
                done=len(outcomes),
                failed=0,
                total=len(specs),
                elapsed_s=time.perf_counter() - start,
            )
        )

    if indexed:
        if workers <= 1:
            fresh = _run_serial(indexed, timeout_s, retries, emit, job_fn,
                                start, total=len(specs),
                                base_done=len(outcomes))
        else:
            fresh = _run_pool(indexed, workers, timeout_s, retries, emit,
                              job_fn, start, total=len(specs),
                              base_done=len(outcomes))
        if store is not None:
            for outcome in fresh:
                if isinstance(outcome, JobSuccess):
                    store.store(
                        outcome.spec,
                        JobMeasurement(
                            energy_j=outcome.energy_j,
                            mean_qos=outcome.mean_qos,
                            deadline_miss_rate=outcome.deadline_miss_rate,
                            energy_per_qos_j=outcome.energy_per_qos_j,
                            sim_duration_s=outcome.sim_duration_s,
                        ),
                    )
        outcomes.extend(fresh)

    outcomes.sort(key=lambda o: o.index)
    result = FleetResult(
        outcomes=outcomes, workers=workers, wall_s=time.perf_counter() - start
    )
    emit(
        FleetFinished(
            done=len(result.successes),
            failed=len(result.failures),
            wall_s=result.wall_s,
        )
    )
    return result


def _ops_logging_emit(
    ops_log: "OpsLogger", downstream: Callable[[FleetEvent], None]
) -> Callable[[FleetEvent], None]:
    """Wrap an event callback so terminal job events also append one
    structured ops record (the only writes go through the logger)."""
    from repro.obs.opslog import job_record_from_event

    def emit(event: FleetEvent) -> None:
        record = job_record_from_event(event)
        if record is not None:
            ops_log.log(record)
        downstream(event)

    return emit


def _report(
    outcome: JobOutcome,
    attempt: int,
    retries: int,
    emit: Callable[[FleetEvent], None],
) -> bool:
    """Emit the completion event; returns whether the job should retry."""
    if isinstance(outcome, JobSuccess):
        emit(
            JobDone(
                index=outcome.index,
                job_id=outcome.job_id,
                wall_s=outcome.wall_s,
                sim_throughput=outcome.sim_throughput,
                metrics=outcome.metrics,
                trace_path=outcome.trace_path,
                trace_id=_trace_id(outcome.spec),
            )
        )
        return False
    final = attempt > retries
    emit(
        JobFailed(
            index=outcome.index,
            job_id=outcome.job_id,
            attempt=attempt,
            error=f"{outcome.error_type}: {outcome.error}",
            timed_out=outcome.timed_out,
            final=final,
            trace_id=_trace_id(outcome.spec),
        )
    )
    return not final


def _run_serial(
    indexed: list[tuple[int, JobSpec]],
    timeout_s: float | None,
    retries: int,
    emit: Callable[[FleetEvent], None],
    job_fn: Callable[[JobSpec], JobMeasurement],
    start: float,
    total: int | None = None,
    base_done: int = 0,
) -> list[JobOutcome]:
    """Run ``(grid index, spec)`` pairs in-process.

    ``total``/``base_done`` fold pre-resolved jobs (cache hits) into the
    progress totals so a partially-cached fleet still counts to 100 %.
    """
    total = len(indexed) if total is None else total
    outcomes: list[JobOutcome] = []
    failed = 0
    for index, job_spec in indexed:
        emit(JobQueued(index=index, job_id=job_spec.job_id,
                       trace_id=_trace_id(job_spec)))
        attempt = 1
        while True:
            outcome = run_job(
                job_spec, index=index, attempt=attempt,
                timeout_s=timeout_s, job_fn=job_fn,
            )
            if not _report(outcome, attempt, retries, emit):
                break
            attempt += 1
            emit(JobRetried(index=index, job_id=job_spec.job_id,
                            attempt=attempt, trace_id=_trace_id(job_spec)))
        outcomes.append(outcome)
        failed += isinstance(outcome, JobFailure)
        emit(
            FleetProgress(
                done=base_done + len(outcomes) - failed,
                failed=failed,
                total=total,
                elapsed_s=time.perf_counter() - start,
            )
        )
    return outcomes


def _run_pool(
    indexed: list[tuple[int, JobSpec]],
    workers: int,
    timeout_s: float | None,
    retries: int,
    emit: Callable[[FleetEvent], None],
    job_fn: Callable[[JobSpec], JobMeasurement],
    start: float,
    total: int | None = None,
    base_done: int = 0,
) -> list[JobOutcome]:
    total = len(indexed) if total is None else total
    spec_by_index = dict(indexed)
    outcomes: list[JobOutcome] = []
    failed = 0
    with ProcessPoolExecutor(max_workers=workers) as pool:

        def submit(index: int, attempt: int) -> Future:
            future = pool.submit(
                run_job,
                spec_by_index[index],
                index=index,
                attempt=attempt,
                timeout_s=timeout_s,
                job_fn=job_fn,
            )
            future.job_index = index  # type: ignore[attr-defined]
            future.job_attempt = attempt  # type: ignore[attr-defined]
            return future

        pending: set[Future] = set()
        for index, job_spec in indexed:
            emit(JobQueued(index=index, job_id=job_spec.job_id,
                           trace_id=_trace_id(job_spec)))
            pending.add(submit(index, attempt=1))

        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                index = future.job_index  # type: ignore[attr-defined]
                attempt = future.job_attempt  # type: ignore[attr-defined]
                try:
                    outcome = future.result()
                except Exception as exc:  # pool-level (e.g. pickling) error
                    outcome = JobFailure(
                        spec=spec_by_index[index],
                        index=index,
                        error_type=type(exc).__name__,
                        error=str(exc),
                        traceback_str="",
                        wall_s=0.0,
                        attempts=attempt,
                    )
                if _report(outcome, attempt, retries, emit):
                    emit(
                        JobRetried(
                            index=index,
                            job_id=spec_by_index[index].job_id,
                            attempt=attempt + 1,
                            trace_id=_trace_id(spec_by_index[index]),
                        )
                    )
                    pending.add(submit(index, attempt=attempt + 1))
                    continue
                outcomes.append(outcome)
                failed += isinstance(outcome, JobFailure)
                emit(
                    FleetProgress(
                        done=base_done + len(outcomes) - failed,
                        failed=failed,
                        total=total,
                        elapsed_s=time.perf_counter() - start,
                    )
                )
    return outcomes
