"""Declarative job and grid specifications for fleet execution.

A :class:`JobSpec` names everything one simulation job needs — chip
preset, scenario, governor (or RL training, or a saved checkpoint), the
evaluation seed, and durations — as plain picklable data, so the job can
be shipped to a worker process and recomputed deterministically from the
spec alone.  A :class:`FleetSpec` is the cartesian grid
(chips x scenarios x governors x seeds) plus the runtime knobs (worker
count, per-job timeout, retry budget), and expands to an ordered job
list.

Grid expansion order is the contract that makes parallel execution
aggregate identically to a serial sweep: jobs are indexed in
chip-major, scenario-, governor-, seed-minor order, exactly the nesting
:func:`repro.analysis.sweep.sweep` uses, and results are re-sorted by
that index no matter when each worker finishes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping

from repro.core.config import PolicyConfig
from repro.errors import ReproError
from repro.obs.context import TraceContext
from repro.soc.chip import Chip

RL_POLICY = "rl-policy"
"""Governor name that makes a job train + evaluate the proposed policy."""

CHECKPOINT_PREFIX = "checkpoint:"
"""Governor-name prefix that evaluates a saved policy checkpoint."""


@dataclass(frozen=True)
class JobSpec:
    """One fully-determined simulation job.

    Attributes:
        scenario: Workload scenario name.
        governor: Baseline governor name, ``"rl-policy"`` (train the
            proposed policy on the scenario, then evaluate greedily), or
            ``"checkpoint:<dir>"`` (evaluate a saved checkpoint).
        seed: Evaluation trace seed.
        chip: Chip preset name (see :data:`repro.soc.presets.PRESETS`).
        duration_s: Evaluation trace length in simulated seconds.
        interval_s: DVFS sampling interval.
        train_episodes: RL training budget (``rl-policy`` jobs only).
        train_base_seed: First training-trace seed; episode ``k`` uses
            ``train_base_seed + k`` (disjoint from ``seed`` by
            convention, as in the serial sweep).
        train_episode_s: Per-episode trace length; ``None`` means
            ``duration_s``.
        full_system: Simulate with thermals + throttling, cpuidle
            C-states, and DVFS transition costs enabled (the X1
            configuration).
        collect_metrics: Run the job under a metrics-only observability
            session (:func:`repro.obs.capture`) and ship the registry
            snapshot back on the job's success/``JobDone`` event.
        trace_dir: When set (implies ``collect_metrics`` behaviour with
            tracing on), the worker writes a per-job Chrome trace named
            ``<job_id>-pid<pid>.json`` into this directory, tagged with
            the worker pid and the tracer epoch so
            :func:`repro.obs.export.merge_traces` can stitch the fleet
            onto one timeline.
        learn_log_dir: When set on an ``rl-policy`` job, the worker's
            training loop appends a per-episode learning ledger
            (:class:`repro.obs.learn.LearnRecorder`) named
            ``<job_id>-pid<pid>.jsonl`` into this directory.  Training
            results are bit-identical either way; ``full_system`` RL
            jobs run their own episode loop and do not ledger.
        policy_config: RL policy configuration override.
        chip_obj: Escape hatch for non-preset chips (e.g. loaded from a
            device-tree JSON); takes precedence over ``chip``.  Not
            JSON-serialisable.
        trace_context: Correlation identity of the request this job
            serves (:class:`repro.obs.context.TraceContext`); the worker
            re-binds it before executing so the job's spans, events, and
            ops records carry the originating trace_id.  Deliberately
            excluded from :meth:`to_mapping` and from equality — the
            run cache keys on the spec mapping, and *who asked* must
            never change *what is computed*.
    """

    scenario: str
    governor: str
    seed: int = 100
    chip: str = "exynos5422"
    duration_s: float = 20.0
    interval_s: float = 0.01
    train_episodes: int = 12
    train_base_seed: int = 0
    train_episode_s: float | None = None
    full_system: bool = False
    collect_metrics: bool = False
    trace_dir: str | None = None
    learn_log_dir: str | None = None
    policy_config: PolicyConfig | None = field(default=None, repr=False)
    chip_obj: Chip | None = field(default=None, repr=False, compare=False)
    trace_context: TraceContext | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.scenario:
            raise ReproError("job spec needs a scenario name")
        if not self.governor:
            raise ReproError("job spec needs a governor name")
        if self.duration_s <= 0:
            raise ReproError(f"duration must be positive: {self.duration_s}")
        if self.interval_s <= 0:
            raise ReproError(f"interval must be positive: {self.interval_s}")
        if self.train_episodes < 1:
            raise ReproError(
                f"need at least one training episode: {self.train_episodes}"
            )
        if self.train_episode_s is not None and self.train_episode_s <= 0:
            raise ReproError(
                f"episode duration must be positive: {self.train_episode_s}"
            )

    @property
    def job_id(self) -> str:
        """Human-readable identity, e.g. ``exynos5422/gaming/ondemand/s100``."""
        return f"{self.chip}/{self.scenario}/{self.governor}/s{self.seed}"

    @property
    def is_rl(self) -> bool:
        return self.governor == RL_POLICY

    @property
    def is_checkpoint(self) -> bool:
        return self.governor.startswith(CHECKPOINT_PREFIX)

    def to_mapping(self) -> dict[str, Any]:
        """A JSON-serialisable dict (round-trips via :meth:`from_mapping`).

        Raises:
            ReproError: If the spec carries a non-serialisable
                ``chip_obj`` or ``policy_config``.
        """
        if self.chip_obj is not None:
            raise ReproError("a job spec with chip_obj cannot be serialised")
        if self.policy_config is not None:
            raise ReproError(
                "a job spec with a policy_config cannot be serialised"
            )
        # trace_context is correlation identity, not job identity: the
        # run cache hashes this mapping, and two requests asking for the
        # same computation must share a cache entry.
        data = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name not in ("chip_obj", "policy_config", "trace_context")
        }
        return data

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "JobSpec":
        """Build a spec from a mapping (e.g. parsed JSON).

        A ``trace_context`` key is accepted as either a
        :class:`~repro.obs.context.TraceContext` or its
        ``to_mapping`` form, so explicitly-correlated requests can ship
        specs over JSON envelopes.

        Raises:
            ReproError: For unknown keys.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ReproError(
                f"unknown job spec keys {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        kwargs = dict(data)
        ctx = kwargs.get("trace_context")
        if ctx is not None and not isinstance(ctx, TraceContext):
            kwargs["trace_context"] = TraceContext.from_mapping(ctx)
        return cls(**kwargs)

    def with_seed(self, seed: int) -> "JobSpec":
        """A copy of this spec at another evaluation seed."""
        return replace(self, seed=seed)


@dataclass(frozen=True)
class FleetSpec:
    """A declarative grid of jobs plus fleet runtime knobs.

    The grid is the cartesian product
    ``chips x scenarios x (governors [+ rl-policy]) x seeds``; every job
    shares the duration/interval/training settings.

    Attributes:
        scenarios: Scenario names (one axis of the grid).
        governors: Governor names (baselines and/or ``checkpoint:<dir>``).
        seeds: Evaluation seeds.
        chips: Chip preset names.
        include_rl: Append ``rl-policy`` to the governor axis (after the
            baselines, matching the serial sweep's row order).
        collect_metrics: Every job runs under a metrics-only
            observability session; snapshots come back per job and merge
            via :func:`repro.fleet.aggregate.merge_job_metrics`.
        trace_dir: Directory for per-job Chrome traces (see
            :attr:`JobSpec.trace_dir`); ``None`` disables tracing.
        learn_log_dir: Directory for per-job learning ledgers (see
            :attr:`JobSpec.learn_log_dir`); ``None`` disables them.
        jobs: Default worker-process count for
            :func:`repro.fleet.runner.run_fleet` (``None`` = CPU count).
        timeout_s: Per-job wall-clock timeout (``None`` = unlimited).
        retries: Extra attempts granted to a failed/timed-out job.
    """

    scenarios: tuple[str, ...]
    governors: tuple[str, ...]
    seeds: tuple[int, ...] = (100,)
    chips: tuple[str, ...] = ("exynos5422",)
    include_rl: bool = False
    duration_s: float = 20.0
    interval_s: float = 0.01
    train_episodes: int = 12
    train_base_seed: int = 0
    train_episode_s: float | None = None
    full_system: bool = False
    collect_metrics: bool = False
    trace_dir: str | None = None
    learn_log_dir: str | None = None
    jobs: int | None = 1
    timeout_s: float | None = None
    retries: int = 0

    def __post_init__(self) -> None:
        # Tolerate lists (e.g. parsed JSON) by freezing the axes.
        for name in ("scenarios", "governors", "seeds", "chips"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
        if not self.scenarios:
            raise ReproError("fleet spec needs at least one scenario")
        if not self.governors and not self.include_rl:
            raise ReproError("fleet spec needs at least one governor")
        if not self.seeds:
            raise ReproError("fleet spec needs at least one seed")
        if not self.chips:
            raise ReproError("fleet spec needs at least one chip")
        if self.retries < 0:
            raise ReproError(f"retries must be non-negative: {self.retries}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ReproError(f"timeout must be positive: {self.timeout_s}")
        if self.jobs is not None and self.jobs < 1:
            raise ReproError(f"worker count must be >= 1: {self.jobs}")

    @property
    def governor_axis(self) -> tuple[str, ...]:
        """The governor axis with ``rl-policy`` appended when requested."""
        if self.include_rl and RL_POLICY not in self.governors:
            return self.governors + (RL_POLICY,)
        return self.governors

    @property
    def n_jobs(self) -> int:
        """Grid size (number of jobs :meth:`expand` yields)."""
        return (
            len(self.chips)
            * len(self.scenarios)
            * len(self.governor_axis)
            * len(self.seeds)
        )

    def expand(self) -> list[JobSpec]:
        """The ordered job list: chip-major, then scenario, governor, seed."""
        specs: list[JobSpec] = []
        for chip in self.chips:
            for scenario in self.scenarios:
                for governor in self.governor_axis:
                    for seed in self.seeds:
                        specs.append(
                            JobSpec(
                                scenario=scenario,
                                governor=governor,
                                seed=seed,
                                chip=chip,
                                duration_s=self.duration_s,
                                interval_s=self.interval_s,
                                train_episodes=self.train_episodes,
                                train_base_seed=self.train_base_seed,
                                train_episode_s=self.train_episode_s,
                                full_system=self.full_system,
                                collect_metrics=self.collect_metrics,
                                trace_dir=self.trace_dir,
                                learn_log_dir=self.learn_log_dir,
                            )
                        )
        return specs

    def to_mapping(self) -> dict[str, Any]:
        """A JSON-serialisable dict (round-trips via :meth:`from_mapping`)."""
        data: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            data[f.name] = list(value) if isinstance(value, tuple) else value
        return data

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "FleetSpec":
        """Build a fleet spec from a mapping (e.g. a parsed JSON file).

        Raises:
            ReproError: For unknown keys.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ReproError(
                f"unknown fleet spec keys {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        return cls(**data)
