"""Per-job execution in (or out of) a worker process.

:func:`execute_job` recomputes one :class:`~repro.fleet.spec.JobSpec`
from scratch — fresh chip, fresh power model, trace regenerated from the
spec's seed — so a job's result depends only on its spec, never on which
process ran it or what ran before.  That is what makes parallel fleet
rows bit-identical to a serial sweep.

:func:`run_job` is the guarded pool entry: it times the attempt, arms a
``SIGALRM``-based wall-clock timeout (so a hung simulation is
interrupted *inside* the worker and the pool slot is reclaimed), and
converts any exception into a structured :class:`JobFailure` instead of
letting it propagate and poison the executor.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterator, Mapping

if TYPE_CHECKING:
    from repro.core.policy import RLPowerManagementPolicy
    from repro.obs import ObsSession
    from repro.obs.learn import LearnRecorder

from repro.errors import ReproError
from repro.fleet.spec import CHECKPOINT_PREFIX, JobSpec
from repro.governors import Governor, create
from repro.power.model import PowerModel
from repro.sim.engine import Simulator
from repro.sim.result import SimulationResult
from repro.soc.chip import Chip
from repro.soc.presets import PRESETS
from repro.workload.scenarios import get_scenario
from repro.workload.trace import Trace


@dataclass(frozen=True)
class JobMeasurement:
    """The raw metrics one job produces (mirrors a sweep row).

    Attributes:
        metrics: Observability-registry snapshot captured inside the
            worker (``collect_metrics``/``trace_dir`` jobs only, else
            ``None``); carries a ``"meta"`` section tagging the job id
            and worker pid.
        trace_path: The per-job Chrome trace file (``trace_dir`` jobs
            only, else ``None``).
    """

    energy_j: float
    mean_qos: float
    deadline_miss_rate: float
    energy_per_qos_j: float
    sim_duration_s: float
    metrics: dict | None = None
    trace_path: str | None = None


@dataclass(frozen=True)
class JobSuccess:
    """A completed job: its spec, metrics, and execution telemetry.

    Attributes:
        index: Position in the expanded grid (aggregation sort key).
        wall_s: Wall-clock seconds of the successful attempt.
        attempts: 1-based number of attempts used.
        cached: Whether the result came from the run cache
            (:mod:`repro.cache`) instead of a fresh simulation; cached
            rows carry the cache-probe wall time, not a simulation's.
    """

    spec: JobSpec
    index: int
    energy_j: float
    mean_qos: float
    deadline_miss_rate: float
    energy_per_qos_j: float
    sim_duration_s: float
    wall_s: float
    attempts: int = 1
    metrics: dict | None = None
    trace_path: str | None = None
    cached: bool = False

    @property
    def job_id(self) -> str:
        return self.spec.job_id

    @property
    def sim_throughput(self) -> float:
        """Simulated seconds per wall-clock second."""
        return self.sim_duration_s / self.wall_s if self.wall_s > 0 else 0.0


@dataclass(frozen=True)
class JobFailure:
    """A job that exhausted its attempts; the sweep-row-shaped tombstone.

    Attributes:
        error_type: Exception class name (``"JobTimeout"`` for timeouts).
        error: The exception message.
        traceback_str: Formatted traceback from the worker.
        attempts: 1-based number of attempts used.
        timed_out: Whether the final attempt hit the per-job timeout.
    """

    spec: JobSpec
    index: int
    error_type: str
    error: str
    traceback_str: str
    wall_s: float
    attempts: int = 1
    timed_out: bool = False

    @property
    def job_id(self) -> str:
        return self.spec.job_id


JobOutcome = JobSuccess | JobFailure


class JobTimeout(ReproError):
    """Raised inside a worker when a job overruns its wall-clock budget."""


def _build_chip(spec: JobSpec) -> Chip:
    if spec.chip_obj is not None:
        return spec.chip_obj
    try:
        factory = PRESETS[spec.chip]
    except KeyError:
        raise ReproError(
            f"unknown chip preset {spec.chip!r}; available: {sorted(PRESETS)}"
        ) from None
    return factory()


def _make_simulator(
    spec: JobSpec, chip: Chip, trace: Trace,
    governors: Mapping[str, Governor], power_model: PowerModel
) -> Simulator:
    """The job's simulator; full-system jobs get the X1 substrate
    (thermals + throttling, cpuidle, DVFS transition costs)."""
    if not spec.full_system:
        return Simulator(
            chip,
            trace,
            governors,
            power_model=power_model,
            interval_s=spec.interval_s,
        )
    from repro.idle.governor import MenuIdleGovernor
    from repro.soc.transition import DVFSTransitionModel
    from repro.thermal.rc import default_thermal_model
    from repro.thermal.throttle import ThermalThrottle

    return Simulator(
        chip,
        trace,
        governors,
        power_model=power_model,
        interval_s=spec.interval_s,
        thermal=default_thermal_model(chip.cluster_names),
        throttle=ThermalThrottle(trip_c=85.0),
        idle_governor=MenuIdleGovernor(),
        transition=DVFSTransitionModel(),
    )


def _job_learn_recorder(spec: JobSpec) -> "LearnRecorder | None":
    """The job's learning-ledger recorder, when the spec asks for one.

    Ledger files follow the per-job trace naming scheme —
    ``<job-id>-pid<pid>.jsonl`` — so a parallel fleet's workers never
    contend for one file and ledgers join back to traces by name.
    """
    if spec.learn_log_dir is None:
        return None
    from repro.obs.learn import LearnRecorder

    safe_id = spec.job_id.replace("/", "-").replace(":", "_")
    directory = Path(spec.learn_log_dir)
    return LearnRecorder(directory / f"{safe_id}-pid{os.getpid()}.jsonl")


@contextmanager
def frozen_policies(
    policies: "Mapping[str, RLPowerManagementPolicy]",
) -> "Iterator[None]":
    """Temporarily freeze RL policies for a greedy evaluation run.

    Clears every policy's ``online`` flag on entry and restores the
    original flags on exit (even on error), so a training loop can
    interleave held-out evaluations without losing its learning state.
    Freezing only toggles flags — it never touches Q-tables, exploration
    RNGs, or TD statistics — which is what keeps an evaluate-then-resume
    sequence bit-identical to uninterrupted training.
    """
    saved = {name: p.online for name, p in policies.items()}
    try:
        for p in policies.values():
            p.online = False
        yield
    finally:
        for name, p in policies.items():
            p.online = saved[name]


def _run_rl(
    spec: JobSpec, chip: Chip, eval_trace: Trace, power_model: PowerModel
) -> SimulationResult:
    """Train the proposed policy on the job's scenario, evaluate greedily."""
    from repro.core.trainer import make_policies, train_policy

    scenario = get_scenario(spec.scenario)
    episode_s = spec.train_episode_s or spec.duration_s
    if not spec.full_system:
        training = train_policy(
            chip,
            scenario,
            episodes=spec.train_episodes,
            episode_duration_s=episode_s,
            base_seed=spec.train_base_seed,
            config=spec.policy_config,
            interval_s=spec.interval_s,
            power_model=power_model,
            recorder=_job_learn_recorder(spec),
        )
        policies = training.policies
    else:
        # X1-style: the policy learns inside the full-system simulator,
        # so it experiences C-states, transition stalls and throttling.
        policies = make_policies(chip, spec.policy_config)
        for episode in range(spec.train_episodes):
            ep_trace = scenario.trace(
                episode_s, seed=spec.train_base_seed + episode
            )
            _make_simulator(spec, chip, ep_trace, policies, power_model).run()
    with frozen_policies(policies):
        return _make_simulator(
            spec, chip, eval_trace, policies, power_model
        ).run()


def _run_checkpoint(
    spec: JobSpec, chip: Chip, eval_trace: Trace, power_model: PowerModel
) -> SimulationResult:
    from repro.core.checkpoint import load_policies

    directory = spec.governor.removeprefix(CHECKPOINT_PREFIX)
    policies = load_policies(directory, chip=chip)
    for p in policies.values():
        p.online = False
    return _make_simulator(spec, chip, eval_trace, policies, power_model).run()


def execute_job(spec: JobSpec) -> JobMeasurement:
    """Run one job from scratch and return its metrics.

    Deterministic in the spec alone: the chip is freshly built from its
    preset, the power model is the default, and every trace (evaluation
    and RL training episodes) is regenerated from the spec's seeds.
    ``collect_metrics`` jobs additionally run inside a metrics-only
    observability session (spans stay off — they are worthless across a
    process boundary at fleet scale) and attach the registry snapshot,
    tagged with the job id and worker pid under ``"meta"``.
    ``trace_dir`` jobs instead capture with tracing *on* and write a
    pid- and epoch-stamped Chrome trace into the directory, one lane per
    worker process once merged.

    When the spec carries a ``trace_context``, it is re-bound here —
    contextvars do not cross executor threads or process pools, so this
    is the explicit hand-off point — and a ``fleet.job`` span wraps the
    traced execution, tagging the whole job subtree with the
    originating trace_id.

    Raises:
        ReproError: For unknown chips/scenarios/governors; any simulation
            exception propagates (the runner converts it to a
            :class:`JobFailure`).
    """
    from repro.obs.context import bind

    with bind(spec.trace_context):
        if spec.collect_metrics or spec.trace_dir is not None:
            from dataclasses import replace as _replace

            from repro import obs
            from repro.obs.context import trace_args

            want_trace = spec.trace_dir is not None
            # A serial (in-process) fleet may already be tracing; keep its
            # tracer wired up so per-job metric isolation doesn't eat spans.
            outer = (
                obs.OBS.tracer
                if (obs.OBS.enabled and obs.OBS.tracer.enabled)
                else None
            )
            with obs.capture(trace=want_trace) as session:
                if outer is not None and not want_trace:
                    obs.OBS.tracer = outer
                tracer = obs.OBS.tracer if obs.OBS.tracer.enabled else None
                if tracer:
                    with tracer.span(
                        "fleet.job", cat="fleet",
                        job_id=spec.job_id, **trace_args(),
                    ):
                        measurement = _execute_job_inner(spec)
                else:
                    measurement = _execute_job_inner(spec)
            snapshot = session.metrics.snapshot()
            snapshot["meta"] = {"job_id": spec.job_id, "pid": os.getpid()}
            trace_path = _write_job_trace(spec, session) if want_trace else None
            return _replace(
                measurement, metrics=snapshot, trace_path=trace_path
            )
        return _execute_job_inner(spec)


def _write_job_trace(spec: JobSpec, session: ObsSession) -> str:
    """Write the job's Chrome trace as ``<job-id>-pid<pid>.json``.

    The trace is stamped with the worker pid (one merged-timeline lane
    per process) and the tracer epoch (``time.perf_counter`` origin,
    shared machine-wide) so :func:`repro.obs.export.merge_traces` can
    align traces from concurrent workers.
    """
    from repro.obs.export import write_chrome_trace

    pid = os.getpid()
    safe_id = spec.job_id.replace("/", "-").replace(":", "_")
    directory = Path(spec.trace_dir or ".")
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{safe_id}-pid{pid}.json"
    write_chrome_trace(
        path,
        session.tracer,
        session.metrics,
        process_name=spec.job_id,
        pid=pid,
        epoch_us=session.tracer.epoch_s * 1e6,
    )
    return str(path)


def simulate_spec(spec: JobSpec) -> SimulationResult:
    """Run one spec's simulation from scratch (the measurement core).

    This is the reference execution every alternative backend is held
    to: :mod:`repro.batch` falls back to it for rollouts its fast path
    cannot express, and its fast path must reproduce this function's
    numbers bit for bit.

    Raises:
        ReproError: For unknown chips/scenarios/governors.
    """
    chip = _build_chip(spec)
    scenario = get_scenario(spec.scenario)
    eval_trace = scenario.trace(spec.duration_s, seed=spec.seed)
    power_model = PowerModel()
    if spec.is_rl:
        return _run_rl(spec, chip, eval_trace, power_model)
    if spec.is_checkpoint:
        return _run_checkpoint(spec, chip, eval_trace, power_model)
    governor_name = spec.governor
    create(governor_name)  # fail fast on unknown names
    return _make_simulator(
        spec, chip, eval_trace,
        lambda cluster: create(governor_name), power_model,
    ).run()


def _execute_job_inner(spec: JobSpec) -> JobMeasurement:
    run = simulate_spec(spec)
    return JobMeasurement(
        energy_j=run.total_energy_j,
        mean_qos=run.qos.mean_qos,
        deadline_miss_rate=run.qos.deadline_miss_rate,
        energy_per_qos_j=run.energy_per_qos_j,
        sim_duration_s=spec.duration_s,
    )


def _arm_timeout(timeout_s: float | None) -> bool:
    """Arm a SIGALRM wall-clock guard; returns whether one was armed.

    Only possible on POSIX main threads (pool workers run tasks on their
    main thread, so the parallel path always qualifies on Linux); when
    unavailable the job simply runs unguarded.
    """
    if timeout_s is None:
        return False
    if not hasattr(signal, "SIGALRM"):
        return False
    if threading.current_thread() is not threading.main_thread():
        return False

    def _on_alarm(signum: int, frame: object) -> None:
        raise JobTimeout(f"job exceeded {timeout_s} s wall-clock budget")

    signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    return True


def _disarm_timeout(armed: bool) -> None:
    if armed:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, signal.SIG_DFL)


def run_job(
    spec: JobSpec,
    index: int = 0,
    attempt: int = 1,
    timeout_s: float | None = None,
    job_fn: Callable[[JobSpec], JobMeasurement] = execute_job,
) -> JobOutcome:
    """The guarded pool entry: never raises, always returns an outcome.

    Args:
        spec: The job to run.
        index: Grid position, stamped on the outcome for ordered
            aggregation.
        attempt: 1-based attempt number, stamped on the outcome.
        timeout_s: Wall-clock budget; overruns raise :class:`JobTimeout`
            inside the worker (freeing the pool slot) and yield a
            ``timed_out`` :class:`JobFailure`.
        job_fn: The measurement function; tests substitute hanging or
            raising top-level functions here.
    """
    start = time.perf_counter()
    armed = _arm_timeout(timeout_s)
    try:
        measurement = job_fn(spec)
    except JobTimeout as exc:
        return JobFailure(
            spec=spec,
            index=index,
            error_type="JobTimeout",
            error=str(exc),
            traceback_str=traceback.format_exc(),
            wall_s=time.perf_counter() - start,
            attempts=attempt,
            timed_out=True,
        )
    except Exception as exc:
        return JobFailure(
            spec=spec,
            index=index,
            error_type=type(exc).__name__,
            error=str(exc),
            traceback_str=traceback.format_exc(),
            wall_s=time.perf_counter() - start,
            attempts=attempt,
        )
    finally:
        _disarm_timeout(armed)
    return JobSuccess(
        spec=spec,
        index=index,
        energy_j=measurement.energy_j,
        mean_qos=measurement.mean_qos,
        deadline_miss_rate=measurement.deadline_miss_rate,
        energy_per_qos_j=measurement.energy_per_qos_j,
        sim_duration_s=measurement.sim_duration_s,
        wall_s=time.perf_counter() - start,
        attempts=attempt,
        metrics=measurement.metrics,
        trace_path=measurement.trace_path,
    )
