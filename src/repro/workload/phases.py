"""Phase-structured workload behaviour.

Mobile scenarios are sequences of behavioural *phases*: a web-browsing
session alternates between idle reading, scroll bursts, and page loads;
a game alternates menu and gameplay.  Each phase emits periodic work
units with a characteristic demand distribution; a Markov chain governs
phase transitions.  This phase structure is exactly what reactive DVFS
governors handle poorly and what the paper's RL policy learns to
predict.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError


@dataclass(frozen=True)
class PhaseSpec:
    """One behavioural phase.

    Attributes:
        name: Phase label (also stamped on emitted work units).
        period_s: Emission period of work units within the phase (e.g.
            1/60 s for a 60 fps phase).  Zero means the phase emits
            nothing (true idle).
        work_mean: Mean demand per unit in reference-core cycles.
        work_cv: Coefficient of variation of per-unit demand (lognormal).
        deadline_factor: Deadline slack as a multiple of the period: a
            unit released at t gets deadline ``t + deadline_factor *
            period_s``.  1.0 is a hard frame pipeline.
        dwell_mean_s: Mean phase duration (exponential dwell).
        dwell_min_s: Minimum phase duration.
        parallelism: ``min_parallelism`` stamped on emitted units.
    """

    name: str
    period_s: float
    work_mean: float
    work_cv: float
    deadline_factor: float
    dwell_mean_s: float
    dwell_min_s: float = 0.1
    parallelism: int = 1

    def __post_init__(self) -> None:
        if self.period_s < 0:
            raise WorkloadError(f"phase {self.name}: negative period")
        if self.period_s > 0 and self.work_mean <= 0:
            raise WorkloadError(f"phase {self.name}: emitting phase needs positive work")
        if self.work_cv < 0:
            raise WorkloadError(f"phase {self.name}: negative work CV")
        if self.period_s > 0 and self.deadline_factor <= 0:
            raise WorkloadError(f"phase {self.name}: deadline factor must be positive")
        if self.dwell_mean_s <= 0 or self.dwell_min_s < 0:
            raise WorkloadError(f"phase {self.name}: invalid dwell parameters")

    @property
    def emits(self) -> bool:
        """Whether the phase produces work units."""
        return self.period_s > 0

    def sample_work(self, rng: np.random.Generator) -> float:
        """Draw one unit's demand from the phase's lognormal distribution."""
        if self.work_cv == 0:
            return self.work_mean
        sigma2 = np.log(1.0 + self.work_cv**2)
        mu = np.log(self.work_mean) - sigma2 / 2.0
        return float(rng.lognormal(mean=mu, sigma=float(np.sqrt(sigma2))))

    def sample_dwell(self, rng: np.random.Generator) -> float:
        """Draw one phase duration (exponential with a floor)."""
        return max(self.dwell_min_s, float(rng.exponential(self.dwell_mean_s)))


class PhaseMachine:
    """Markov chain over phases.

    Args:
        phases: The phase set; names must be unique.
        transitions: Row-stochastic matrix ``transitions[i][j]`` =
            probability of moving from phase i to phase j when phase i's
            dwell expires.  Self-transitions are allowed (the dwell is
            redrawn).
        initial: Index of the starting phase.

    Raises:
        WorkloadError: On an empty phase set, shape mismatch, or rows
            that do not sum to 1.
    """

    def __init__(
        self,
        phases: list[PhaseSpec],
        transitions: list[list[float]],
        initial: int = 0,
    ):
        if not phases:
            raise WorkloadError("phase machine needs at least one phase")
        names = [p.name for p in phases]
        if len(set(names)) != len(names):
            raise WorkloadError(f"duplicate phase names: {names}")
        matrix = np.asarray(transitions, dtype=float)
        if matrix.shape != (len(phases), len(phases)):
            raise WorkloadError(
                f"transition matrix shape {matrix.shape} does not match "
                f"{len(phases)} phases"
            )
        if np.any(matrix < 0):
            raise WorkloadError("transition probabilities must be non-negative")
        row_sums = matrix.sum(axis=1)
        if not np.allclose(row_sums, 1.0, atol=1e-9):
            raise WorkloadError(f"transition rows must sum to 1, got {row_sums}")
        if not 0 <= initial < len(phases):
            raise WorkloadError(f"initial phase index {initial} out of range")
        self.phases = list(phases)
        self.matrix = matrix
        self.initial = initial

    def __len__(self) -> int:
        return len(self.phases)

    def phase_names(self) -> list[str]:
        """Phase names in declaration order."""
        return [p.name for p in self.phases]

    def walk(self, rng: np.random.Generator, duration_s: float):
        """Yield ``(phase, start_s, end_s)`` segments covering ``duration_s``.

        The final segment is truncated at ``duration_s``.
        """
        if duration_s <= 0:
            raise WorkloadError(f"walk duration must be positive: {duration_s}")
        idx = self.initial
        t = 0.0
        while t < duration_s:
            phase = self.phases[idx]
            dwell = phase.sample_dwell(rng)
            end = min(t + dwell, duration_s)
            yield phase, t, end
            t = end
            idx = int(rng.choice(len(self.phases), p=self.matrix[idx]))
