"""Workload substrate: work units, phases, scenarios, traces."""

from repro.workload.characterize import WorkloadProfile, compare_profiles, profile
from repro.workload.feasibility import FeasibilityReport, check_feasibility
from repro.workload.fit import PhaseFit, fit_phase_machine
from repro.workload.generator import TraceGenerator
from repro.workload.mix import mix_scenarios
from repro.workload.perturb import jitter_releases, scale_demand, tighten_deadlines
from repro.workload.phases import PhaseMachine, PhaseSpec
from repro.workload.scenarios import (
    EVALUATION_SET,
    SCENARIOS,
    Scenario,
    get_scenario,
)
from repro.workload.task import Job, WorkUnit
from repro.workload.trace import Trace, concat

__all__ = [
    "EVALUATION_SET",
    "FeasibilityReport",
    "Job",
    "PhaseFit",
    "PhaseMachine",
    "PhaseSpec",
    "SCENARIOS",
    "Scenario",
    "Trace",
    "TraceGenerator",
    "WorkUnit",
    "WorkloadProfile",
    "check_feasibility",
    "compare_profiles",
    "concat",
    "fit_phase_machine",
    "get_scenario",
    "jitter_releases",
    "mix_scenarios",
    "profile",
    "scale_demand",
    "tighten_deadlines",
]
