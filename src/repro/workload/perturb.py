"""Trace perturbation: controlled distribution shift for robustness tests.

A policy trained on one demand level should survive the app updating to
heavier assets, the user enabling a higher frame rate, or deadlines
tightening.  These transforms produce shifted-but-valid traces from an
existing one; experiment X5 uses them to test the trained policy off
its training distribution.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.workload.task import WorkUnit
from repro.workload.trace import Trace


def scale_demand(trace: Trace, factor: float, name: str | None = None) -> Trace:
    """Scale every unit's work by ``factor`` (releases/deadlines fixed).

    Raises:
        WorkloadError: For a non-positive factor.
    """
    if factor <= 0:
        raise WorkloadError(f"demand factor must be positive: {factor}")
    units = [
        WorkUnit(
            uid=u.uid,
            release_s=u.release_s,
            work=u.work * factor,
            deadline_s=u.deadline_s,
            kind=u.kind,
            min_parallelism=u.min_parallelism,
        )
        for u in trace
    ]
    return Trace(units=units, name=name or f"{trace.name}-x{factor:g}",
                 duration_s=trace.duration_s)


def tighten_deadlines(trace: Trace, factor: float, name: str | None = None) -> Trace:
    """Shrink every unit's slack by ``factor`` in (0, 1].

    A factor of 0.5 halves each deadline's distance from its release.
    """
    if not 0 < factor <= 1:
        raise WorkloadError(f"deadline factor must be in (0, 1]: {factor}")
    units = [
        WorkUnit(
            uid=u.uid,
            release_s=u.release_s,
            work=u.work,
            deadline_s=u.release_s + u.slack_s * factor,
            kind=u.kind,
            min_parallelism=u.min_parallelism,
        )
        for u in trace
    ]
    return Trace(units=units, name=name or f"{trace.name}-tight{factor:g}",
                 duration_s=trace.duration_s)


def jitter_releases(
    trace: Trace, sigma_s: float, seed: int = 0, name: str | None = None
) -> Trace:
    """Add truncated-Gaussian jitter to release times (deadlines move
    with their unit, ordering is re-sorted by the Trace constructor).

    Release jitter is clipped so releases stay non-negative and strictly
    before each unit's deadline.
    """
    if sigma_s < 0:
        raise WorkloadError(f"jitter sigma must be non-negative: {sigma_s}")
    rng = np.random.default_rng(seed)
    units = []
    for u in trace:
        delta = float(rng.normal(0.0, sigma_s)) if sigma_s > 0 else 0.0
        new_release = min(max(0.0, u.release_s + delta),
                          u.deadline_s - 1e-9, trace.duration_s - 1e-9)
        new_release = max(new_release, 0.0)
        units.append(
            WorkUnit(
                uid=u.uid,
                release_s=new_release,
                work=u.work,
                deadline_s=u.deadline_s,
                kind=u.kind,
                min_parallelism=u.min_parallelism,
            )
        )
    return Trace(units=units, name=name or f"{trace.name}-jit{sigma_s:g}",
                 duration_s=trace.duration_s)
