"""Trace generation: phase machine -> concrete work-unit trace."""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.workload.phases import PhaseMachine
from repro.workload.task import WorkUnit
from repro.workload.trace import Trace


class TraceGenerator:
    """Expands a :class:`~repro.workload.phases.PhaseMachine` into a trace.

    The generator walks the phase machine for the requested duration;
    within each emitting phase segment it releases one work unit per
    phase period, drawing per-unit demand from the phase distribution.
    Generation is fully determined by the seed.

    Args:
        machine: The phase machine to expand.
        seed: RNG seed; identical seeds produce identical traces.
    """

    def __init__(self, machine: PhaseMachine, seed: int = 0):
        self.machine = machine
        self.seed = seed

    def generate(self, duration_s: float, name: str = "generated") -> Trace:
        """Generate a trace covering ``duration_s`` seconds.

        Args:
            duration_s: Trace length in seconds (positive).
            name: Name stamped on the resulting trace.

        Returns:
            A :class:`~repro.workload.trace.Trace` whose units all release
            strictly before ``duration_s``.
        """
        if duration_s <= 0:
            raise WorkloadError(f"duration must be positive: {duration_s}")
        rng = np.random.default_rng(self.seed)
        units: list[WorkUnit] = []
        uid = 0
        for phase, start, end in self.machine.walk(rng, duration_s):
            if not phase.emits:
                continue
            t = start
            while t < end and t < duration_s:
                work = phase.sample_work(rng)
                units.append(
                    WorkUnit(
                        uid=uid,
                        release_s=t,
                        work=work,
                        deadline_s=t + phase.deadline_factor * phase.period_s,
                        kind=phase.name,
                        min_parallelism=phase.parallelism,
                    )
                )
                uid += 1
                t += phase.period_s
        return Trace(units=units, name=name, duration_s=duration_s)
