"""Fitting a phase machine to an observed trace.

Users with recorded device traces (imported through
:meth:`repro.workload.trace.Trace.from_csv`) can distil them into a
generative :class:`~repro.workload.phases.PhaseMachine` — useful for
augmenting a short recording into arbitrarily long, statistically
similar training workloads.

The fit is deliberately simple and fully deterministic:

1. window the trace and compute per-window demand;
2. cluster window demand into K levels (1-D k-means);
3. treat maximal runs of the same level as phase dwells;
4. estimate each level's emission period, work distribution, and
   deadline factor from its member units, and the transition matrix
   from observed level changes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.workload.phases import PhaseMachine, PhaseSpec
from repro.workload.trace import Trace


@dataclass(frozen=True)
class PhaseFit:
    """Result of fitting a phase machine to a trace.

    Attributes:
        machine: The fitted generative model.
        levels: The demand level (reference cycles per window) of each
            fitted phase, ascending.
        assignments: Per-window phase indices from the clustering.
    """

    machine: PhaseMachine
    levels: tuple[float, ...]
    assignments: tuple[int, ...]


def _kmeans_1d(values: np.ndarray, k: int, iterations: int = 50) -> np.ndarray:
    """Deterministic 1-D k-means: centroids seeded at quantiles."""
    quantiles = np.linspace(0.0, 1.0, k + 2)[1:-1]
    centroids = np.quantile(values, quantiles)
    for _ in range(iterations):
        assignment = np.abs(values[:, None] - centroids[None, :]).argmin(axis=1)
        new_centroids = centroids.copy()
        for j in range(k):
            members = values[assignment == j]
            if len(members):
                new_centroids[j] = members.mean()
        if np.allclose(new_centroids, centroids):
            break
        centroids = new_centroids
    order = np.argsort(centroids)
    return centroids[order]


def fit_phase_machine(
    trace: Trace,
    n_phases: int = 3,
    window_s: float = 0.25,
    min_dwell_s: float = 0.1,
) -> PhaseFit:
    """Fit an ``n_phases``-state phase machine to a trace.

    Args:
        trace: The observed trace (>= ``n_phases`` windows of data).
        n_phases: Number of demand levels to fit.
        window_s: Windowing used for level clustering.
        min_dwell_s: Floor on the fitted phases' dwell time.

    Raises:
        WorkloadError: If the trace is empty or too short to fit.
    """
    if len(trace) == 0:
        raise WorkloadError("cannot fit an empty trace")
    if n_phases < 1:
        raise WorkloadError(f"need at least one phase: {n_phases}")
    if window_s <= 0:
        raise WorkloadError(f"window must be positive: {window_s}")
    n_windows = max(1, math.ceil(trace.duration_s / window_s))
    if n_windows < n_phases:
        raise WorkloadError(
            f"trace has {n_windows} windows but {n_phases} phases requested"
        )

    demand = np.zeros(n_windows)
    window_units: list[list] = [[] for _ in range(n_windows)]
    for u in trace:
        idx = min(int(u.release_s / window_s), n_windows - 1)
        demand[idx] += u.work
        window_units[idx].append(u)

    centroids = _kmeans_1d(demand, n_phases)
    assignment = np.abs(demand[:, None] - centroids[None, :]).argmin(axis=1)

    phases: list[PhaseSpec] = []
    counts = np.zeros((n_phases, n_phases))
    for level in range(n_phases):
        member_windows = [i for i in range(n_windows) if assignment[i] == level]
        units = [u for i in member_windows for u in window_units[i]]
        dwell = _mean_run_length(assignment, level) * window_s
        if units:
            works = np.array([u.work for u in units])
            # Windows at phase boundaries mix units from two phases; a
            # median plus a trim to the median's decade is robust to the
            # stragglers where a plain mean is not.
            median = float(np.median(works))
            core = works[(works > median / 5) & (works < median * 5)]
            if len(core) == 0:
                core = works
            work_mean = float(core.mean())
            work_cv = float(core.std() / core.mean()) if core.mean() > 0 else 0.0
            # Period: units per member window.
            period = window_s * len(member_windows) / len(units)
            slack = float(np.mean([u.slack_s for u in units]))
            deadline_factor = max(slack / period, 0.1)
            phases.append(
                PhaseSpec(
                    name=f"level{level}",
                    period_s=period,
                    work_mean=work_mean,
                    work_cv=work_cv,
                    deadline_factor=deadline_factor,
                    dwell_mean_s=max(dwell, min_dwell_s),
                    dwell_min_s=min_dwell_s,
                )
            )
        else:
            phases.append(
                PhaseSpec(
                    name=f"level{level}",
                    period_s=0.0,
                    work_mean=0.0,
                    work_cv=0.0,
                    deadline_factor=1.0,
                    dwell_mean_s=max(dwell, min_dwell_s),
                    dwell_min_s=min_dwell_s,
                )
            )
    # Transition counts between *runs* (self-transitions excluded unless
    # a phase never leaves).
    for a, b in zip(assignment, assignment[1:]):
        if a != b:
            counts[a][b] += 1
    matrix = []
    for i in range(n_phases):
        row = counts[i]
        total = row.sum()
        if total == 0:
            # Never observed leaving: self-loop.
            row = np.zeros(n_phases)
            row[i] = 1.0
        else:
            row = row / total
        matrix.append(list(row))

    initial = int(assignment[0])
    machine = PhaseMachine(phases, matrix, initial=initial)
    return PhaseFit(
        machine=machine,
        levels=tuple(float(c) for c in centroids),
        assignments=tuple(int(a) for a in assignment),
    )


def _mean_run_length(assignment: np.ndarray, level: int) -> float:
    """Mean length (in windows) of maximal runs of ``level``."""
    runs: list[int] = []
    current = 0
    for a in assignment:
        if a == level:
            current += 1
        elif current:
            runs.append(current)
            current = 0
    if current:
        runs.append(current)
    return float(np.mean(runs)) if runs else 1.0
