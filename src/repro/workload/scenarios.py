"""Mobile application scenarios.

Each scenario reproduces the *statistical signature* of a class of mobile
usage the paper evaluates over ("diverse scenarios ... on mobile
devices"): its frame rates, per-frame demand levels and variability,
burstiness, and phase-switching structure.  Demands are expressed in
reference-core cycles and sized against the Exynos-5422-class preset
(LITTLE core peak 1.4e9, big core peak 4.0e9 reference-cycles/s), so a
60 fps gameplay frame of 3.0e7 cycles needs roughly a mid-to-high big
OPP — leaving real room for DVFS decisions to matter.

All generators are seeded and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import WorkloadError
from repro.workload.generator import TraceGenerator
from repro.workload.phases import PhaseMachine, PhaseSpec
from repro.workload.trace import Trace

FPS60 = 1.0 / 60.0
FPS30 = 1.0 / 30.0


@dataclass(frozen=True)
class Scenario:
    """A named, reproducible mobile workload scenario.

    Attributes:
        name: Registry key, also stamped on generated traces.
        description: One-line human description.
        machine_factory: Builds a fresh phase machine for the scenario.
    """

    name: str
    description: str
    machine_factory: Callable[[], PhaseMachine]

    def machine(self) -> PhaseMachine:
        """A fresh phase machine for this scenario."""
        return self.machine_factory()

    def trace(self, duration_s: float = 60.0, seed: int = 0) -> Trace:
        """Generate a concrete trace for this scenario.

        Args:
            duration_s: Trace length in seconds.
            seed: Generation seed (same seed, same trace).
        """
        gen = TraceGenerator(self.machine(), seed=seed)
        return gen.generate(duration_s, name=f"{self.name}-s{seed}")


def _web_browsing() -> PhaseMachine:
    phases = [
        PhaseSpec("read", period_s=0.1, work_mean=2.0e6, work_cv=0.3,
                  deadline_factor=2.0, dwell_mean_s=4.0, dwell_min_s=1.0),
        PhaseSpec("scroll", period_s=FPS60, work_mean=9.0e6, work_cv=0.35,
                  deadline_factor=1.0, dwell_mean_s=1.5, dwell_min_s=0.4),
        PhaseSpec("page_load", period_s=0.05, work_mean=4.5e7, work_cv=0.4,
                  deadline_factor=3.0, dwell_mean_s=1.2, dwell_min_s=0.5,
                  parallelism=2),
    ]
    transitions = [
        [0.00, 0.70, 0.30],
        [0.60, 0.20, 0.20],
        [0.55, 0.45, 0.00],
    ]
    return PhaseMachine(phases, transitions, initial=0)


def _video_playback() -> PhaseMachine:
    phases = [
        PhaseSpec("decode", period_s=FPS30, work_mean=1.2e7, work_cv=0.25,
                  deadline_factor=1.5, dwell_mean_s=12.0, dwell_min_s=4.0,
                  parallelism=2),
        PhaseSpec("seek", period_s=0.02, work_mean=5.0e7, work_cv=0.3,
                  deadline_factor=4.0, dwell_mean_s=0.4, dwell_min_s=0.2,
                  parallelism=2),
    ]
    transitions = [
        [0.85, 0.15],
        [1.00, 0.00],
    ]
    return PhaseMachine(phases, transitions, initial=0)


def _gaming() -> PhaseMachine:
    phases = [
        PhaseSpec("menu", period_s=FPS30, work_mean=8.0e6, work_cv=0.2,
                  deadline_factor=1.5, dwell_mean_s=3.0, dwell_min_s=1.0),
        PhaseSpec("gameplay", period_s=FPS60, work_mean=3.0e7, work_cv=0.35,
                  deadline_factor=1.0, dwell_mean_s=8.0, dwell_min_s=3.0),
        PhaseSpec("level_load", period_s=0.05, work_mean=6.5e7, work_cv=0.3,
                  deadline_factor=4.0, dwell_mean_s=1.0, dwell_min_s=0.5,
                  parallelism=2),
    ]
    transitions = [
        [0.00, 0.80, 0.20],
        [0.30, 0.55, 0.15],
        [0.10, 0.90, 0.00],
    ]
    return PhaseMachine(phases, transitions, initial=0)


def _app_launch() -> PhaseMachine:
    phases = [
        PhaseSpec("home_idle", period_s=0.2, work_mean=1.5e6, work_cv=0.3,
                  deadline_factor=3.0, dwell_mean_s=2.5, dwell_min_s=1.0),
        PhaseSpec("cold_launch", period_s=0.02, work_mean=8.0e7, work_cv=0.35,
                  deadline_factor=5.0, dwell_mean_s=0.8, dwell_min_s=0.4,
                  parallelism=2),
        PhaseSpec("app_settle", period_s=FPS60, work_mean=1.0e7, work_cv=0.3,
                  deadline_factor=1.5, dwell_mean_s=2.0, dwell_min_s=0.8),
    ]
    transitions = [
        [0.00, 1.00, 0.00],
        [0.00, 0.00, 1.00],
        [0.85, 0.15, 0.00],
    ]
    return PhaseMachine(phases, transitions, initial=0)


def _audio_playback() -> PhaseMachine:
    phases = [
        PhaseSpec("audio_decode", period_s=0.02, work_mean=6.0e5, work_cv=0.15,
                  deadline_factor=2.0, dwell_mean_s=20.0, dwell_min_s=8.0),
        PhaseSpec("track_change", period_s=0.05, work_mean=1.5e7, work_cv=0.25,
                  deadline_factor=4.0, dwell_mean_s=0.3, dwell_min_s=0.15),
    ]
    transitions = [
        [0.90, 0.10],
        [1.00, 0.00],
    ]
    return PhaseMachine(phases, transitions, initial=0)


def _camera_preview() -> PhaseMachine:
    phases = [
        PhaseSpec("preview", period_s=FPS30, work_mean=1.6e7, work_cv=0.2,
                  deadline_factor=1.2, dwell_mean_s=5.0, dwell_min_s=2.0,
                  parallelism=2),
        PhaseSpec("capture", period_s=0.03, work_mean=9.0e7, work_cv=0.25,
                  deadline_factor=6.0, dwell_mean_s=0.5, dwell_min_s=0.25,
                  parallelism=2),
    ]
    transitions = [
        [0.80, 0.20],
        [1.00, 0.00],
    ]
    return PhaseMachine(phases, transitions, initial=0)


def _idle() -> PhaseMachine:
    phases = [
        PhaseSpec("background", period_s=1.0, work_mean=1.2e6, work_cv=0.4,
                  deadline_factor=10.0, dwell_mean_s=15.0, dwell_min_s=5.0),
        PhaseSpec("sync_burst", period_s=0.05, work_mean=2.0e7, work_cv=0.3,
                  deadline_factor=8.0, dwell_mean_s=0.5, dwell_min_s=0.2),
    ]
    transitions = [
        [0.85, 0.15],
        [1.00, 0.00],
    ]
    return PhaseMachine(phases, transitions, initial=0)


def _social_media() -> PhaseMachine:
    """Doom-scrolling: flick-scrolls over a feed with auto-playing video
    cards and occasional image-heavy refreshes."""
    phases = [
        PhaseSpec("feed_scroll", period_s=FPS60, work_mean=1.1e7, work_cv=0.3,
                  deadline_factor=1.0, dwell_mean_s=2.0, dwell_min_s=0.6),
        PhaseSpec("autoplay", period_s=FPS30, work_mean=1.4e7, work_cv=0.25,
                  deadline_factor=1.5, dwell_mean_s=4.0, dwell_min_s=1.5,
                  parallelism=2),
        PhaseSpec("feed_refresh", period_s=0.04, work_mean=5.5e7, work_cv=0.35,
                  deadline_factor=4.0, dwell_mean_s=0.7, dwell_min_s=0.3,
                  parallelism=2),
    ]
    transitions = [
        [0.30, 0.55, 0.15],
        [0.65, 0.25, 0.10],
        [0.60, 0.40, 0.00],
    ]
    return PhaseMachine(phases, transitions, initial=0)


def _video_call() -> PhaseMachine:
    """A video call: steady encode+decode with UI overlays and
    screen-share bursts."""
    phases = [
        PhaseSpec("call_steady", period_s=FPS30, work_mean=2.2e7, work_cv=0.2,
                  deadline_factor=1.2, dwell_mean_s=10.0, dwell_min_s=4.0,
                  parallelism=2),
        PhaseSpec("ui_overlay", period_s=FPS30, work_mean=2.8e7, work_cv=0.25,
                  deadline_factor=1.2, dwell_mean_s=1.5, dwell_min_s=0.5,
                  parallelism=2),
        PhaseSpec("screen_share", period_s=0.05, work_mean=6.0e7, work_cv=0.3,
                  deadline_factor=3.0, dwell_mean_s=2.0, dwell_min_s=0.8,
                  parallelism=2),
    ]
    transitions = [
        [0.75, 0.15, 0.10],
        [0.85, 0.15, 0.00],
        [0.80, 0.10, 0.10],
    ]
    return PhaseMachine(phases, transitions, initial=0)


def _mixed_daily() -> PhaseMachine:
    """A day-in-the-life mix cycling through all major behaviours."""
    phases = [
        PhaseSpec("read", period_s=0.1, work_mean=2.0e6, work_cv=0.3,
                  deadline_factor=2.0, dwell_mean_s=3.0, dwell_min_s=1.0),
        PhaseSpec("scroll", period_s=FPS60, work_mean=9.0e6, work_cv=0.35,
                  deadline_factor=1.0, dwell_mean_s=1.5, dwell_min_s=0.4),
        PhaseSpec("decode", period_s=FPS30, work_mean=1.2e7, work_cv=0.25,
                  deadline_factor=1.5, dwell_mean_s=8.0, dwell_min_s=3.0,
                  parallelism=2),
        PhaseSpec("gameplay", period_s=FPS60, work_mean=3.0e7, work_cv=0.35,
                  deadline_factor=1.0, dwell_mean_s=6.0, dwell_min_s=2.0),
        PhaseSpec("cold_launch", period_s=0.02, work_mean=8.0e7, work_cv=0.35,
                  deadline_factor=5.0, dwell_mean_s=0.8, dwell_min_s=0.4,
                  parallelism=2),
    ]
    transitions = [
        [0.00, 0.45, 0.20, 0.15, 0.20],
        [0.50, 0.15, 0.15, 0.10, 0.10],
        [0.40, 0.20, 0.30, 0.05, 0.05],
        [0.25, 0.10, 0.05, 0.55, 0.05],
        [0.30, 0.25, 0.20, 0.25, 0.00],
    ]
    return PhaseMachine(phases, transitions, initial=0)


SCENARIOS: dict[str, Scenario] = {
    s.name: s
    for s in [
        Scenario("web_browsing", "reading / scroll bursts / page loads", _web_browsing),
        Scenario("video_playback", "30 fps decode with occasional seeks", _video_playback),
        Scenario("gaming", "menu / 60 fps gameplay / level loads", _gaming),
        Scenario("app_launch", "home idle / cold launches / settle", _app_launch),
        Scenario("audio_playback", "light periodic decode, track changes", _audio_playback),
        Scenario("camera_preview", "30 fps preview with capture bursts", _camera_preview),
        Scenario("idle", "background ticks and sync bursts", _idle),
        Scenario("social_media", "feed scrolling / autoplay / refresh bursts",
                 _social_media),
        Scenario("video_call", "steady encode+decode / overlays / screen share",
                 _video_call),
        Scenario("mixed_daily", "day-in-the-life phase mix", _mixed_daily),
    ]
}
"""Registry of all built-in scenarios, keyed by name."""

# The six-scenario evaluation set used by the E1/E2 benches (the mixed and
# idle scenarios are held out for the adaptation experiment E6).
EVALUATION_SET = [
    "web_browsing",
    "video_playback",
    "gaming",
    "app_launch",
    "audio_playback",
    "camera_preview",
]


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name.

    Raises:
        WorkloadError: For unknown names, listing the registry.
    """
    try:
        return SCENARIOS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None
