"""Workload traces: an ordered collection of work units with I/O.

Traces are the interchange format between scenario generators, the
simulator, and saved experiment inputs.  CSV round-tripping lets users
bring their own device traces (the substitution for the authors'
on-device recordings).
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import WorkloadError
from repro.workload.task import WorkUnit

_CSV_FIELDS = ["uid", "release_s", "work", "deadline_s", "kind", "min_parallelism"]


@dataclass
class Trace:
    """An immutable-by-convention, time-ordered sequence of work units.

    Attributes:
        units: Work units sorted by release time.
        name: Trace label used in reports.
        duration_s: Nominal trace duration; defaults to the last deadline.
    """

    units: list[WorkUnit]
    name: str = "trace"
    duration_s: float = field(default=0.0)

    def __post_init__(self) -> None:
        self.units = sorted(self.units, key=lambda u: (u.release_s, u.uid))
        uids = [u.uid for u in self.units]
        if len(set(uids)) != len(uids):
            raise WorkloadError(f"trace {self.name!r} contains duplicate unit ids")
        if self.duration_s <= 0:
            self.duration_s = max((u.deadline_s for u in self.units), default=0.0)
        elif self.units and self.duration_s < self.units[-1].release_s:
            raise WorkloadError(
                f"trace {self.name!r}: duration {self.duration_s} s precedes the "
                f"last release at {self.units[-1].release_s} s"
            )

    def __len__(self) -> int:
        return len(self.units)

    def __iter__(self) -> Iterator[WorkUnit]:
        return iter(self.units)

    def __getitem__(self, i: int) -> WorkUnit:
        return self.units[i]

    @property
    def total_work(self) -> float:
        """Total demand over the trace, in reference-core cycles."""
        return sum(u.work for u in self.units)

    @property
    def mean_demand_rate(self) -> float:
        """Average demand rate in reference-cycles per second."""
        return self.total_work / self.duration_s if self.duration_s > 0 else 0.0

    def released_between(self, start_s: float, end_s: float) -> list[WorkUnit]:
        """Units with ``start_s <= release < end_s`` (simulator arrival query)."""
        return [u for u in self.units if start_s <= u.release_s < end_s]

    def kinds(self) -> set[str]:
        """The set of unit kinds present in the trace."""
        return {u.kind for u in self.units}

    # -- I/O -------------------------------------------------------------

    def to_csv(self, path: str | Path) -> None:
        """Write the trace as CSV with a header row."""
        path = Path(path)
        with path.open("w", newline="") as f:
            writer = csv.DictWriter(f, fieldnames=_CSV_FIELDS)
            writer.writeheader()
            for u in self.units:
                writer.writerow(
                    {
                        "uid": u.uid,
                        "release_s": repr(u.release_s),
                        "work": repr(u.work),
                        "deadline_s": repr(u.deadline_s),
                        "kind": u.kind,
                        "min_parallelism": u.min_parallelism,
                    }
                )

    @classmethod
    def from_csv(cls, path: str | Path, name: str | None = None) -> "Trace":
        """Load a trace written by :meth:`to_csv`.

        Raises:
            WorkloadError: On missing columns or unparseable rows.
        """
        path = Path(path)
        units: list[WorkUnit] = []
        with path.open(newline="") as f:
            reader = csv.DictReader(f)
            missing = set(_CSV_FIELDS) - set(reader.fieldnames or [])
            if missing:
                raise WorkloadError(f"trace CSV {path} missing columns: {sorted(missing)}")
            for lineno, row in enumerate(reader, start=2):
                try:
                    units.append(
                        WorkUnit(
                            uid=int(row["uid"]),
                            release_s=float(row["release_s"]),
                            work=float(row["work"]),
                            deadline_s=float(row["deadline_s"]),
                            kind=row["kind"],
                            min_parallelism=int(row["min_parallelism"]),
                        )
                    )
                except (ValueError, KeyError) as exc:
                    raise WorkloadError(f"{path}:{lineno}: bad trace row: {exc}") from exc
        return cls(units=units, name=name or path.stem)

    def to_json(self, path: str | Path) -> None:
        """Write the trace as JSON (name, duration, units)."""
        payload = {
            "name": self.name,
            "duration_s": self.duration_s,
            "units": [
                {
                    "uid": u.uid,
                    "release_s": u.release_s,
                    "work": u.work,
                    "deadline_s": u.deadline_s,
                    "kind": u.kind,
                    "min_parallelism": u.min_parallelism,
                }
                for u in self.units
            ],
        }
        Path(path).write_text(json.dumps(payload, indent=1))

    @classmethod
    def from_json(cls, path: str | Path) -> "Trace":
        """Load a trace written by :meth:`to_json`."""
        try:
            payload = json.loads(Path(path).read_text())
            units = [WorkUnit(**u) for u in payload["units"]]
            return cls(units=units, name=payload["name"], duration_s=payload["duration_s"])
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise WorkloadError(f"bad trace JSON {path}: {exc}") from exc


def concat(traces: Iterable[Trace], name: str = "concat") -> Trace:
    """Concatenate traces back-to-back in time, renumbering unit ids."""
    units: list[WorkUnit] = []
    offset = 0.0
    uid = 0
    for tr in traces:
        for u in tr:
            units.append(
                WorkUnit(
                    uid=uid,
                    release_s=u.release_s + offset,
                    work=u.work,
                    deadline_s=u.deadline_s + offset,
                    kind=u.kind,
                    min_parallelism=u.min_parallelism,
                )
            )
            uid += 1
        offset += tr.duration_s
    return Trace(units=units, name=name, duration_s=offset)
