"""Composing scenarios into usage mixes.

``mixed_daily`` is one hand-built mix; this module builds such mixes
programmatically from any set of scenarios: each component contributes
its phases, and a top-level Markov structure switches between
components with dwell proportions you choose — "40% browsing, 40%
video, 20% gaming" as one generative scenario.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workload.phases import PhaseMachine, PhaseSpec
from repro.workload.scenarios import Scenario, get_scenario


def mix_scenarios(
    weights: dict[str, float],
    name: str = "mix",
    switch_stickiness: float = 0.7,
) -> Scenario:
    """Build a composite scenario from weighted components.

    Phases of each component keep their internal transition structure;
    on leaving a component (probability ``1 - switch_stickiness`` at
    each phase exit) the next component is drawn by weight.

    Args:
        weights: ``{scenario_name: weight}``; weights must be positive
            and there must be at least two components.
        name: Name of the composite scenario.
        switch_stickiness: Probability mass kept inside the current
            component at each phase transition, in [0, 1).

    Returns:
        A new :class:`~repro.workload.scenarios.Scenario`.

    Raises:
        WorkloadError: On bad weights or unknown scenario names.
    """
    if len(weights) < 2:
        raise WorkloadError("a mix needs at least two component scenarios")
    if any(w <= 0 for w in weights.values()):
        raise WorkloadError(f"mix weights must be positive: {weights}")
    if not 0.0 <= switch_stickiness < 1.0:
        raise WorkloadError(
            f"switch_stickiness must be in [0, 1): {switch_stickiness}"
        )
    components = {n: get_scenario(n) for n in weights}  # validates names
    total_weight = sum(weights.values())

    def machine_factory() -> PhaseMachine:
        # Collect phases, namespaced per component to avoid collisions.
        phases: list[PhaseSpec] = []
        spans: dict[str, tuple[int, int]] = {}
        sub_machines: dict[str, PhaseMachine] = {}
        for comp_name, scenario in components.items():
            sub = scenario.machine()
            sub_machines[comp_name] = sub
            start = len(phases)
            for p in sub.phases:
                phases.append(
                    PhaseSpec(
                        name=f"{comp_name}/{p.name}",
                        period_s=p.period_s,
                        work_mean=p.work_mean,
                        work_cv=p.work_cv,
                        deadline_factor=p.deadline_factor,
                        dwell_mean_s=p.dwell_mean_s,
                        dwell_min_s=p.dwell_min_s,
                        parallelism=p.parallelism,
                    )
                )
            spans[comp_name] = (start, len(phases))

        n = len(phases)
        matrix = [[0.0] * n for _ in range(n)]
        for comp_name, sub in sub_machines.items():
            start, end = spans[comp_name]
            for i in range(len(sub)):
                row = matrix[start + i]
                # Internal structure, scaled by stickiness.
                for j in range(len(sub)):
                    row[start + j] = switch_stickiness * sub.matrix[i][j]
                # Escape mass distributed to other components' initial
                # phases by weight.
                escape = 1.0 - switch_stickiness
                other_weight = total_weight - weights[comp_name]
                for other, other_scenario in components.items():
                    if other == comp_name:
                        continue
                    o_start, _ = spans[other]
                    o_init = o_start + sub_machines[other].initial
                    row[o_init] += escape * weights[other] / other_weight
        first = next(iter(components))
        initial = spans[first][0] + sub_machines[first].initial
        return PhaseMachine(phases, matrix, initial=initial)

    description = "mix of " + ", ".join(
        f"{n} ({w / total_weight:.0%})" for n, w in weights.items()
    )
    return Scenario(name, description, machine_factory)
