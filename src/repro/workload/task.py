"""Work units: the atoms of mobile workload.

A :class:`WorkUnit` is one user-visible chunk of computation — a frame
to render, a page-scroll response, a decode step — with a release time,
a demand in *reference-core cycles* (capacity-weighted, so a big core
drains it ``capacity`` times faster per clock), and a soft deadline that
defines its QoS contribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WorkloadError


@dataclass(frozen=True)
class WorkUnit:
    """One deadline-bearing unit of work.

    Attributes:
        uid: Unique id within a trace (monotonically increasing).
        release_s: Time the unit becomes runnable, seconds from trace start.
        work: Demand in reference-core cycles.
        deadline_s: Absolute soft deadline in seconds; must be after release.
        kind: Free-form label for the emitting phase (e.g. ``"frame"``),
            used in reports.
        min_parallelism: Number of cores the unit can spread across
            (mobile frames are mostly single-threaded; decode may use 2).
    """

    uid: int
    release_s: float
    work: float
    deadline_s: float
    kind: str = "work"
    min_parallelism: int = 1

    def __post_init__(self) -> None:
        if self.work <= 0:
            raise WorkloadError(f"work unit {self.uid}: work must be positive ({self.work})")
        if self.release_s < 0:
            raise WorkloadError(f"work unit {self.uid}: negative release time")
        if self.deadline_s <= self.release_s:
            raise WorkloadError(
                f"work unit {self.uid}: deadline {self.deadline_s} not after "
                f"release {self.release_s}"
            )
        if self.min_parallelism < 1:
            raise WorkloadError(f"work unit {self.uid}: min_parallelism must be >= 1")

    @property
    def slack_s(self) -> float:
        """Nominal deadline slack (deadline minus release)."""
        return self.deadline_s - self.release_s


@dataclass
class Job:
    """Runtime execution state of one :class:`WorkUnit`.

    The simulator creates a job when the unit is released and drains its
    remaining work each interval; when the work reaches zero the job is
    complete and its lateness determines QoS.
    """

    unit: WorkUnit
    remaining: float = field(default=-1.0)
    completed_at_s: float | None = None

    def __post_init__(self) -> None:
        if self.remaining < 0:
            self.remaining = self.unit.work

    @property
    def done(self) -> bool:
        return self.remaining <= 0

    def execute(self, work_done: float, now_s: float) -> float:
        """Consume up to ``work_done`` reference-cycles from the job.

        Args:
            work_done: Capacity-weighted cycles offered to this job.
            now_s: Simulation time at the *end* of the executing interval,
                recorded as the completion time if the job finishes.

        Returns:
            The work actually consumed (never more than remaining).

        Raises:
            WorkloadError: If called on a finished job or with negative work.
        """
        if self.done:
            raise WorkloadError(f"job {self.unit.uid} is already complete")
        if work_done < 0:
            raise WorkloadError(f"work done must be non-negative: {work_done}")
        consumed = min(work_done, self.remaining)
        self.remaining -= consumed
        if self.done:
            self.completed_at_s = now_s
        return consumed

    def lateness_s(self) -> float:
        """Completion time minus deadline; negative when the job was early.

        Raises:
            WorkloadError: If the job has not completed.
        """
        if self.completed_at_s is None:
            raise WorkloadError(f"job {self.unit.uid} has not completed")
        return self.completed_at_s - self.unit.deadline_s
