"""Trace feasibility analysis against a chip.

Before blaming a governor for missed deadlines, check the work was
schedulable at all: even the performance governor cannot finish a unit
whose single-thread demand exceeds the fastest core's speed.  This
module computes per-unit and aggregate feasibility bounds — necessary
conditions (a feasible verdict does not guarantee an online scheduler
finds the schedule, but an infeasible one guarantees misses).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.soc.chip import Chip
from repro.workload.task import WorkUnit
from repro.workload.trace import Trace


@dataclass(frozen=True)
class FeasibilityReport:
    """Feasibility of one trace on one chip.

    Attributes:
        n_units: Units analysed.
        infeasible_units: Units whose own deadline is unmeetable even at
            the chip's fastest single-thread (x parallelism) rate.
        utilization_bound: Mean demand rate over the chip's total peak
            rate; > 1 means aggregate overload.
        peak_window_bound: The worst windowed demand over peak rate.
        window_s: The window used for the peak bound.
    """

    n_units: int
    infeasible_units: tuple[int, ...]
    utilization_bound: float
    peak_window_bound: float
    window_s: float

    @property
    def feasible(self) -> bool:
        """Whether no necessary condition is violated."""
        return (
            not self.infeasible_units
            and self.utilization_bound <= 1.0
            and self.peak_window_bound <= 1.0
        )

    def summary(self) -> str:
        """One-line verdict with the binding bound."""
        verdict = "feasible" if self.feasible else "INFEASIBLE"
        return (
            f"{verdict}: {len(self.infeasible_units)}/{self.n_units} "
            f"per-unit violations, utilisation {self.utilization_bound:.2f}, "
            f"peak window {self.peak_window_bound:.2f}"
        )


def _unit_feasible(unit: WorkUnit, chip: Chip) -> bool:
    best_rate = max(
        cluster.spec.core.capacity
        * cluster.spec.opp_table.max_freq_hz
        * min(unit.min_parallelism, cluster.n_cores)
        for cluster in chip
    )
    return unit.work / best_rate <= unit.slack_s


def check_feasibility(
    trace: Trace, chip: Chip, window_s: float = 0.1
) -> FeasibilityReport:
    """Analyse a trace's schedulability on a chip.

    Args:
        trace: The workload (non-empty).
        chip: The target chip (peak rates from its top OPPs).
        window_s: Window for the transient-overload bound.

    Raises:
        WorkloadError: For an empty trace or non-positive window.
    """
    if len(trace) == 0:
        raise WorkloadError("cannot analyse an empty trace")
    if window_s <= 0:
        raise WorkloadError(f"window must be positive: {window_s}")
    peak_rate = sum(
        c.spec.core.capacity * c.spec.opp_table.max_freq_hz * c.n_cores
        for c in chip
    )
    infeasible = tuple(
        u.uid for u in trace if not _unit_feasible(u, chip)
    )
    import math

    n_windows = max(1, math.ceil(trace.duration_s / window_s))
    windowed = [0.0] * n_windows
    for u in trace:
        idx = min(int(u.release_s / window_s), n_windows - 1)
        windowed[idx] += u.work
    peak_window = max(windowed) / (window_s * peak_rate)
    return FeasibilityReport(
        n_units=len(trace),
        infeasible_units=infeasible,
        utilization_bound=trace.mean_demand_rate / peak_rate,
        peak_window_bound=peak_window,
        window_s=window_s,
    )
