"""Workload characterisation.

The paper's premise is that mobile scenarios have distinct *behavioural
characteristics* a policy can learn.  This module computes those
characteristics from a trace — demand statistics, burstiness, phase
residency, deadline tightness — both to sanity-check the generators and
to characterise user-supplied traces before training on them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.workload.trace import Trace


@dataclass(frozen=True)
class WorkloadProfile:
    """Summary statistics of one trace.

    Attributes:
        name: The trace's name.
        n_units: Number of work units.
        duration_s: Trace horizon.
        mean_rate: Mean demand rate, reference cycles per second.
        peak_rate: Highest windowed demand rate observed.
        burstiness: Peak rate over mean rate (1.0 = perfectly flat).
        demand_cv: Coefficient of variation of windowed demand.
        mean_unit_work: Mean per-unit demand.
        mean_slack_s: Mean deadline slack (deadline - release).
        tightness: Mean of (single-thread service time at a 1 GHz
            reference core) / slack — how hard deadlines press; > 1 means
            a 1 GHz reference core cannot keep up single-threaded.
        kind_shares: Fraction of total work per unit kind (phase label).
        window_s: The windowing used for rate statistics.
    """

    name: str
    n_units: int
    duration_s: float
    mean_rate: float
    peak_rate: float
    burstiness: float
    demand_cv: float
    mean_unit_work: float
    mean_slack_s: float
    tightness: float
    kind_shares: dict[str, float]
    window_s: float

    def dominant_kind(self) -> str:
        """The unit kind carrying the most work."""
        return max(self.kind_shares, key=self.kind_shares.get)  # type: ignore[arg-type]

    def summary(self) -> str:
        """A short multi-line human-readable profile."""
        kinds = ", ".join(
            f"{k}:{v:.0%}" for k, v in sorted(
                self.kind_shares.items(), key=lambda kv: -kv[1]
            )
        )
        return (
            f"{self.name}: {self.n_units} units over {self.duration_s:.1f} s\n"
            f"  demand    {self.mean_rate / 1e9:.2f} Gcycle/s mean, "
            f"{self.peak_rate / 1e9:.2f} peak "
            f"(burstiness {self.burstiness:.1f}x, cv {self.demand_cv:.2f})\n"
            f"  deadlines {self.mean_slack_s * 1e3:.1f} ms mean slack, "
            f"tightness {self.tightness:.2f}\n"
            f"  work mix  {kinds}"
        )


def profile(trace: Trace, window_s: float = 0.1) -> WorkloadProfile:
    """Characterise a trace.

    Args:
        trace: The trace to profile; must contain at least one unit.
        window_s: Window length for rate statistics.

    Raises:
        WorkloadError: For an empty trace or non-positive window.
    """
    if len(trace) == 0:
        raise WorkloadError("cannot profile an empty trace")
    if window_s <= 0:
        raise WorkloadError(f"window must be positive: {window_s}")

    n_windows = max(1, math.ceil(trace.duration_s / window_s))
    windowed = np.zeros(n_windows)
    kind_work: dict[str, float] = {}
    slack_sum = 0.0
    tight_sum = 0.0
    for u in trace:
        idx = min(int(u.release_s / window_s), n_windows - 1)
        windowed[idx] += u.work
        kind_work[u.kind] = kind_work.get(u.kind, 0.0) + u.work
        slack_sum += u.slack_s
        service_1ghz = u.work / 1e9
        tight_sum += service_1ghz / u.slack_s

    rates = windowed / window_s
    mean_rate = float(trace.total_work / trace.duration_s)
    peak_rate = float(rates.max())
    total = trace.total_work
    return WorkloadProfile(
        name=trace.name,
        n_units=len(trace),
        duration_s=trace.duration_s,
        mean_rate=mean_rate,
        peak_rate=peak_rate,
        burstiness=peak_rate / mean_rate if mean_rate > 0 else 1.0,
        demand_cv=float(rates.std() / rates.mean()) if rates.mean() > 0 else 0.0,
        mean_unit_work=total / len(trace),
        mean_slack_s=slack_sum / len(trace),
        tightness=tight_sum / len(trace),
        kind_shares={k: w / total for k, w in kind_work.items()},
        window_s=window_s,
    )


def compare_profiles(profiles: list[WorkloadProfile]) -> str:
    """Render a comparison table across several profiles."""
    # Deliberate upward reach: rendering borrows the analysis layer's
    # table formatter; deferred so characterisation itself stays
    # importable without the orchestration layer.
    from repro.analysis.tables import format_table  # noqa: RPL901

    if not profiles:
        raise WorkloadError("need at least one profile")
    rows = [
        (
            p.name,
            p.mean_rate / 1e9,
            p.burstiness,
            p.demand_cv,
            p.mean_slack_s * 1e3,
            p.tightness,
            p.dominant_kind(),
        )
        for p in profiles
    ]
    return format_table(
        ["trace", "mean Gc/s", "burstiness", "cv", "slack [ms]", "tightness",
         "dominant kind"],
        rows,
        title="workload characterisation",
    )
