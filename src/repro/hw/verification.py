"""Randomised equivalence verification: datapath vs float reference.

The hardware flow needs evidence that the fixed-point datapath tracks
the software agent.  This module drives both with identical random
experience streams and reports the divergence — maximum absolute
Q-value error, greedy-decision mismatch rate, and where the divergence
concentrates.  Used by the test suite and available to users verifying
custom Q-formats before committing to RTL.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import HardwareModelError
from repro.hw.datapath import QLearningDatapath
from repro.hw.fixed_point import QFormat
from repro.rl.qlearning import QLearningAgent


@dataclass(frozen=True)
class EquivalenceReport:
    """Outcome of one randomized equivalence run.

    Attributes:
        steps: Experience steps driven through both implementations.
        max_abs_error: Largest |Q_hw - Q_sw| over all table entries at
            the end of the run.
        mean_abs_error: Mean |Q_hw - Q_sw| over all entries.
        decision_mismatch_rate: Fraction of states whose greedy action
            differs at the end of the run.
        q_range: The float table's (min, max) — context for the errors.
    """

    steps: int
    max_abs_error: float
    mean_abs_error: float
    decision_mismatch_rate: float
    q_range: tuple[float, float]

    def acceptable(self, error_lsb: float, resolution: float,
                   max_mismatch: float = 0.05) -> bool:
        """Whether divergence is within ``error_lsb`` LSBs and the
        mismatch rate under ``max_mismatch``."""
        return (
            self.max_abs_error <= error_lsb * resolution
            and self.decision_mismatch_rate <= max_mismatch
        )

    def summary(self) -> str:
        """A one-line human-readable divergence summary."""
        return (
            f"{self.steps} steps: max |dQ| = {self.max_abs_error:.4g}, "
            f"mean |dQ| = {self.mean_abs_error:.4g}, "
            f"greedy mismatch = {self.decision_mismatch_rate:.2%} "
            f"(Q in [{self.q_range[0]:.3g}, {self.q_range[1]:.3g}])"
        )


def verify_equivalence(
    n_states: int = 32,
    n_actions: int = 5,
    qformat: QFormat | None = None,
    alpha_shift: int = 2,
    gamma: float = 0.85,
    steps: int = 2000,
    reward_range: tuple[float, float] = (-4.0, 0.0),
    seed: int = 0,
) -> EquivalenceReport:
    """Drive random experience through both implementations and compare.

    The float agent uses exactly alpha = 2**-alpha_shift so the only
    divergence source is quantisation.

    Raises:
        HardwareModelError: On invalid dimensions (via the datapath) or
            a reward range outside the Q-format.
    """
    qformat = qformat or QFormat(7, 8)
    lo, hi = reward_range
    if lo > hi:
        raise HardwareModelError(f"bad reward range: {reward_range}")
    if lo < qformat.min_value or hi > qformat.max_value:
        raise HardwareModelError(
            f"reward range {reward_range} exceeds {qformat} "
            f"[{qformat.min_value}, {qformat.max_value}]"
        )
    datapath = QLearningDatapath(
        n_states, n_actions, qformat=qformat, alpha_shift=alpha_shift, gamma=gamma
    )
    agent = QLearningAgent(
        n_states, n_actions, alpha=2.0**-alpha_shift, gamma=gamma
    )
    rng = np.random.default_rng(seed)
    for _ in range(steps):
        s = int(rng.integers(n_states))
        a = int(rng.integers(n_actions))
        r = float(rng.uniform(lo, hi))
        s2 = int(rng.integers(n_states))
        datapath.update(s, a, r, s2)
        agent.update(s, a, r, s2)

    hw = datapath.to_float_table()
    errors = np.abs(hw.values - agent.table.values)
    mismatches = sum(
        datapath.argmax(s) != agent.table.argmax(s) for s in range(n_states)
    )
    return EquivalenceReport(
        steps=steps,
        max_abs_error=float(errors.max()),
        mean_abs_error=float(errors.mean()),
        decision_mismatch_rate=mismatches / n_states,
        q_range=(float(agent.table.values.min()), float(agent.table.values.max())),
    )


def sweep_formats(
    formats: list[QFormat],
    **kwargs,
) -> dict[str, EquivalenceReport]:
    """Run :func:`verify_equivalence` for several formats."""
    if not formats:
        raise HardwareModelError("need at least one format")
    return {str(fmt): verify_equivalence(qformat=fmt, **kwargs) for fmt in formats}
