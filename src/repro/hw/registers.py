"""The MMIO register map of the CPU <-> accelerator interface.

The kernel driver writes two 32-bit observation words and reads one
decision word back (matching the ``obs_words=2, decision_words=1``
defaults of :class:`repro.hw.interface.InterfaceSpec`):

``OBS0`` — the state digits, one byte each::

    [ 7: 0] util bin     [15: 8] trend bin
    [23:16] OPP bin      [31:24] slack bin

``OBS1`` — the reward and control flags::

    [15: 0] reward, two's-complement Q-format raw value
    [   16] learn enable (0 = inference only)
    [31:17] reserved, must be zero

``DECISION`` — the accelerator's reply::

    [ 7: 0] action index
    [30:16] sequence counter (wraps at 2^15)
    [   31] valid

This module is the single source of truth both simulation sides use, so
a register-layout bug would break the hardware policy loudly instead of
silently disagreeing with the RTL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import HardwareModelError
from repro.hw.fixed_point import QFormat

WORD_MASK = 0xFFFFFFFF
#: Width of the OBS1 reward field; the lint rule RPL203 reads this
#: constant to reject QFormats that could never cross the interface.
OBS1_REWARD_BITS = 16
_REWARD_MASK = (1 << OBS1_REWARD_BITS) - 1
_REWARD_SIGN = 1 << (OBS1_REWARD_BITS - 1)
_LEARN_BIT = 1 << 16
_VALID_BIT = 1 << 31
_SEQ_SHIFT = 16
_SEQ_MASK = 0x7FFF


def _check_word(word: int, name: str) -> None:
    if not 0 <= word <= WORD_MASK:
        raise HardwareModelError(f"{name} is not a 32-bit word: {word:#x}")


def pack_obs0(digits: Sequence[int]) -> int:
    """Pack the four state digits into the OBS0 word.

    Raises:
        HardwareModelError: On wrong arity or digits outside one byte.
    """
    if len(digits) != 4:
        raise HardwareModelError(f"OBS0 carries exactly 4 digits, got {len(digits)}")
    word = 0
    for i, digit in enumerate(digits):
        if not 0 <= digit <= 0xFF:
            raise HardwareModelError(f"state digit {i} out of byte range: {digit}")
        word |= digit << (8 * i)
    return word


def unpack_obs0(word: int) -> tuple[int, int, int, int]:
    """Inverse of :func:`pack_obs0`."""
    _check_word(word, "OBS0")
    return tuple((word >> (8 * i)) & 0xFF for i in range(4))  # type: ignore[return-value]


def pack_obs1(reward: float, qformat: QFormat, learn: bool = True) -> int:
    """Pack the reward (quantised to the datapath format) and flags.

    The reward raw value is carried two's-complement in 16 bits, so the
    Q-format must not be wider than 16 bits.
    """
    if qformat.width > OBS1_REWARD_BITS:
        raise HardwareModelError(
            f"OBS1 reward field is {OBS1_REWARD_BITS} bits; "
            f"{qformat} is {qformat.width}"
        )
    raw = qformat.quantize(reward)
    word = raw & _REWARD_MASK  # two's complement into the low half-word
    if learn:
        word |= _LEARN_BIT
    return word


def unpack_obs1(word: int, qformat: QFormat) -> tuple[float, bool]:
    """Inverse of :func:`pack_obs1`: returns ``(reward, learn)``.

    The reward comes back through the Q-format, so it is the quantised
    value the datapath actually saw.
    """
    _check_word(word, "OBS1")
    if word & ~(_REWARD_MASK | _LEARN_BIT):
        raise HardwareModelError(f"OBS1 reserved bits set: {word:#x}")
    raw = word & _REWARD_MASK
    if raw >= _REWARD_SIGN:  # sign-extend
        raw -= 1 << OBS1_REWARD_BITS
    return qformat.dequantize(raw), bool(word & _LEARN_BIT)


def pack_decision(action: int, seq: int, valid: bool = True) -> int:
    """Pack the accelerator's decision word."""
    if not 0 <= action <= 0xFF:
        raise HardwareModelError(f"action out of byte range: {action}")
    if seq < 0:
        raise HardwareModelError(f"sequence counter must be non-negative: {seq}")
    word = action | ((seq & _SEQ_MASK) << _SEQ_SHIFT)
    if valid:
        word |= _VALID_BIT
    return word


def unpack_decision(word: int) -> tuple[int, int, bool]:
    """Inverse of :func:`pack_decision`: ``(action, seq, valid)``."""
    _check_word(word, "DECISION")
    action = word & 0xFF
    seq = (word >> _SEQ_SHIFT) & _SEQ_MASK
    return action, seq, bool(word & _VALID_BIT)


@dataclass
class RegisterFile:
    """A tiny model of the accelerator's AXI-Lite register file.

    The CPU side writes OBS0/OBS1, the accelerator side consumes them
    and publishes DECISION; reads of DECISION clear the valid bit, as a
    one-shot mailbox would.
    """

    qformat: QFormat
    obs0: int = 0
    obs1: int = 0
    decision: int = 0
    writes: int = 0
    reads: int = 0

    def write_observation(self, digits: Sequence[int], reward: float,
                          learn: bool = True) -> None:
        """CPU-side: latch a new observation."""
        self.obs0 = pack_obs0(digits)
        self.obs1 = pack_obs1(reward, self.qformat, learn)
        self.writes += 1

    def consume_observation(self) -> tuple[tuple[int, int, int, int], float, bool]:
        """Accelerator-side: read the latched observation."""
        digits = unpack_obs0(self.obs0)
        reward, learn = unpack_obs1(self.obs1, self.qformat)
        return digits, reward, learn

    def publish_decision(self, action: int) -> None:
        """Accelerator-side: publish a decision with the next sequence
        number and the valid bit set."""
        _, prev_seq, _ = unpack_decision(self.decision)
        self.decision = pack_decision(action, (prev_seq + 1) & _SEQ_MASK, valid=True)

    def read_decision(self) -> tuple[int, int]:
        """CPU-side: pop the decision mailbox.

        Returns:
            ``(action, seq)``.

        Raises:
            HardwareModelError: If no valid decision is pending.
        """
        action, seq, valid = unpack_decision(self.decision)
        if not valid:
            raise HardwareModelError("DECISION mailbox is empty (valid bit clear)")
        self.decision = pack_decision(action, seq, valid=False)
        self.reads += 1
        return action, seq
