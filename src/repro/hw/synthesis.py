"""FPGA resource estimation for the policy accelerator.

First-order synthesis estimates from the design parameters — the kind
of budgeting done before writing RTL.  Formulas follow the obvious
structure of the datapath:

* **BRAM**: the Q-table, ``n_states * n_actions * width`` bits, packed
  into 18 Kib block halves.
* **DSP**: one multiplier for the gamma product when the word width
  fits a DSP slice, otherwise a LUT multiplier.
* **LUTs/FFs**: comparator tree (one W-bit comparator per node), the
  adder/subtractor pair of the TD update, the mixed-radix state encoder,
  and the AXI-Lite register file.

Numbers are estimates, not synthesis results; the A6-style bench uses
them to show the implementation comfortably fits a small FPGA and how
resources scale with word length.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import HardwareModelError
from repro.hw.fixed_point import QFormat

# A W-bit compare/select node costs roughly W LUTs (carry chain) + W FFs
# when registered; an add/sub similar.  Per-bit constants below.
_LUT_PER_BIT_CMP = 1.0
_LUT_PER_BIT_ADD = 1.0
_FF_PER_BIT_STAGE = 1.0
_AXI_LITE_LUTS = 150
_AXI_LITE_FFS = 200
_CONTROL_FSM_LUTS = 80
_CONTROL_FSM_FFS = 60
_DSP_MAX_WIDTH = 18  # one DSP48-class slice multiplies up to 18x18
_BRAM_KBIT = 18


@dataclass(frozen=True)
class ResourceEstimate:
    """Estimated FPGA resources for one accelerator instance."""

    luts: int
    ffs: int
    bram_18k: int
    dsps: int

    def fits(self, luts: int, ffs: int, bram_18k: int, dsps: int) -> bool:
        """Whether the estimate fits a device with the given budget."""
        return (
            self.luts <= luts
            and self.ffs <= ffs
            and self.bram_18k <= bram_18k
            and self.dsps <= dsps
        )

    def __str__(self) -> str:
        return (
            f"{self.luts} LUTs, {self.ffs} FFs, "
            f"{self.bram_18k}x18Kb BRAM, {self.dsps} DSP"
        )


def estimate_resources(
    n_states: int, n_actions: int, qformat: QFormat
) -> ResourceEstimate:
    """Estimate the accelerator's FPGA footprint.

    Args:
        n_states: Q-table rows.
        n_actions: Q-table columns (comparator-tree width).
        qformat: Q-value word format.

    Raises:
        HardwareModelError: For non-positive table dimensions.
    """
    if n_states < 1 or n_actions < 1:
        raise HardwareModelError(
            f"table dimensions must be positive: {n_states}x{n_actions}"
        )
    width = qformat.width

    table_bits = n_states * n_actions * width
    bram = max(1, math.ceil(table_bits / (_BRAM_KBIT * 1024)))

    # Comparator tree: n_actions - 1 compare/select nodes.
    cmp_nodes = max(0, n_actions - 1)
    cmp_luts = math.ceil(cmp_nodes * width * _LUT_PER_BIT_CMP)
    cmp_ffs = math.ceil(cmp_nodes * width * _FF_PER_BIT_STAGE)

    # TD update: subtract (target - q), shift (free), add.
    add_luts = math.ceil(2 * width * _LUT_PER_BIT_ADD)
    add_ffs = math.ceil(2 * width * _FF_PER_BIT_STAGE)

    # gamma multiply: a DSP when the operands fit, else a LUT multiplier
    # (~W^2 / 2 LUTs for a naive array multiplier).
    if width <= _DSP_MAX_WIDTH:
        dsps = 1
        mul_luts = 0
    else:
        dsps = 0
        mul_luts = math.ceil(width * width / 2)

    # Mixed-radix state encoder: one small multiplier-accumulate per
    # dimension; budget ~4 dimensions at ~width LUTs each.
    encoder_luts = 4 * width

    luts = (
        cmp_luts + add_luts + mul_luts + encoder_luts
        + _AXI_LITE_LUTS + _CONTROL_FSM_LUTS
    )
    ffs = cmp_ffs + add_ffs + _AXI_LITE_FFS + _CONTROL_FSM_FFS
    return ResourceEstimate(luts=luts, ffs=ffs, bram_18k=bram, dsps=dsps)


# A small-end Zynq-7010-class budget (the natural board for this design).
ZYNQ7010_BUDGET = {"luts": 17_600, "ffs": 35_200, "bram_18k": 120, "dsps": 80}


def fits_zynq7010(estimate: ResourceEstimate) -> bool:
    """Whether the estimate fits the smallest common Zynq part."""
    return estimate.fits(**ZYNQ7010_BUDGET)
