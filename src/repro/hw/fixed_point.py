"""Q-format fixed-point arithmetic.

The FPGA implementation of the policy stores Q-values and computes the
Watkins update in signed fixed point.  A :class:`QFormat` describes a
``Qm.n`` format (m integer bits, n fraction bits, plus sign); values are
carried as raw integers, and all arithmetic saturates — as the RTL
would — instead of wrapping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FixedPointError


@dataclass(frozen=True)
class QFormat:
    """Signed Qm.n fixed-point format.

    Attributes:
        int_bits: Integer bits (excluding sign), >= 0.
        frac_bits: Fraction bits, >= 0.  Total width is
            ``1 + int_bits + frac_bits``.
    """

    int_bits: int
    frac_bits: int

    def __post_init__(self) -> None:
        if self.int_bits < 0 or self.frac_bits < 0:
            raise FixedPointError(
                f"Q-format bits must be non-negative: Q{self.int_bits}.{self.frac_bits}"
            )
        if self.int_bits + self.frac_bits == 0:
            raise FixedPointError("Q-format needs at least one magnitude bit")

    def __str__(self) -> str:
        return f"Q{self.int_bits}.{self.frac_bits}"

    @property
    def width(self) -> int:
        """Total bit width including the sign bit."""
        return 1 + self.int_bits + self.frac_bits

    @property
    def scale(self) -> int:
        """The weight of the least-significant bit is ``1/scale``."""
        return 1 << self.frac_bits

    @property
    def raw_max(self) -> int:
        """Largest representable raw value."""
        return (1 << (self.int_bits + self.frac_bits)) - 1

    @property
    def raw_min(self) -> int:
        """Smallest (most negative) representable raw value."""
        return -(1 << (self.int_bits + self.frac_bits))

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.raw_max / self.scale

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.raw_min / self.scale

    @property
    def resolution(self) -> float:
        """Real value of one LSB."""
        return 1.0 / self.scale

    # -- conversions ---------------------------------------------------------

    def saturate(self, raw: int) -> int:
        """Clamp a raw integer into the representable range."""
        return max(self.raw_min, min(self.raw_max, raw))

    def quantize(self, value: float, *, strict: bool = False) -> int:
        """Convert a real value to raw fixed point (round to nearest).

        Args:
            value: The real value.
            strict: When True, out-of-range values raise instead of
                saturating.

        Raises:
            FixedPointError: On NaN, or out-of-range input with
                ``strict=True``.
        """
        if value != value:  # NaN
            raise FixedPointError("cannot quantize NaN")
        raw = round(value * self.scale)
        if strict and not self.raw_min <= raw <= self.raw_max:
            raise FixedPointError(
                f"{value} out of range for {self} "
                f"[{self.min_value}, {self.max_value}]"
            )
        return self.saturate(raw)

    def dequantize(self, raw: int) -> float:
        """Convert a raw fixed-point integer back to a real value."""
        if not self.raw_min <= raw <= self.raw_max:
            raise FixedPointError(f"raw value {raw} out of range for {self}")
        return raw / self.scale

    # -- arithmetic (raw in, raw out, saturating) ------------------------------

    def add(self, a: int, b: int) -> int:
        """Saturating fixed-point addition."""
        return self.saturate(a + b)

    def sub(self, a: int, b: int) -> int:
        """Saturating fixed-point subtraction."""
        return self.saturate(a - b)

    def mul(self, a: int, b: int) -> int:
        """Saturating fixed-point multiply with round-to-nearest rescale.

        The double-width product is shifted back by ``frac_bits`` with
        rounding, exactly as a DSP-block multiply-and-truncate stage.
        """
        product = a * b
        half = 1 << (self.frac_bits - 1) if self.frac_bits > 0 else 0
        if product >= 0:
            shifted = (product + half) >> self.frac_bits
        else:
            shifted = -((-product + half) >> self.frac_bits)
        return self.saturate(shifted)

    def shift_right(self, a: int, bits: int) -> int:
        """Arithmetic right shift with round-to-nearest (the hardware's
        cheap multiply-by-2^-k used for the learning rate)."""
        if bits < 0:
            raise FixedPointError(f"shift must be non-negative: {bits}")
        if bits == 0:
            return a
        half = 1 << (bits - 1)
        if a >= 0:
            return (a + half) >> bits
        return -((-a + half) >> bits)


# The format the reference FPGA datapath uses: 16-bit Q7.8.
DEFAULT_QFORMAT = QFormat(int_bits=7, frac_bits=8)
