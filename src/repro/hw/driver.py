"""The kernel-driver model for the policy accelerator.

Between the governor callback and the register file sits a driver that
submits the observation and collects the decision.  Two completion
strategies exist in practice, with different latency/CPU-cost
trade-offs:

* **polling** — spin reading the DECISION register until the valid bit
  sets; lowest latency, burns CPU, each poll is a bus read;
* **interrupt** — sleep until the accelerator raises an IRQ; frees the
  CPU but adds the interrupt path latency.

The driver also implements the error handling the register-file mailbox
needs: a timeout when the accelerator never completes, and sequence-
number checking so a stale decision (from a previous request) is never
consumed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareModelError
from repro.hw.interface import CpuHwInterface, InterfaceSpec
from repro.hw.registers import RegisterFile


@dataclass(frozen=True)
class DriverSpec:
    """Driver timing parameters.

    Attributes:
        mode: ``"polling"`` or ``"interrupt"``.
        poll_interval_s: Delay between DECISION reads when polling.
        irq_latency_s: Interrupt-path latency (IRQ delivery + wakeup +
            context switch) in interrupt mode.
        timeout_s: Give-up deadline for one request.
    """

    mode: str = "polling"
    poll_interval_s: float = 100e-9
    irq_latency_s: float = 5e-6
    timeout_s: float = 1e-3

    def __post_init__(self) -> None:
        if self.mode not in ("polling", "interrupt"):
            raise HardwareModelError(f"unknown driver mode {self.mode!r}")
        if self.poll_interval_s <= 0 or self.irq_latency_s < 0 or self.timeout_s <= 0:
            raise HardwareModelError("driver timing parameters must be positive")


@dataclass(frozen=True)
class DriverTransaction:
    """Accounting for one completed driver request.

    Attributes:
        action: The decision read back.
        seq: Its sequence number.
        latency_s: Total modelled latency (submit + wait + read-back).
        polls: DECISION reads performed (1 in interrupt mode).
    """

    action: int
    seq: int
    latency_s: float
    polls: int


class AcceleratorDriver:
    """Submits requests through a register file and collects decisions.

    The accelerator itself is represented by a callable the caller
    provides (``service``), which consumes the latched observation and
    publishes a decision — in tests a lambda, in the policy the
    datapath.  The driver adds the bus, poll/IRQ, and timeout behaviour.

    Args:
        registers: The shared register file.
        spec: Driver timing.
        interface_spec: Bus timing for the MMIO transactions.
        compute_latency_s: Modelled accelerator compute time per request
            (how long until the decision becomes valid).
    """

    def __init__(
        self,
        registers: RegisterFile,
        spec: DriverSpec | None = None,
        interface_spec: InterfaceSpec | None = None,
        compute_latency_s: float = 0.14e-6,
    ):
        if compute_latency_s < 0:
            raise HardwareModelError("compute latency must be non-negative")
        self.registers = registers
        self.spec = spec or DriverSpec()
        self.interface = CpuHwInterface(interface_spec or InterfaceSpec(sync_cycles=2))
        self.compute_latency_s = compute_latency_s
        self.transactions: list[DriverTransaction] = []
        self.timeouts = 0
        self._expected_seq = 0

    def request(self, digits, reward: float, service, learn: bool = True
                ) -> DriverTransaction:
        """One full request: write observation, let the accelerator
        serve it, wait for completion, read the decision.

        Args:
            digits: State digits for OBS0.
            reward: Reward for OBS1.
            service: Callable ``(register_file) -> None`` that consumes
                the observation and publishes a decision (or does not —
                the timeout path).
            learn: OBS1 learn flag.

        Raises:
            HardwareModelError: On timeout or a stale sequence number.
        """
        latency = self.interface.submit_observation(1)
        self.registers.write_observation(digits, reward, learn)
        service(self.registers)
        latency += self.compute_latency_s

        polls = 0
        if self.spec.mode == "polling":
            waited = 0.0
            while True:
                polls += 1
                latency += self.interface.read_decision(1)
                try:
                    action, seq = self.registers.read_decision()
                    break
                except HardwareModelError:
                    waited += self.spec.poll_interval_s
                    latency += self.spec.poll_interval_s
                    if waited > self.spec.timeout_s:
                        self.timeouts += 1
                        raise HardwareModelError(
                            f"accelerator did not complete within "
                            f"{self.spec.timeout_s} s"
                        ) from None
        else:
            latency += self.spec.irq_latency_s
            polls = 1
            latency += self.interface.read_decision(1)
            try:
                action, seq = self.registers.read_decision()
            except HardwareModelError:
                self.timeouts += 1
                raise HardwareModelError(
                    "IRQ signalled but DECISION mailbox empty"
                ) from None

        self._expected_seq = (self._expected_seq + 1) & 0x7FFF
        if seq != self._expected_seq:
            raise HardwareModelError(
                f"stale decision: sequence {seq}, expected {self._expected_seq}"
            )
        txn = DriverTransaction(action=action, seq=seq, latency_s=latency, polls=polls)
        self.transactions.append(txn)
        return txn

    @property
    def mean_latency_s(self) -> float:
        """Mean per-request latency over completed transactions."""
        if not self.transactions:
            return 0.0
        return sum(t.latency_s for t in self.transactions) / len(self.transactions)
