"""The hardware-implemented policy: the RL governor backed by the
fixed-point datapath.

Functionally this is the same policy as
:class:`repro.core.policy.RLPowerManagementPolicy`, but every Q-value
read, argmax, and update goes through the fixed-point
:class:`~repro.hw.datapath.QLearningDatapath`, and each step's modelled
latency (pipeline + MMIO) is accumulated — so a simulation run under
this governor reports both the decisions the FPGA would make and the
time it would take making them.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import PolicyConfig
from repro.core.policy import RLPowerManagementPolicy
from repro.core.state import StateFeaturizer
from repro.errors import PolicyError
from repro.governors.base import Governor
from repro.hw.datapath import QLearningDatapath
from repro.hw.fixed_point import DEFAULT_QFORMAT, QFormat
from repro.hw.interface import CpuHwInterface, InterfaceSpec
from repro.hw.pipeline import AcceleratorPipeline, PipelineSpec
from repro.hw.registers import RegisterFile
from repro.rl.reward import RewardConfig, default_energy_scale
from repro.sim.telemetry import ClusterObservation
from repro.soc.cluster import Cluster


class HardwareRLPolicy(Governor):
    """Fixed-point, latency-accounted version of the proposed policy.

    Args:
        config: Policy configuration (bins, actions, reward weights).
            The learning rate is realised as ``2**-alpha_shift``; the
            float ``config.alpha`` is ignored in favour of the shift.
        qformat: Datapath number format.
        alpha_shift: Learning-rate exponent (alpha = 2**-alpha_shift).
        online: Learn while running (True) or act greedily (False).
        pipeline_spec: Accelerator pipeline timing.
        interface_spec: MMIO link timing.
        seed: Exploration RNG seed (exploration runs on the CPU side).
    """

    name = "rl-policy-hw"

    def __init__(
        self,
        config: PolicyConfig | None = None,
        qformat: QFormat = DEFAULT_QFORMAT,
        alpha_shift: int = 2,
        online: bool = True,
        pipeline_spec: PipelineSpec | None = None,
        interface_spec: InterfaceSpec | None = None,
        seed: int | None = None,
    ):
        super().__init__()
        self.config = config or PolicyConfig()
        self.qformat = qformat
        self.alpha_shift = alpha_shift
        self.online = online
        self.featurizer: StateFeaturizer | None = None
        self.datapath: QLearningDatapath | None = None
        self.reward_config: RewardConfig | None = None
        self.pipeline = AcceleratorPipeline(
            pipeline_spec or PipelineSpec(), n_actions=self.config.n_actions
        )
        self.interface = CpuHwInterface(interface_spec or InterfaceSpec(sync_cycles=2))
        # The MMIO reward field is a fixed 16-bit Q7.8 regardless of the
        # datapath's internal table format — it is part of the register map.
        self.registers = RegisterFile(qformat=DEFAULT_QFORMAT)
        self._rng = np.random.default_rng(
            self.config.seed if seed is None else seed
        )
        self._eps_step = 0
        self._prev_state: int | None = None
        self._prev_action: int | None = None
        self.total_latency_s = 0.0
        self.decisions = 0

    # -- lifecycle ---------------------------------------------------------

    def reset(self, cluster: Cluster) -> None:
        """Bind to a cluster; datapath BRAM persists across runs."""
        super().reset(cluster)
        n_opps = len(cluster.spec.opp_table)
        if self.featurizer is not None and self.featurizer.n_opps != n_opps:
            raise PolicyError(
                f"hardware policy configured for a {self.featurizer.n_opps}-OPP "
                f"cluster; cannot re-bind to {n_opps} OPPs"
            )
        if self.featurizer is None:
            self.featurizer = StateFeaturizer(self.config, n_opps)
            self.datapath = QLearningDatapath(
                n_states=self.featurizer.n_states,
                n_actions=self.config.n_actions,
                qformat=self.qformat,
                alpha_shift=self.alpha_shift,
                gamma=self.config.gamma,
            )
        top = cluster.spec.opp_table[cluster.spec.opp_table.max_index]
        self.reward_config = RewardConfig(
            energy_scale_j=default_energy_scale(
                cluster.spec.core.ceff_f,
                top.voltage_v,
                top.freq_hz,
                cluster.n_cores,
                interval_s=0.01,
            ),
            lambda_qos=self.config.lambda_qos,
            slack_threshold=self.config.slack_threshold,
        )
        self.featurizer.reset()
        self._prev_state = None
        self._prev_action = None

    # -- decision ------------------------------------------------------------

    def decide(self, obs: ClusterObservation) -> int:
        if self.featurizer is None or self.datapath is None or self.reward_config is None:
            raise PolicyError("hardware policy decide() called before reset()")
        # CPU side: featurise and latch the observation into the MMIO
        # register file (reward is quantised at this boundary).
        digits = self.featurizer.digits(obs)
        reward = self.reward_config.compute(obs)
        self.registers.write_observation(digits, reward, learn=self.online)

        # Accelerator side: consume the registers and run the datapath.
        rx_digits, rx_reward, learn = self.registers.consume_observation()
        state = self.featurizer.space.encode(rx_digits)
        did_update = False
        if learn and self._prev_state is not None and self._prev_action is not None:
            self.datapath.update(self._prev_state, self._prev_action, rx_reward, state)
            did_update = True

        if self.online and self._rng.random() < self._epsilon():
            # Exploration runs on the CPU side (a LFSR in the real design
            # could live on either; the driver owns it here).
            action = int(self._rng.integers(self.config.n_actions))
        else:
            action = self.datapath.argmax(state)
        self.registers.publish_decision(action)
        action, _seq = self.registers.read_decision()
        self._prev_state = state
        self._prev_action = action

        # Account the modelled hardware latency for this step.
        step_latency = self.pipeline.process(with_update=did_update)
        step_latency += self.interface.round_trip_s(1)
        self.total_latency_s += step_latency
        self.decisions += 1

        table = self.cluster.spec.opp_table
        delta = self.config.action_deltas[action]
        return table.clamp_index(obs.opp_index + delta)

    def _epsilon(self) -> float:
        eps = self.config.epsilon.value(self._eps_step)
        self._eps_step += 1
        return eps

    # -- interchange with the software policy ----------------------------------

    def load_from_software(self, policy: RLPowerManagementPolicy) -> None:
        """Quantise a trained software policy's Q-table into the BRAM.

        Raises:
            PolicyError: If either policy is unbound or shapes differ.
        """
        if policy.agent is None or policy.featurizer is None:
            raise PolicyError("software policy has not been trained")
        if self.featurizer is None or self.datapath is None:
            # Mirror the software policy's geometry before a first reset.
            self.featurizer = StateFeaturizer(self.config, policy.featurizer.n_opps)
            self.datapath = QLearningDatapath(
                n_states=self.featurizer.n_states,
                n_actions=self.config.n_actions,
                qformat=self.qformat,
                alpha_shift=self.alpha_shift,
                gamma=self.config.gamma,
            )
        self.datapath.load_float_table(policy.agent.table)

    @property
    def mean_decision_latency_s(self) -> float:
        """Average modelled hardware latency per decision so far."""
        return self.total_latency_s / self.decisions if self.decisions else 0.0
