"""Hardware-implementation substrate: fixed point, datapath, pipeline,
CPU-FPGA interface, and latency models."""

from repro.hw.datapath import QLearningDatapath
from repro.hw.driver import AcceleratorDriver, DriverSpec, DriverTransaction
from repro.hw.fixed_point import DEFAULT_QFORMAT, QFormat
from repro.hw.hwpolicy import HardwareRLPolicy
from repro.hw.interface import CpuHwInterface, InterfaceSpec
from repro.hw.latency import (
    HardwareLatencyModel,
    LatencyComparison,
    SoftwareLatencyModel,
    compare_latency,
)
from repro.hw.pipeline import AcceleratorPipeline, PipelineSpec
from repro.hw.power import AcceleratorPowerModel, overhead_fraction
from repro.hw.registers import RegisterFile
from repro.hw.rtl import Completion, Request, RTLAccelerator
from repro.hw.synthesis import (
    ResourceEstimate,
    ZYNQ7010_BUDGET,
    estimate_resources,
    fits_zynq7010,
)
from repro.hw.verification import (
    EquivalenceReport,
    sweep_formats,
    verify_equivalence,
)

__all__ = [
    "AcceleratorDriver",
    "AcceleratorPipeline",
    "AcceleratorPowerModel",
    "Completion",
    "DriverSpec",
    "DriverTransaction",
    "CpuHwInterface",
    "EquivalenceReport",
    "DEFAULT_QFORMAT",
    "HardwareLatencyModel",
    "HardwareRLPolicy",
    "InterfaceSpec",
    "LatencyComparison",
    "PipelineSpec",
    "QFormat",
    "QLearningDatapath",
    "RTLAccelerator",
    "RegisterFile",
    "Request",
    "ResourceEstimate",
    "SoftwareLatencyModel",
    "ZYNQ7010_BUDGET",
    "compare_latency",
    "estimate_resources",
    "fits_zynq7010",
    "overhead_fraction",
    "sweep_formats",
    "verify_equivalence",
]
