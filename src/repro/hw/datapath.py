"""Fixed-point Q-learning datapath — the accelerator's functional model.

Implements exactly the arithmetic the FPGA performs: Q-values live in a
block-RAM-like table in Q-format raw integers, the greedy action comes
from a priority comparator tree (lowest index wins ties), and the
Watkins update uses a power-of-two learning rate realised as an
arithmetic shift.  The software agent in :mod:`repro.rl.qlearning` is
the float reference this datapath is checked against (experiment E7).
"""

from __future__ import annotations

import numpy as np

from repro.errors import HardwareModelError
from repro.hw.fixed_point import DEFAULT_QFORMAT, QFormat
from repro.rl.qtable import QTable


class QLearningDatapath:
    """The accelerator's Q-table and update logic in fixed point.

    Args:
        n_states: Q-table rows (BRAM depth).
        n_actions: Q-table columns (one BRAM word holds a row).
        qformat: Number format of Q-values and rewards.
        alpha_shift: Learning rate exponent; alpha = 2**-alpha_shift.
        gamma: Discount factor, quantised into ``qformat`` once at
            configuration time.
    """

    def __init__(
        self,
        n_states: int,
        n_actions: int,
        qformat: QFormat = DEFAULT_QFORMAT,
        alpha_shift: int = 2,
        gamma: float = 0.85,
    ):
        if n_states < 1 or n_actions < 1:
            raise HardwareModelError(
                f"datapath needs positive table dims: {n_states}x{n_actions}"
            )
        if alpha_shift < 0:
            raise HardwareModelError(f"alpha shift must be >= 0: {alpha_shift}")
        if not 0.0 <= gamma < 1.0:
            raise HardwareModelError(f"gamma must be in [0, 1): {gamma}")
        self.fmt = qformat
        self.alpha_shift = alpha_shift
        self.gamma_raw = qformat.quantize(gamma)
        # Python ints in an object array would be slow; int64 raw storage is
        # exact for widths up to 62 bits, far beyond practical Q-formats.
        if qformat.width > 62:
            raise HardwareModelError(f"{qformat} too wide for the model (max 62 bits)")
        self.table = np.zeros((n_states, n_actions), dtype=np.int64)
        self.updates = 0

    @property
    def n_states(self) -> int:
        return int(self.table.shape[0])

    @property
    def n_actions(self) -> int:
        return int(self.table.shape[1])

    @property
    def alpha(self) -> float:
        """The effective learning rate (2**-alpha_shift)."""
        return 2.0**-self.alpha_shift

    def _check_state(self, state: int) -> None:
        if not 0 <= state < self.n_states:
            raise HardwareModelError(
                f"state {state} out of range [0, {self.n_states})"
            )

    # -- datapath operations ---------------------------------------------------

    def read_row(self, state: int) -> list[int]:
        """BRAM row read: raw Q-values for one state."""
        self._check_state(state)
        return [int(v) for v in self.table[state]]

    def argmax(self, state: int) -> int:
        """Priority comparator tree: greedy action, lowest index on ties."""
        row = self.read_row(state)
        best_a = 0
        best_v = row[0]
        for a in range(1, len(row)):
            if row[a] > best_v:  # strict: ties keep the lower index
                best_v = row[a]
                best_a = a
        return best_a

    def max_value_raw(self, state: int) -> int:
        """Raw Q-value of the greedy action."""
        return self.read_row(state)[self.argmax(state)]

    def update(self, state: int, action: int, reward: float, next_state: int) -> int:
        """One fixed-point Watkins update.

        ``Q[s,a] += (r + gamma * max Q[s'] - Q[s,a]) >> alpha_shift``
        with every intermediate saturated to the datapath format.

        Args:
            reward: Real-valued reward; quantised at the interface, as the
                reward word written over MMIO would be.

        Returns:
            The raw TD error (before the learning-rate shift).
        """
        self._check_state(state)
        if not 0 <= action < self.n_actions:
            raise HardwareModelError(
                f"action {action} out of range [0, {self.n_actions})"
            )
        fmt = self.fmt
        r_raw = fmt.quantize(reward)
        q_raw = int(self.table[state, action])
        boot = fmt.mul(self.gamma_raw, self.max_value_raw(next_state))
        target = fmt.add(r_raw, boot)
        td = fmt.sub(target, q_raw)
        new_q = fmt.add(q_raw, fmt.shift_right(td, self.alpha_shift))
        self.table[state, action] = new_q
        self.updates += 1
        return td

    # -- interchange with the float reference ----------------------------------

    def load_float_table(self, qtable: QTable) -> None:
        """Quantise a trained software Q-table into the datapath BRAM.

        Raises:
            HardwareModelError: On shape mismatch.
        """
        if (qtable.n_states, qtable.n_actions) != (self.n_states, self.n_actions):
            raise HardwareModelError(
                f"software table {qtable.n_states}x{qtable.n_actions} does not "
                f"match datapath {self.n_states}x{self.n_actions}"
            )
        for s in range(self.n_states):
            for a in range(self.n_actions):
                self.table[s, a] = self.fmt.quantize(qtable.get(s, a))

    def to_float_table(self) -> QTable:
        """Dequantise the BRAM contents into a software Q-table."""
        out = QTable(self.n_states, self.n_actions)
        for s in range(self.n_states):
            for a in range(self.n_actions):
                out.set(s, a, self.fmt.dequantize(int(self.table[s, a])))
        return out

    def bram_bits(self) -> int:
        """Total BRAM storage the table occupies, in bits."""
        return self.n_states * self.n_actions * self.fmt.width
