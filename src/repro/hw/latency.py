"""Decision-latency models: software policy vs. hardware policy.

The paper's second contribution is moving the policy into hardware:
"Decision-making by the hardware-implemented policy is 3.92 times faster
than by the software-implemented policy" (journal), "reduced the average
latency up to 40x" (DAC).  Both numbers are latency *ratios* between two
decision paths, so we model each path from its operation counts:

Software path (governor running in the kernel on a mobile core):
    kernel timer/governor-framework entry + the policy arithmetic at the
    core's IPC, all scaled by the current CPU clock, plus DRAM accesses
    for the Q-table that do not scale with the clock.  At low CPU clocks
    the fixed instruction path dominates and latency balloons — which is
    exactly when a DVFS governor tends to be running slowly.

Hardware path:
    the accelerator pipeline at the FPGA clock plus the MMIO round trip
    (see :mod:`repro.hw.pipeline` and :mod:`repro.hw.interface`).  With
    batching, one round trip serves every cluster's decision.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareModelError
from repro.hw.interface import CpuHwInterface, InterfaceSpec
from repro.hw.pipeline import AcceleratorPipeline, PipelineSpec


@dataclass(frozen=True)
class SoftwareLatencyModel:
    """Latency of the software (kernel) policy implementation.

    Attributes:
        kernel_overhead_cycles: Timer interrupt + cpufreq governor
            framework entry/exit, in CPU cycles.
        policy_instructions: Instructions of the policy proper (state
            encode, Q-row walk, argmax, TD update).
        ipc: Sustained instructions per cycle on the mobile core.
        cache_misses_warm: DRAM accesses with a warm cache (the Q-row).
        cache_misses_cold: DRAM accesses after the table was evicted.
        dram_latency_s: Seconds per DRAM access (does not scale with the
            CPU clock).
        cold_factor: Cycle inflation when caches/branch predictors are
            cold (applied to the instruction path).
    """

    kernel_overhead_cycles: int = 900
    policy_instructions: int = 420
    ipc: float = 0.8
    cache_misses_warm: int = 1
    cache_misses_cold: int = 16
    dram_latency_s: float = 120e-9
    cold_factor: float = 1.35

    def __post_init__(self) -> None:
        if self.kernel_overhead_cycles < 0 or self.policy_instructions < 1:
            raise HardwareModelError("instruction counts must be positive")
        if self.ipc <= 0:
            raise HardwareModelError(f"IPC must be positive: {self.ipc}")
        if self.cache_misses_warm < 0 or self.cache_misses_cold < 0:
            raise HardwareModelError("cache miss counts must be non-negative")
        if self.dram_latency_s < 0:
            raise HardwareModelError("DRAM latency must be non-negative")
        if self.cold_factor < 1.0:
            raise HardwareModelError(f"cold factor must be >= 1: {self.cold_factor}")

    def cycles(self, cold: bool = False) -> float:
        """CPU cycles of the instruction path."""
        base = self.kernel_overhead_cycles + self.policy_instructions / self.ipc
        return base * (self.cold_factor if cold else 1.0)

    def decision_latency_s(self, cpu_freq_hz: float, cold: bool = False) -> float:
        """One policy step's latency at a given CPU clock.

        Args:
            cpu_freq_hz: The clock of the core executing the governor.
            cold: Whether caches are cold (worst case).
        """
        if cpu_freq_hz <= 0:
            raise HardwareModelError(f"CPU clock must be positive: {cpu_freq_hz}")
        misses = self.cache_misses_cold if cold else self.cache_misses_warm
        return self.cycles(cold) / cpu_freq_hz + misses * self.dram_latency_s


@dataclass(frozen=True)
class HardwareLatencyModel:
    """Latency of the FPGA policy implementation (pipeline + MMIO).

    Attributes:
        pipeline_spec: Accelerator pipeline timing.
        interface_spec: MMIO link timing.
        n_actions: Action-set size (comparator-tree depth).
    """

    pipeline_spec: PipelineSpec = PipelineSpec()
    interface_spec: InterfaceSpec = InterfaceSpec(sync_cycles=2)
    n_actions: int = 5

    def decision_latency_s(
        self, n_clusters: int = 1, with_update: bool = True
    ) -> float:
        """Total latency of one batched policy step for ``n_clusters``."""
        pipeline = AcceleratorPipeline(self.pipeline_spec, self.n_actions)
        interface = CpuHwInterface(self.interface_spec)
        compute = sum(
            pipeline.process(with_update=with_update) for _ in range(n_clusters)
        )
        return compute + interface.round_trip_s(n_clusters)

    def per_decision_latency_s(
        self, n_clusters: int = 1, with_update: bool = True
    ) -> float:
        """Amortised per-cluster latency of a batched step."""
        if n_clusters < 1:
            raise HardwareModelError(f"need at least one cluster: {n_clusters}")
        return self.decision_latency_s(n_clusters, with_update) / n_clusters


@dataclass(frozen=True)
class LatencyComparison:
    """One row of the E4 latency table."""

    label: str
    cpu_freq_hz: float
    software_s: float
    hardware_s: float

    @property
    def speedup(self) -> float:
        """How many times faster the hardware path is."""
        if self.hardware_s <= 0:
            raise HardwareModelError("hardware latency must be positive")
        return self.software_s / self.hardware_s


def compare_latency(
    cpu_freq_hz: float,
    software: SoftwareLatencyModel | None = None,
    hardware: HardwareLatencyModel | None = None,
    *,
    cold: bool = False,
    n_clusters: int = 1,
    label: str = "",
) -> LatencyComparison:
    """Build one software-vs-hardware latency comparison row.

    Args:
        cpu_freq_hz: CPU clock for the software path.
        software: Software latency model (defaults used when omitted).
        hardware: Hardware latency model (defaults used when omitted).
        cold: Cold-cache software worst case.
        n_clusters: Batching width on the hardware path.
        label: Row label for the report.
    """
    software = software or SoftwareLatencyModel()
    hardware = hardware or HardwareLatencyModel()
    return LatencyComparison(
        label=label or f"{cpu_freq_hz / 1e6:.0f} MHz{' cold' if cold else ''}",
        cpu_freq_hz=cpu_freq_hz,
        software_s=software.decision_latency_s(cpu_freq_hz, cold=cold),
        hardware_s=hardware.per_decision_latency_s(n_clusters),
    )
