"""Power estimate of the accelerator itself.

The hardware policy only makes sense if the FPGA engine burns far less
than the DVFS savings it buys.  This module estimates the accelerator's
own power from its activity — a first-order FPGA dynamic model (energy
per LUT toggle, per BRAM access, per DSP op) plus static floor — so the
A6/E4 story can close the loop: savings ≫ overhead.

Energy constants are 28 nm FPGA orders of magnitude (Xilinx XPE-class
numbers); the conclusion (milliwatts vs. hundreds of milliwatts saved)
has orders of magnitude of slack.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareModelError
from repro.hw.synthesis import ResourceEstimate


@dataclass(frozen=True)
class AcceleratorPowerModel:
    """First-order FPGA power model.

    Attributes:
        lut_energy_j: Energy per active LUT per cycle (with typical
            toggle rates folded in).
        bram_access_energy_j: Energy per 18 Kib BRAM access.
        dsp_op_energy_j: Energy per DSP multiply.
        static_w_per_klut: Leakage per 1000 LUTs of occupied fabric.
        base_static_w: Device static floor attributable to the design
            (clock tree share, config SRAM).
    """

    lut_energy_j: float = 5e-15
    bram_access_energy_j: float = 5e-12
    dsp_op_energy_j: float = 4e-12
    static_w_per_klut: float = 1e-3
    base_static_w: float = 2e-3

    def __post_init__(self) -> None:
        if min(self.lut_energy_j, self.bram_access_energy_j,
               self.dsp_op_energy_j, self.static_w_per_klut,
               self.base_static_w) < 0:
            raise HardwareModelError("power constants must be non-negative")

    def step_energy_j(self, resources: ResourceEstimate, step_cycles: int,
                      bram_accesses: int = 3, dsp_ops: int = 1) -> float:
        """Energy of one policy step (update + decision).

        Args:
            resources: The design's footprint.
            step_cycles: Active cycles per step (from the pipeline model).
            bram_accesses: BRAM reads/writes per step (2 row reads + 1
                write-back in the reference design).
            dsp_ops: DSP multiplies per step.
        """
        if step_cycles < 1:
            raise HardwareModelError(f"step cycles must be >= 1: {step_cycles}")
        dynamic = (
            resources.luts * self.lut_energy_j * step_cycles
            + bram_accesses * self.bram_access_energy_j
            + dsp_ops * self.dsp_op_energy_j
        )
        return dynamic

    def average_power_w(
        self,
        resources: ResourceEstimate,
        step_cycles: int,
        decision_rate_hz: float,
        bram_accesses: int = 3,
        dsp_ops: int = 1,
    ) -> float:
        """Average accelerator power at a sustained decision rate.

        Args:
            decision_rate_hz: Policy steps per second (100/s per cluster
                at 10 ms intervals).
        """
        if decision_rate_hz < 0:
            raise HardwareModelError(
                f"decision rate must be non-negative: {decision_rate_hz}"
            )
        static = self.base_static_w + resources.luts / 1000.0 * self.static_w_per_klut
        dynamic = self.step_energy_j(
            resources, step_cycles, bram_accesses, dsp_ops
        ) * decision_rate_hz
        return static + dynamic


def overhead_fraction(
    accelerator_w: float, savings_w: float
) -> float:
    """The accelerator's power as a fraction of the DVFS savings it buys.

    Raises:
        HardwareModelError: For non-positive savings.
    """
    if savings_w <= 0:
        raise HardwareModelError(f"savings must be positive: {savings_w}")
    if accelerator_w < 0:
        raise HardwareModelError(f"accelerator power must be non-negative")
    return accelerator_w / savings_w
