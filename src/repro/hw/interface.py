"""CPU <-> accelerator communication interface model.

The paper "construct[s] a communication interface between the CPUs and
the hardware of the proposed policy".  We model the standard realisation:
a memory-mapped AXI-Lite register file on the FPGA.  A policy step is

    CPU writes the observation words  ->  accelerator computes  ->
    CPU reads the decision word back

Each MMIO transaction costs bus cycles on the interconnect plus a fixed
clock-domain-crossing synchroniser penalty.  The interface also supports
*batched* operation — one transaction carries every cluster's
observation — which amortises the round trip and produces the paper's
best-case ("up to 40x") latency gain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareModelError


@dataclass(frozen=True)
class InterfaceSpec:
    """AXI-Lite MMIO timing parameters.

    Attributes:
        bus_hz: Interconnect clock.
        write_cycles: Bus cycles per posted 32-bit write.
        read_cycles: Bus cycles per 32-bit read (address + data phases).
        sync_cycles: Clock-domain-crossing penalty per direction.
        obs_words: 32-bit words per cluster observation (packed state
            features + reward).
        decision_words: 32-bit words per returned decision.
    """

    bus_hz: float = 100e6
    write_cycles: int = 3
    read_cycles: int = 5
    sync_cycles: int = 4
    obs_words: int = 2
    decision_words: int = 1

    def __post_init__(self) -> None:
        if self.bus_hz <= 0:
            raise HardwareModelError(f"bus clock must be positive: {self.bus_hz}")
        for name in ("write_cycles", "read_cycles", "sync_cycles",
                     "obs_words", "decision_words"):
            if getattr(self, name) < 1:
                raise HardwareModelError(f"{name} must be >= 1")


class CpuHwInterface:
    """Transaction-latency model of the MMIO link.

    Args:
        spec: Bus timing parameters.
    """

    def __init__(self, spec: InterfaceSpec | None = None):
        self.spec = spec or InterfaceSpec()
        self.transactions = 0
        self.total_cycles = 0

    def _account(self, cycles: int) -> float:
        self.transactions += 1
        self.total_cycles += cycles
        return cycles / self.spec.bus_hz

    def submit_observation(self, n_clusters: int = 1) -> float:
        """Latency of writing ``n_clusters`` observations, seconds.

        Writes are posted back-to-back; the CDC penalty is paid once.
        """
        if n_clusters < 1:
            raise HardwareModelError(f"need at least one cluster: {n_clusters}")
        s = self.spec
        cycles = s.sync_cycles + n_clusters * s.obs_words * s.write_cycles
        return self._account(cycles)

    def read_decision(self, n_clusters: int = 1) -> float:
        """Latency of reading ``n_clusters`` decisions back, seconds."""
        if n_clusters < 1:
            raise HardwareModelError(f"need at least one cluster: {n_clusters}")
        s = self.spec
        cycles = s.sync_cycles + n_clusters * s.decision_words * s.read_cycles
        return self._account(cycles)

    def round_trip_s(self, n_clusters: int = 1) -> float:
        """Full submit + read-back latency for one policy step, seconds."""
        return self.submit_observation(n_clusters) + self.read_decision(n_clusters)
