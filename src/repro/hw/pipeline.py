"""Cycle-level model of the accelerator pipeline.

The policy engine on the FPGA is a short pipeline clocked at
``clock_hz``:

    state encode -> BRAM row read -> comparator tree -> (update: TD
    compute -> write back)

Stage depths follow the obvious RTL structure: the comparator tree over
``n_actions`` values is ``ceil(log2(n_actions))`` levels, BRAM reads are
the standard 2-cycle synchronous read, and the TD update spends one
cycle each on the gamma multiply (DSP), add/shift, and write-back.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import HardwareModelError


@dataclass(frozen=True)
class PipelineSpec:
    """Stage depths (in cycles) of the accelerator pipeline.

    Attributes:
        clock_hz: FPGA fabric clock.
        encode_cycles: Binning + mixed-radix state encode.
        bram_read_cycles: Synchronous BRAM row read latency.
        update_mul_cycles: The gamma multiply (DSP latency).
        update_add_cycles: TD add + learning-rate shift.
        writeback_cycles: BRAM write-back.
    """

    clock_hz: float = 100e6
    encode_cycles: int = 1
    bram_read_cycles: int = 2
    update_mul_cycles: int = 1
    update_add_cycles: int = 1
    writeback_cycles: int = 1

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise HardwareModelError(f"clock must be positive: {self.clock_hz}")
        for field_name in (
            "encode_cycles",
            "bram_read_cycles",
            "update_mul_cycles",
            "update_add_cycles",
            "writeback_cycles",
        ):
            if getattr(self, field_name) < 1:
                raise HardwareModelError(f"{field_name} must be >= 1")


class AcceleratorPipeline:
    """Counts cycles for decision and update operations.

    Args:
        spec: Stage depths and clock.
        n_actions: Action count (sets the comparator-tree depth).
    """

    def __init__(self, spec: PipelineSpec | None = None, n_actions: int = 5):
        if n_actions < 1:
            raise HardwareModelError(f"need at least one action: {n_actions}")
        self.spec = spec or PipelineSpec()
        self.n_actions = n_actions
        self.decisions = 0
        self.total_cycles = 0

    @property
    def compare_cycles(self) -> int:
        """Comparator-tree depth for the action argmax."""
        return max(1, math.ceil(math.log2(self.n_actions)))

    def decision_cycles(self) -> int:
        """Cycles for one greedy decision (encode, read, compare)."""
        s = self.spec
        return s.encode_cycles + s.bram_read_cycles + self.compare_cycles

    def update_cycles(self) -> int:
        """Cycles for one Q update (read next-state row, compare for the
        bootstrap max, multiply, add, write back)."""
        s = self.spec
        return (
            s.bram_read_cycles
            + self.compare_cycles
            + s.update_mul_cycles
            + s.update_add_cycles
            + s.writeback_cycles
        )

    def step_cycles(self) -> int:
        """Cycles for one full policy step: update for the previous
        decision followed by the new decision (the per-interval work)."""
        return self.update_cycles() + self.decision_cycles()

    def decision_latency_s(self, *, with_update: bool = True) -> float:
        """Wall-clock latency of one policy step at the fabric clock."""
        cycles = self.step_cycles() if with_update else self.decision_cycles()
        return cycles / self.spec.clock_hz

    def process(self, *, with_update: bool = True) -> float:
        """Account one policy step; returns its latency in seconds."""
        cycles = self.step_cycles() if with_update else self.decision_cycles()
        self.decisions += 1
        self.total_cycles += cycles
        return cycles / self.spec.clock_hz
