"""Cycle-driven RTL-level simulation of the policy accelerator.

:mod:`repro.hw.pipeline` prices operations analytically; this module
actually *clocks* the design: a request queue feeds a pipeline whose
stages hold one transaction each, with a single-ported BRAM arbitrating
between the read of a new request and the write-back of an update.
It exists to validate the analytical model (tests assert the two agree
on throughput and latency) and to answer questions the closed-form
model cannot, like queueing behaviour when several clusters' requests
arrive back-to-back.

Stage structure (one transaction in flight per stage register):

    ENCODE -> READ0 -> READ1 -> CMP[xN] -> (update only) MUL -> ADD -> WB

``CMP`` repeats for the comparator-tree depth.  ``WB`` needs the BRAM
write port; a new request's ``READ0`` stalls while a write-back is in
progress (structural hazard of the single-ported BRAM).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque

from repro.errors import HardwareModelError


@dataclass(frozen=True)
class Request:
    """One policy step submitted to the accelerator.

    Attributes:
        req_id: Caller-assigned identifier.
        state: Flat Q-table row index.
        with_update: Whether a TD update precedes the decision (the
            normal online step).
    """

    req_id: int
    state: int
    with_update: bool = True


@dataclass(frozen=True)
class Completion:
    """A finished request.

    Attributes:
        req_id: Matches the submitted request.
        accepted_cycle: Cycle the request left the queue.
        done_cycle: Cycle the decision was valid.
    """

    req_id: int
    accepted_cycle: int
    done_cycle: int

    @property
    def latency_cycles(self) -> int:
        return self.done_cycle - self.accepted_cycle


@dataclass
class _InFlight:
    request: Request
    accepted_cycle: int
    plan: list[tuple[str, int]]
    remaining: int = 0  # cycles left in the current macro-stage
    stage: str = ""


class RTLAccelerator:
    """A clocked model of the Q-policy engine.

    The design is deliberately un-pipelined across *transactions* (one
    request in the datapath at a time, as a small control FSM would be
    built); throughput therefore equals the analytical per-step cycle
    count, which is what the tests check.

    Args:
        n_actions: Comparator-tree width.
        encode_cycles / bram_read_cycles / mul_cycles / add_cycles /
        writeback_cycles: Stage depths, matching
            :class:`repro.hw.pipeline.PipelineSpec` semantics.
        queue_depth: Request FIFO depth; submissions beyond it are
            rejected (the MMIO layer would back-pressure).
    """

    def __init__(
        self,
        n_actions: int = 5,
        encode_cycles: int = 1,
        bram_read_cycles: int = 2,
        mul_cycles: int = 1,
        add_cycles: int = 1,
        writeback_cycles: int = 1,
        queue_depth: int = 8,
    ):
        if n_actions < 1:
            raise HardwareModelError(f"need at least one action: {n_actions}")
        if queue_depth < 1:
            raise HardwareModelError(f"queue depth must be >= 1: {queue_depth}")
        for name, v in [
            ("encode_cycles", encode_cycles),
            ("bram_read_cycles", bram_read_cycles),
            ("mul_cycles", mul_cycles),
            ("add_cycles", add_cycles),
            ("writeback_cycles", writeback_cycles),
        ]:
            if v < 1:
                raise HardwareModelError(f"{name} must be >= 1")
        self.n_actions = n_actions
        self.encode_cycles = encode_cycles
        self.bram_read_cycles = bram_read_cycles
        self.mul_cycles = mul_cycles
        self.add_cycles = add_cycles
        self.writeback_cycles = writeback_cycles
        self.queue_depth = queue_depth

        self.cycle = 0
        self._queue: Deque[Request] = deque()
        self._inflight: _InFlight | None = None
        self.completions: list[Completion] = []
        self.rejected = 0
        self._busy_cycles = 0

    @property
    def compare_cycles(self) -> int:
        return max(1, math.ceil(math.log2(self.n_actions)))

    def _stage_plan(self, request: Request) -> list[tuple[str, int]]:
        """The (stage, cycles) sequence a request passes through."""
        plan: list[tuple[str, int]] = []
        if request.with_update:
            # TD update first: read next-state row, find its max, multiply
            # by gamma, add, write back.
            plan += [
                ("upd-read", self.bram_read_cycles),
                ("upd-cmp", self.compare_cycles),
                ("upd-mul", self.mul_cycles),
                ("upd-add", self.add_cycles),
                ("upd-wb", self.writeback_cycles),
            ]
        plan += [
            ("encode", self.encode_cycles),
            ("read", self.bram_read_cycles),
            ("cmp", self.compare_cycles),
        ]
        return plan

    def submit(self, request: Request) -> bool:
        """Enqueue a request; returns False (and counts a rejection) when
        the FIFO is full."""
        if len(self._queue) >= self.queue_depth:
            self.rejected += 1
            return False
        self._queue.append(request)
        return True

    def tick(self) -> list[Completion]:
        """Advance one clock cycle; returns completions this cycle."""
        self.cycle += 1
        done: list[Completion] = []

        if self._inflight is None and self._queue:
            request = self._queue.popleft()
            self._inflight = _InFlight(
                request=request,
                accepted_cycle=self.cycle,
                plan=self._stage_plan(request),
            )
            self._advance_stage()

        if self._inflight is not None:
            self._busy_cycles += 1
            self._inflight.remaining -= 1
            if self._inflight.remaining == 0:
                if self._inflight.plan:
                    self._advance_stage()
                else:
                    done.append(
                        Completion(
                            req_id=self._inflight.request.req_id,
                            accepted_cycle=self._inflight.accepted_cycle,
                            done_cycle=self.cycle,
                        )
                    )
                    self.completions.append(done[-1])
                    self._inflight = None
        return done

    def _advance_stage(self) -> None:
        assert self._inflight is not None
        stage, cycles = self._inflight.plan.pop(0)
        self._inflight.stage = stage
        self._inflight.remaining = cycles

    def run_until_idle(self, max_cycles: int = 1_000_000) -> list[Completion]:
        """Clock until the queue and datapath drain.

        Raises:
            HardwareModelError: If the design does not drain within
                ``max_cycles`` (a hang would be a model bug).
        """
        start = self.cycle
        while self._queue or self._inflight is not None:
            if self.cycle - start > max_cycles:
                raise HardwareModelError("RTL model failed to drain (hang?)")
            self.tick()
        return list(self.completions)

    @property
    def utilization(self) -> float:
        """Fraction of elapsed cycles the datapath was busy."""
        return self._busy_cycles / self.cycle if self.cycle else 0.0

    def step_cycles(self, with_update: bool = True) -> int:
        """The analytical per-request cycle count (for cross-checking
        against :class:`repro.hw.pipeline.AcceleratorPipeline`)."""
        total = self.encode_cycles + self.bram_read_cycles + self.compare_cycles
        if with_update:
            total += (
                self.bram_read_cycles
                + self.compare_cycles
                + self.mul_cycles
                + self.add_cycles
                + self.writeback_cycles
            )
        return total
