"""repro.obs — zero-overhead-when-disabled observability.

One module-level hub (:data:`OBS`) owns the active
:class:`~repro.obs.trace.Tracer` and
:class:`~repro.obs.metrics.MetricsRegistry`.  Probe points across the
simulator, governors, RL learners, trainer, and fleet all guard on
``OBS.enabled`` — a single attribute check — so uninstrumented runs are
bit-identical to, and indistinguishable in cost from, the
pre-observability engine.

Typical use::

    from repro import obs

    with obs.capture() as session:
        Simulator(chip, trace, governors).run()
    obs.write_chrome_trace("trace.json", session.tracer, session.metrics)
    print(obs.format_breakdown(obs.phase_breakdown(session.tracer.spans)))

Module map:

* :mod:`repro.obs.trace`   — spans, instants, ``Tracer`` / ``NullTracer``
* :mod:`repro.obs.metrics` — ``Counter`` / ``Gauge`` / ``Histogram``
  behind a ``MetricsRegistry``; ``merge_snapshots`` for fleet grids
* :mod:`repro.obs.export`  — Chrome ``trace_event`` JSON, JSONL,
  Prometheus text
* :mod:`repro.obs.profile` — ``engine.phase.*`` time breakdowns
* :mod:`repro.obs.context` — ``TraceContext`` request correlation
* :mod:`repro.obs.opslog`  — structured JSONL ops log (``OpsLogger``)
* :mod:`repro.obs.learn`   — JSONL learning ledger (``LearnRecorder``),
  convergence/divergence detectors, ``repro learn`` gate
* :mod:`repro.obs.runtime` — sliding windows, health indicators, SLOs

Span/metric naming conventions live in ``docs/observability.md``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.obs.context import (
    TraceContext,
    bind,
    current_context,
    new_trace_id,
    trace_args,
)
from repro.obs.export import (
    EPOCH_METADATA_NAME,
    chrome_trace,
    load_chrome_trace,
    load_spans,
    merge_trace_files,
    merge_traces,
    prometheus_text,
    read_jsonl,
    span_tree,
    spans_from_chrome,
    trace_lanes,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.learn import (
    DEFAULT_CONVERGENCE,
    LEARN_RECORD_FIELDS,
    LEARN_RENDERERS,
    ConvergenceSpec,
    LearnGateResult,
    LearnRecorder,
    LearnReport,
    LearnVerdict,
    evaluate_learning,
    format_learn_summary,
    gate_learn_log,
    is_plateau,
    learn_gate,
    learn_record,
    load_convergence_spec,
    plateau_episode,
    read_learn_log,
    render_learn_github,
    render_learn_json,
    render_learn_text,
    spec_from_mapping,
    summarize_learning,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    histogram_quantile,
    merge_snapshots,
)
from repro.obs.opslog import (
    OPS_RECORD_FIELDS,
    OpsLogger,
    format_ops_summary,
    job_record_from_event,
    ops_record,
    read_ops_log,
    summarize_ops,
    tail_ops_log,
)
from repro.obs.profile import PhaseStat, format_breakdown, phase_breakdown
from repro.obs.runtime import (
    DEFAULT_SLOS,
    SLO_RENDERERS,
    SlidingWindow,
    SloGateResult,
    SloReport,
    SloSpec,
    SloVerdict,
    evaluate_slos,
    gate_ops_log,
    health_indicators,
    load_slo_config,
    render_slo_github,
    render_slo_json,
    render_slo_text,
    slo_gate,
    slos_from_mapping,
)
from repro.obs.trace import (
    NULL_TRACER,
    InstantRecord,
    NullTracer,
    SpanRecord,
    Tracer,
)


class ObsHub:
    """The process-wide observability switchboard.

    Attributes:
        enabled: The one flag every probe checks.
        tracer: The active tracer (:data:`~repro.obs.trace.NULL_TRACER`
            while disabled).
        metrics: The active registry (a throwaway one while disabled).
    """

    __slots__ = ("enabled", "tracer", "metrics")

    def __init__(self) -> None:
        self.enabled = False
        self.tracer: Tracer | NullTracer = NULL_TRACER
        self.metrics = MetricsRegistry()


OBS = ObsHub()
"""The singleton hub; import this name, never rebind it."""


@dataclass(frozen=True)
class ObsSession:
    """The tracer/registry pair one :func:`enable` or :func:`capture`
    installed; keeps the data reachable after :func:`disable`."""

    tracer: Tracer | NullTracer
    metrics: MetricsRegistry


def enable(
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    trace: bool = True,
) -> ObsSession:
    """Switch observability on, installing fresh collectors.

    Args:
        tracer: Tracer to install; a new one when omitted.
        metrics: Registry to install; a new one when omitted.
        trace: When False, install the null tracer (metrics-only
            sessions — what fleet workers use, since shipping a million
            spans over a process boundary helps no one).
    """
    OBS.tracer = tracer if tracer is not None else (
        Tracer() if trace else NULL_TRACER
    )
    OBS.metrics = metrics if metrics is not None else MetricsRegistry()
    OBS.enabled = True
    return ObsSession(tracer=OBS.tracer, metrics=OBS.metrics)


def disable() -> None:
    """Switch observability off (probes go back to the attribute check)."""
    OBS.enabled = False
    OBS.tracer = NULL_TRACER
    OBS.metrics = MetricsRegistry()


@contextmanager
def capture(trace: bool = True) -> Iterator[ObsSession]:
    """Scoped observability: enable on entry, restore on exit.

    Nests correctly — the previous tracer/registry (and enabled state)
    come back when the block exits, so a library caller cannot clobber
    an outer capture.
    """
    saved = (OBS.enabled, OBS.tracer, OBS.metrics)
    session = enable(trace=trace)
    try:
        yield session
    finally:
        OBS.enabled, OBS.tracer, OBS.metrics = saved


__all__ = [
    "ConvergenceSpec",
    "Counter",
    "DEFAULT_CONVERGENCE",
    "DEFAULT_SLOS",
    "EPOCH_METADATA_NAME",
    "Gauge",
    "Histogram",
    "InstantRecord",
    "LEARN_RECORD_FIELDS",
    "LEARN_RENDERERS",
    "LearnGateResult",
    "LearnRecorder",
    "LearnReport",
    "LearnVerdict",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "OBS",
    "OPS_RECORD_FIELDS",
    "ObsHub",
    "ObsSession",
    "OpsLogger",
    "PhaseStat",
    "SLO_RENDERERS",
    "SlidingWindow",
    "SloGateResult",
    "SloReport",
    "SloSpec",
    "SloVerdict",
    "SpanRecord",
    "TraceContext",
    "Tracer",
    "bind",
    "capture",
    "chrome_trace",
    "current_context",
    "disable",
    "enable",
    "evaluate_learning",
    "evaluate_slos",
    "format_breakdown",
    "format_learn_summary",
    "format_ops_summary",
    "gate_learn_log",
    "gate_ops_log",
    "health_indicators",
    "histogram_quantile",
    "is_plateau",
    "job_record_from_event",
    "learn_gate",
    "learn_record",
    "load_chrome_trace",
    "load_convergence_spec",
    "load_slo_config",
    "load_spans",
    "merge_snapshots",
    "merge_trace_files",
    "merge_traces",
    "new_trace_id",
    "ops_record",
    "phase_breakdown",
    "plateau_episode",
    "prometheus_text",
    "read_jsonl",
    "read_learn_log",
    "read_ops_log",
    "render_learn_github",
    "render_learn_json",
    "render_learn_text",
    "render_slo_github",
    "render_slo_json",
    "render_slo_text",
    "slo_gate",
    "slos_from_mapping",
    "span_tree",
    "spans_from_chrome",
    "spec_from_mapping",
    "summarize_learning",
    "summarize_ops",
    "tail_ops_log",
    "trace_args",
    "trace_lanes",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
