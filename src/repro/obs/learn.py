"""The learning ledger: one JSONL record per training episode.

The ops log (:mod:`repro.obs.opslog`) answers "what has the *service*
been doing"; the learning ledger answers "what has the *learner* been
doing" — one self-describing JSON object per training episode, carrying
the reward, TD-error statistics, exploration rate, Q-table norms,
state-visitation coverage, and greedy-policy churn that convergence
arguments are made of.

:class:`LearnRecorder` is the **only** code allowed to append to a
learning ledger; lint rule RPL802 enforces that, exactly as
RPL501/RPL601/RPL801 do for the perf ledger, the run cache, and the ops
log.  Everything else here is read-side: :func:`read_learn_log` backs
``repro learn report|gate``, and the :class:`ConvergenceSpec` detectors
turn a ledger into a deterministic exit code for CI.

Record schema (see ``docs/observability.md``):

=====================  =====================================================
field                  meaning
=====================  =====================================================
``ts``                 Wall-clock unix seconds when the record was logged.
``episode``            Global episode index (offset across curriculum
                       stages so no index repeats).
``scenario``           Workload scenario the episode trained on.
``reward``             Summed reward across clusters for this episode.
``td_error_mean_abs``  Mean |TD error| over the episode's updates.
``td_error_var``       Population variance of the signed TD errors
                       (cross-cluster Welford merge).
``epsilon``            Exploration rate at episode end (max over clusters).
``q_norm_l2``          L2 norm over all clusters' Q-tables.
``q_max_abs``          Largest |Q| entry — the divergence alarm's input.
``coverage``           Fraction of Q-rows visited (max over clusters).
``churn``              Fraction of states whose greedy action changed vs
                       the previous episode (0.0 when no prior table).
``energy_per_qos_j``   The episode's energy-per-QoS (the paper's metric).
``mean_qos``           The episode's mean QoS.
``updates``            Q-update count across clusters this episode.
=====================  =====================================================

Extra keys (``job_id``, ``stage``, ...) are allowed and preserved; the
required fourteen always exist.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro.errors import ObsError

#: Every learning record carries at least these keys.
LEARN_RECORD_FIELDS = (
    "ts", "episode", "scenario", "reward", "td_error_mean_abs",
    "td_error_var", "epsilon", "q_norm_l2", "q_max_abs", "coverage",
    "churn", "energy_per_qos_j", "mean_qos", "updates",
)


def learn_record(
    episode: int,
    scenario: str,
    reward: float = 0.0,
    td_error_mean_abs: float = 0.0,
    td_error_var: float = 0.0,
    epsilon: float = 0.0,
    q_norm_l2: float = 0.0,
    q_max_abs: float = 0.0,
    coverage: float = 0.0,
    churn: float = 0.0,
    energy_per_qos_j: float = 0.0,
    mean_qos: float = 0.0,
    updates: int = 0,
    ts: float | None = None,
    **extra: Any,
) -> dict[str, Any]:
    """A schema-complete learning record (not yet written anywhere).

    Raises:
        ObsError: On a negative episode/update count, an empty scenario,
            a coverage/churn/epsilon outside ``[0, 1]``, or a negative
            TD statistic or Q norm.
    """
    if episode < 0:
        raise ObsError(f"episode index cannot be negative: {episode}")
    if not scenario:
        raise ObsError("a learning record needs a non-empty scenario")
    for name, value in (
        ("coverage", coverage), ("churn", churn), ("epsilon", epsilon),
    ):
        if not 0.0 <= value <= 1.0:
            raise ObsError(
                f"learning record {name} must be in [0, 1]: {value}"
            )
    for name, value in (
        ("td_error_mean_abs", td_error_mean_abs),
        ("td_error_var", td_error_var),
        ("q_norm_l2", q_norm_l2),
        ("q_max_abs", q_max_abs),
    ):
        if value < 0:
            raise ObsError(
                f"learning record {name} cannot be negative: {value}"
            )
    if updates < 0:
        raise ObsError(f"update count cannot be negative: {updates}")
    record: dict[str, Any] = {
        # The wall-clock stamp is ledger metadata, never simulation
        # state: training results are bit-identical with or without it.
        "ts": time.time() if ts is None else float(ts),  # noqa: RPL902
        "episode": int(episode),
        "scenario": scenario,
        "reward": float(reward),
        "td_error_mean_abs": float(td_error_mean_abs),
        "td_error_var": float(td_error_var),
        "epsilon": float(epsilon),
        "q_norm_l2": float(q_norm_l2),
        "q_max_abs": float(q_max_abs),
        "coverage": float(coverage),
        "churn": float(churn),
        "energy_per_qos_j": float(energy_per_qos_j),
        "mean_qos": float(mean_qos),
        "updates": int(updates),
    }
    record.update(extra)
    return record


class LearnRecorder:
    """Append-only JSONL writer — the sole blessed ledger producer.

    One recorder owns one file; every :meth:`log` call validates the
    record against the schema and appends one line, so a crashed
    training run keeps every completed episode and the ledger stays
    greppable while training runs.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.written = 0

    def log(self, record: Mapping[str, Any]) -> dict[str, Any]:
        """Validate and append one record; returns the stored form.

        Raises:
            ObsError: When required fields are missing or the record is
                not JSON-serialisable.
        """
        missing = [f for f in LEARN_RECORD_FIELDS if f not in record]
        if missing:
            raise ObsError(f"learning record missing fields {missing}")
        stored = dict(record)
        try:
            line = json.dumps(stored, sort_keys=True)
        except (TypeError, ValueError) as exc:
            raise ObsError(
                f"learning record is not JSON-serialisable: {exc}"
            ) from exc
        with self.path.open("a") as fh:
            fh.write(line + "\n")
        self.written += 1
        return stored


# -- read side -------------------------------------------------------------


def read_learn_log(path: str | Path) -> list[dict[str, Any]]:
    """All records of one learning ledger, in file order.

    Raises:
        ObsError: On an unreadable file, a non-JSON line, or a record
            missing required fields.
    """
    source = Path(path)
    try:
        text = source.read_text()
    except OSError as exc:
        raise ObsError(f"cannot read learning ledger {source}: {exc}") from exc
    records: list[dict[str, Any]] = []
    for n, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObsError(f"{source}:{n} is not JSON: {exc}") from exc
        if not isinstance(record, dict):
            raise ObsError(f"{source}:{n} is not a JSON object")
        missing = [f for f in LEARN_RECORD_FIELDS if f not in record]
        if missing:
            raise ObsError(f"{source}:{n} missing fields {missing}")
        records.append(record)
    return records


def summarize_learning(records: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
    """Roll a record list up into the ``repro learn report`` payload.

    Pure and deterministic in the records: episode count, scenarios in
    training order, total reward, final coverage/epsilon/TD error, and
    the largest Q magnitude the run ever reached.
    """
    scenarios: list[str] = []
    for record in records:
        name = str(record.get("scenario", ""))
        if not scenarios or scenarios[-1] != name:
            scenarios.append(name)
    last = records[-1] if records else {}
    return {
        "episodes": len(records),
        "scenarios": scenarios,
        "total_reward": sum(float(r.get("reward", 0.0)) for r in records),
        "final_td_error_mean_abs": float(last.get("td_error_mean_abs", 0.0)),
        "final_epsilon": float(last.get("epsilon", 0.0)),
        "final_coverage": float(last.get("coverage", 0.0)),
        "final_energy_per_qos_j": float(last.get("energy_per_qos_j", 0.0)),
        "max_q_abs": max(
            (float(r.get("q_max_abs", 0.0)) for r in records), default=0.0
        ),
        "mean_churn": (
            sum(float(r.get("churn", 0.0)) for r in records) / len(records)
            if records
            else 0.0
        ),
    }


def format_learn_summary(summary: Mapping[str, Any]) -> str:
    """The human-readable rendering of :func:`summarize_learning`."""
    lines = [
        f"{summary['episodes']} episode(s) over "
        f"{' -> '.join(summary['scenarios']) or '-'}"
    ]
    lines.append(f"total reward: {summary['total_reward']:.3f}")
    lines.append(
        f"final: td_error_mean_abs {summary['final_td_error_mean_abs']:.4f}, "
        f"epsilon {summary['final_epsilon']:.3f}, "
        f"coverage {summary['final_coverage']:.1%}"
    )
    lines.append(
        f"final energy/QoS: {summary['final_energy_per_qos_j'] * 1e3:.3f} mJ"
    )
    lines.append(
        f"mean churn: {summary['mean_churn']:.1%}, "
        f"max |Q|: {summary['max_q_abs']:.3f}"
    )
    return "\n".join(lines)


# -- convergence / divergence detection ------------------------------------


def is_plateau(values: Sequence[float], tol: float) -> bool:
    """Whether a window of values has stopped moving.

    A window is a plateau when its spread (max minus min) stays under
    ``tol`` times its smallest magnitude — for a positive series this is
    exactly ``max/min < 1 + tol``, the form E5's legacy tail heuristic
    used.  An all-equal window is always a plateau.

    Raises:
        ObsError: On an empty window or a negative tolerance.
    """
    if not values:
        raise ObsError("plateau test needs at least one value")
    if tol < 0:
        raise ObsError(f"plateau tolerance cannot be negative: {tol}")
    spread = max(values) - min(values)
    if spread == 0.0:
        return True
    scale = min(abs(v) for v in values)
    return spread < tol * scale


def plateau_episode(
    values: Sequence[float], window: int, tol: float
) -> int | None:
    """The first index whose trailing ``window`` values form a plateau.

    Returns ``None`` when no window plateaus (including when the series
    is shorter than the window).

    Raises:
        ObsError: On a window below 2 or a negative tolerance.
    """
    if window < 2:
        raise ObsError(f"plateau window must be at least 2: {window}")
    for i in range(window - 1, len(values)):
        if is_plateau(values[i - window + 1 : i + 1], tol):
            return i
    return None


def _slope(values: Sequence[float]) -> float:
    """Least-squares slope of a series against its index."""
    n = len(values)
    mean_x = (n - 1) / 2.0
    mean_y = sum(values) / n
    num = sum((i - mean_x) * (v - mean_y) for i, v in enumerate(values))
    den = sum((i - mean_x) ** 2 for i in range(n))
    return num / den if den else 0.0


def _upward_crossings(values: Sequence[float], threshold: float) -> int:
    """How often the series rises from at-or-under to over ``threshold``."""
    return sum(
        1
        for prev, cur in zip(values, values[1:])
        if prev <= threshold < cur
    )


@dataclass(frozen=True)
class ConvergenceSpec:
    """Declarative convergence/divergence criteria over a ledger.

    Three convergence detectors look at the trailing ``window`` episodes
    (TD-error slope, mean churn, reward plateau) and two divergence
    alarms catch runs that are actively going wrong (Q-value explosion
    anywhere in the ledger, oscillating churn inside the window).

    Attributes:
        window: Trailing episode count the windowed detectors read.
        max_td_slope: Largest acceptable least-squares slope of
            ``td_error_mean_abs`` over the window (0.0 = non-increasing).
        max_churn: Largest acceptable mean greedy-policy churn over the
            window, in ``[0, 1]``.
        reward_plateau_tol: Relative spread under which the window's
            reward counts as plateaued (see :func:`is_plateau`).
        max_q_abs: Q-magnitude above which the run is declared
            divergent.
        max_churn_flips: Largest acceptable count of upward churn
            crossings of ``max_churn`` inside the window (more means
            the greedy policy is oscillating, not settling).
    """

    window: int = 4
    max_td_slope: float = 0.0
    max_churn: float = 0.05
    reward_plateau_tol: float = 0.10
    max_q_abs: float = 1000.0
    max_churn_flips: int = 2

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ObsError(
                f"convergence window must be at least 2: {self.window}"
            )
        if not 0.0 <= self.max_churn <= 1.0:
            raise ObsError(
                f"max_churn must be in [0, 1]: {self.max_churn}"
            )
        if self.reward_plateau_tol < 0:
            raise ObsError(
                "reward_plateau_tol cannot be negative: "
                f"{self.reward_plateau_tol}"
            )
        if self.max_q_abs <= 0:
            raise ObsError(f"max_q_abs must be positive: {self.max_q_abs}")
        if self.max_churn_flips < 0:
            raise ObsError(
                f"max_churn_flips cannot be negative: {self.max_churn_flips}"
            )


#: What ``repro learn gate`` checks when no spec file is given.
DEFAULT_CONVERGENCE = ConvergenceSpec()

_SPEC_FIELDS = (
    "window", "max_td_slope", "max_churn", "reward_plateau_tol",
    "max_q_abs", "max_churn_flips",
)


def spec_from_mapping(data: Mapping[str, Any]) -> ConvergenceSpec:
    """Parse a flat convergence-spec mapping.

    Raises:
        ObsError: On unknown keys or invalid field values.
    """
    unknown = set(data) - set(_SPEC_FIELDS)
    if unknown:
        raise ObsError(
            f"unknown convergence-spec keys {sorted(unknown)}; "
            f"known: {sorted(_SPEC_FIELDS)}"
        )
    return ConvergenceSpec(**data)


def load_convergence_spec(path: str | Path) -> ConvergenceSpec:
    """Load and validate a JSON convergence-spec file."""
    source = Path(path)
    try:
        data = json.loads(source.read_text())
    except OSError as exc:
        raise ObsError(
            f"cannot read convergence spec {source}: {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise ObsError(f"{source} is not JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ObsError(f"{source} must hold a JSON object")
    return spec_from_mapping(data)


@dataclass(frozen=True)
class LearnVerdict:
    """How one detector fared over one ledger.

    Attributes:
        name: Detector label (``td-slope``, ``churn``,
            ``reward-plateau``, ``q-explosion``, ``churn-oscillation``).
        status: ``"ok"`` / ``"fail"`` / ``"no-data"``.
        value: The measured quantity the detector compared.
        bound: The spec bound it was compared against.
        detail: Human-facing description of what was measured.
    """

    name: str
    status: str
    value: float
    bound: float
    detail: str = ""


@dataclass(frozen=True)
class LearnReport:
    """All verdicts of one evaluation pass over a ledger.

    Attributes:
        verdicts: One per detector, in a stable order.
        episodes: How many ledger records were evaluated.
        converged_episode: Ledger ``episode`` of the first record whose
            trailing window satisfies *all* convergence detectors, or
            ``None`` when training never settled.
    """

    verdicts: tuple[LearnVerdict, ...]
    episodes: int
    converged_episode: int | None = None

    @property
    def failures(self) -> tuple[LearnVerdict, ...]:
        """The verdicts that failed."""
        return tuple(v for v in self.verdicts if v.status == "fail")

    @property
    def ok(self) -> bool:
        """Whether no detector failed."""
        return not self.failures


def _window_converged(
    td: Sequence[float],
    churn: Sequence[float],
    reward: Sequence[float],
    spec: ConvergenceSpec,
) -> bool:
    """Whether one trailing window satisfies all convergence detectors."""
    if _slope(td) > spec.max_td_slope:
        return False
    if sum(churn) / len(churn) > spec.max_churn:
        return False
    return is_plateau(reward, spec.reward_plateau_tol)


def evaluate_learning(
    records: Sequence[Mapping[str, Any]],
    spec: ConvergenceSpec = DEFAULT_CONVERGENCE,
) -> LearnReport:
    """Evaluate every detector over a ledger (deterministic).

    Windowed detectors with fewer records than the spec's window report
    ``"no-data"`` and pass — a two-episode smoke run has not diverged,
    it just has not said anything yet (mirroring the SLO runtime's
    no-data semantics).
    """
    td = [float(r.get("td_error_mean_abs", 0.0)) for r in records]
    churn = [float(r.get("churn", 0.0)) for r in records]
    reward = [float(r.get("reward", 0.0)) for r in records]
    q_abs = [float(r.get("q_max_abs", 0.0)) for r in records]
    w = spec.window
    verdicts: list[LearnVerdict] = []

    if len(records) >= w:
        slope = _slope(td[-w:])
        verdicts.append(LearnVerdict(
            name="td-slope",
            status="fail" if slope > spec.max_td_slope else "ok",
            value=slope,
            bound=spec.max_td_slope,
            detail=f"TD-error slope over last {w} episode(s)",
        ))
        mean_churn = sum(churn[-w:]) / w
        verdicts.append(LearnVerdict(
            name="churn",
            status="fail" if mean_churn > spec.max_churn else "ok",
            value=mean_churn,
            bound=spec.max_churn,
            detail=f"mean greedy-policy churn over last {w} episode(s)",
        ))
        tail = reward[-w:]
        spread = max(tail) - min(tail)
        scale = min(abs(v) for v in tail)
        verdicts.append(LearnVerdict(
            name="reward-plateau",
            status="ok" if is_plateau(tail, spec.reward_plateau_tol) else "fail",
            value=spread / scale if scale > 0 else spread,
            bound=spec.reward_plateau_tol,
            detail=f"relative reward spread over last {w} episode(s)",
        ))
        flips = _upward_crossings(churn[-w:], spec.max_churn)
        verdicts.append(LearnVerdict(
            name="churn-oscillation",
            status="fail" if flips > spec.max_churn_flips else "ok",
            value=float(flips),
            bound=float(spec.max_churn_flips),
            detail=(
                f"upward churn crossings of {spec.max_churn:g} in last "
                f"{w} episode(s)"
            ),
        ))
    else:
        for name in ("td-slope", "churn", "reward-plateau",
                     "churn-oscillation"):
            verdicts.append(LearnVerdict(
                name=name, status="no-data", value=0.0, bound=0.0,
                detail=f"needs {w} episode(s), ledger has {len(records)}",
            ))

    if records:
        worst = max(q_abs)
        verdicts.append(LearnVerdict(
            name="q-explosion",
            status="fail" if worst > spec.max_q_abs else "ok",
            value=worst,
            bound=spec.max_q_abs,
            detail="largest |Q| entry anywhere in the ledger",
        ))
    else:
        verdicts.append(LearnVerdict(
            name="q-explosion", status="no-data", value=0.0, bound=0.0,
            detail="empty ledger",
        ))

    converged: int | None = None
    for i in range(w - 1, len(records)):
        lo = i - w + 1
        if _window_converged(
            td[lo : i + 1], churn[lo : i + 1], reward[lo : i + 1], spec
        ):
            converged = int(records[i].get("episode", i))
            break
    return LearnReport(
        verdicts=tuple(verdicts),
        episodes=len(records),
        converged_episode=converged,
    )


# -- rendering + gate (mirrors repro.obs.runtime's SLO gate) ---------------


def render_learn_text(report: LearnReport) -> str:
    """Human-readable learning report, one line per detector."""
    lines: list[str] = []
    for v in report.verdicts:
        lines.append(
            f"{v.status.upper():>7}  {v.name}: "
            f"{v.value:g} (bound {v.bound:g}) — {v.detail}"
        )
    failed = len(report.failures)
    lines.append("")
    converged = (
        f"converged at episode {report.converged_episode}"
        if report.converged_episode is not None
        else "not converged"
    )
    lines.append(
        f"{len(report.verdicts)} detector(s) over {report.episodes} "
        f"episode(s): {failed} failing; {converged}"
    )
    return "\n".join(lines)


def render_learn_json(report: LearnReport) -> str:
    """Machine-readable learning report (stable key order)."""
    payload = {
        "ok": report.ok,
        "episodes": report.episodes,
        "converged_episode": report.converged_episode,
        "verdicts": [
            {
                "name": v.name,
                "status": v.status,
                "value": v.value,
                "bound": v.bound,
                "detail": v.detail,
            }
            for v in report.verdicts
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_learn_github(report: LearnReport) -> str:
    """GitHub Actions annotations — one ``::error`` per failing detector."""
    lines: list[str] = []
    for v in report.failures:
        lines.append(
            f"::error title=learning gate::{v.name} at {v.value:g} "
            f"(bound {v.bound:g}) — {v.detail}"
        )
    for v in report.verdicts:
        if v.status == "no-data":
            lines.append(
                f"::warning title=learning no-data::{v.name}: {v.detail}"
            )
    if not lines:
        lines.append(
            "::notice title=learn gate::all convergence detectors within "
            "bounds"
        )
    return "\n".join(lines)


LEARN_RENDERERS: dict[str, Callable[[LearnReport], str]] = {
    "text": render_learn_text,
    "json": render_learn_json,
    "github": render_learn_github,
}


@dataclass(frozen=True)
class LearnGateResult:
    """What ``repro learn gate`` decided."""

    report: LearnReport
    exit_code: int
    warn_only: bool = field(default=False)


def learn_gate(report: LearnReport, warn_only: bool = False) -> LearnGateResult:
    """Turn a learning report into an exit code (0 pass, 1 violated).

    ``warn_only`` reports violations but forces exit 0 — the CI
    bring-up mode, same as ``repro slo gate --warn-only``.
    """
    failed = not report.ok and not warn_only
    return LearnGateResult(
        report=report, exit_code=1 if failed else 0, warn_only=warn_only
    )


def gate_learn_log(
    path: str | Path,
    spec: ConvergenceSpec = DEFAULT_CONVERGENCE,
    warn_only: bool = False,
) -> LearnGateResult:
    """One-call form: read a ledger, evaluate, gate."""
    return learn_gate(evaluate_learning(read_learn_log(path), spec), warn_only)
