"""Span tracing: nested wall-clock spans and instant events.

A :class:`Tracer` records *spans* (named durations, arbitrarily nested)
and *instants* (zero-duration point events such as per-decision
records).  Probe sites in the simulator and trainer are written against
the narrow begin/end/instant surface so the module-level
:class:`NullTracer` can stand in when observability is off — an
uninstrumented run pays only a truthiness check per probe.

Timestamps are microseconds relative to the tracer's construction
(``time.perf_counter`` based), which is exactly what the Chrome
``trace_event`` exporter wants.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import ObsError


@dataclass
class SpanRecord:
    """One completed span.

    Attributes:
        uid: Tracer-unique span id (creation order).
        parent_uid: Enclosing span's uid, or ``None`` at the top level.
        name: Span name, dot-separated (``"engine.phase.drain"``).
        cat: Coarse category for trace viewers (``"engine"``, ``"rl"``).
        start_us / dur_us: Microseconds relative to the tracer epoch.
        depth: Nesting depth at creation (0 = top level).
        args: Optional JSON-serialisable attributes.
    """

    uid: int
    parent_uid: int | None
    name: str
    cat: str
    start_us: float
    dur_us: float
    depth: int
    args: dict[str, Any] = field(default_factory=dict)


@dataclass
class InstantRecord:
    """One point event (e.g. a governor decision record)."""

    uid: int
    name: str
    cat: str
    ts_us: float
    args: dict[str, Any] = field(default_factory=dict)


class _OpenSpan:
    """A begin()-ed span waiting for its end()."""

    __slots__ = ("uid", "parent_uid", "name", "cat", "start_us", "depth", "args")

    def __init__(self, uid: int, parent_uid: int | None, name: str,
                 cat: str, start_us: float, depth: int,
                 args: dict[str, object] | None) -> None:
        self.uid = uid
        self.parent_uid = parent_uid
        self.name = name
        self.cat = cat
        self.start_us = start_us
        self.depth = depth
        self.args = args


class Tracer:
    """Collects nested spans and instant events in memory.

    Spans must close in LIFO order (well-nested); :meth:`end` raises
    :class:`~repro.errors.ObsError` on a mismatched handle so probe bugs
    surface immediately instead of silently corrupting the tree.
    """

    enabled = True

    def __init__(self) -> None:
        self._t0 = time.perf_counter()
        self._stack: list[_OpenSpan] = []
        self._next_uid = 0
        self.spans: list[SpanRecord] = []
        self.instants: list[InstantRecord] = []

    def _now_us(self) -> float:
        return (time.perf_counter() - self._t0) * 1e6

    # -- spans -----------------------------------------------------------

    def begin(self, name: str, cat: str = "default", **args: Any) -> _OpenSpan:
        """Open a span; pass the returned handle to :meth:`end`."""
        parent = self._stack[-1].uid if self._stack else None
        span = _OpenSpan(
            self._next_uid, parent, name, cat, self._now_us(),
            len(self._stack), args,
        )
        self._next_uid += 1
        self._stack.append(span)
        return span

    def end(self, handle: _OpenSpan) -> None:
        """Close the innermost open span; it must be ``handle``.

        Raises:
            ObsError: If ``handle`` is not the innermost open span.
        """
        if not self._stack or self._stack[-1] is not handle:
            raise ObsError(
                f"span {handle.name!r} closed out of order "
                f"(innermost is {self._stack[-1].name!r})"
                if self._stack
                else f"span {handle.name!r} closed but no span is open"
            )
        self._stack.pop()
        self.spans.append(
            SpanRecord(
                uid=handle.uid,
                parent_uid=handle.parent_uid,
                name=handle.name,
                cat=handle.cat,
                start_us=handle.start_us,
                dur_us=self._now_us() - handle.start_us,
                depth=handle.depth,
                args=handle.args,
            )
        )

    @contextmanager
    def span(self, name: str, cat: str = "default", **args: Any) -> Iterator[None]:
        """``with tracer.span("engine.run"): ...`` convenience wrapper."""
        handle = self.begin(name, cat, **args)
        try:
            yield
        finally:
            self.end(handle)

    # -- instants --------------------------------------------------------

    def instant(self, name: str, cat: str = "default", **args: Any) -> None:
        """Record a zero-duration point event."""
        self.instants.append(
            InstantRecord(self._next_uid, name, cat, self._now_us(), args)
        )
        self._next_uid += 1

    # -- introspection ---------------------------------------------------

    @property
    def epoch_s(self) -> float:
        """The tracer's t=0 in the ``time.perf_counter`` domain.

        ``perf_counter`` shares one monotonic origin across all processes
        of a machine (Linux: ``CLOCK_MONOTONIC``), so per-worker traces
        stamped with their epoch can be shifted onto one common timeline
        by :func:`repro.obs.export.merge_traces`.
        """
        return self._t0

    @property
    def open_depth(self) -> int:
        """How many spans are currently open (0 when balanced)."""
        return len(self._stack)

    def span_names(self) -> list[str]:
        """Distinct completed-span names, first-seen order."""
        seen: dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.name)
        return list(seen)

    def clear(self) -> None:
        """Drop all recorded spans and instants (open spans survive)."""
        self.spans.clear()
        self.instants.clear()


class _NullContext:
    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class NullTracer:
    """The do-nothing tracer installed while observability is off.

    Every method is a no-op and ``enabled`` is ``False``, so hot-path
    probes can guard with a single truthiness/attribute check and
    library code can call the tracer unconditionally without branching.
    """

    enabled = False
    spans: tuple[SpanRecord, ...] = ()
    instants: tuple[InstantRecord, ...] = ()

    def begin(self, name: str, cat: str = "default", **args: Any) -> None:
        """No-op; returns ``None`` (which is falsy, like the tracer)."""
        return None

    def end(self, handle: object) -> None:
        """No-op; accepts whatever :meth:`begin` returned."""
        return None

    def span(self, name: str, cat: str = "default", **args: Any) -> _NullContext:
        """A shared do-nothing context manager."""
        return _NULL_CONTEXT

    def instant(self, name: str, cat: str = "default", **args: Any) -> None:
        """No-op."""
        return None

    @property
    def epoch_s(self) -> float:
        """Always 0.0 — the null tracer has no timeline."""
        return 0.0

    @property
    def open_depth(self) -> int:
        """Always 0 — nothing ever opens."""
        return 0

    def span_names(self) -> list[str]:
        """Always empty."""
        return []

    def clear(self) -> None:
        """No-op."""
        return None


NULL_TRACER = NullTracer()
"""The shared null tracer; identity-comparable (``tracer is NULL_TRACER``)."""
