"""Counters, gauges, and histograms behind a :class:`MetricsRegistry`.

Metrics are named with dot-separated lowercase components
(``"sim.intervals"``, ``"rl.td_error"``); the Prometheus exporter in
:mod:`repro.obs.export` rewrites the dots to underscores.  A registry's
:meth:`~MetricsRegistry.snapshot` is plain JSON-serialisable data, which
is what travels back from fleet workers and what
:func:`merge_snapshots` folds across a grid.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable, Mapping, Sequence, TypeVar

from repro.errors import ObsError

DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, 1000.0
)
"""Decade buckets — a sane default for both seconds and unit-less errors."""


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative).

        Raises:
            ObsError: On a negative increment.
        """
        if amount < 0:
            raise ObsError(f"counter {self.name!r} cannot decrease: {amount}")
        self.value += amount


class Gauge:
    """A last-value-wins instantaneous measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self.value = float(value)

    def add(self, amount: float) -> None:
        """Shift the gauge by ``amount`` (either sign)."""
        self.value += amount


class Histogram:
    """A cumulative-bucket histogram with count/sum/min/max.

    Args:
        name: Metric name.
        buckets: Ascending upper bounds; an implicit ``+Inf`` bucket
            catches the overflow (Prometheus convention: ``bucket_counts``
            are *non*-cumulative here and cumulated at export time).
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ObsError(
                f"histogram {name!r} buckets must be strictly increasing: {bounds}"
            )
        self.name = name
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


_M = TypeVar("_M", "Counter", "Gauge", "Histogram")


class MetricsRegistry:
    """Get-or-create home for all metrics of one observability session."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type[_M], factory: Callable[[], _M]) -> _M:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, kind):
            raise ObsError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name``, created on first use.

        Raises:
            ObsError: If ``name`` is already a gauge or histogram.
        """
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name``, created on first use.

        Raises:
            ObsError: If ``name`` is already a counter or histogram.
        """
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """The histogram registered under ``name``, created on first use.

        ``buckets`` only applies on creation; later calls return the
        existing instance unchanged.

        Raises:
            ObsError: If ``name`` is already a counter or gauge.
        """
        return self._get(name, Histogram, lambda: Histogram(name, buckets))

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterable[Counter | Gauge | Histogram]:
        return iter(self._metrics.values())

    def names(self) -> list[str]:
        """All registered metric names, sorted."""
        return sorted(self._metrics)

    def snapshot(self) -> dict[str, Any]:
        """All metric values as plain JSON-serialisable data."""
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, Any] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = {
                    "bounds": list(metric.bounds),
                    "bucket_counts": list(metric.bucket_counts),
                    "count": metric.count,
                    "sum": metric.sum,
                    "min": metric.min if metric.count else None,
                    "max": metric.max if metric.count else None,
                }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}


def histogram_quantile(
    histogram: Mapping[str, Any], q: float
) -> float | None:
    """Estimate the ``q``-quantile of a snapshotted histogram.

    Works on the plain-data form :meth:`MetricsRegistry.snapshot`
    produces (``bounds`` / non-cumulative ``bucket_counts`` / ``count`` /
    ``min`` / ``max``), which is what travels in ledger records and fleet
    snapshots.  The estimate interpolates linearly inside the bucket
    containing the target rank (the Prometheus convention); observations
    in the ``+Inf`` overflow bucket resolve to the recorded ``max``.
    When the snapshot carries recorded ``min``/``max`` extremes, the
    estimate is clamped into ``[min, max]`` — a single observation then
    yields that exact value at every ``q`` instead of a bucket-edge
    artefact.

    Returns:
        The estimate, or ``None`` for an empty histogram.

    Raises:
        ObsError: If ``q`` is outside ``[0, 1]``.
    """
    if not 0.0 <= q <= 1.0:
        raise ObsError(f"quantile must be in [0, 1]: {q}")
    count = int(histogram.get("count", 0))
    if count <= 0:
        return None
    bounds = [float(b) for b in histogram["bounds"]]
    bucket_counts = [int(n) for n in histogram["bucket_counts"]]
    lo = histogram.get("min")
    hi = histogram.get("max")

    def _clamp(value: float) -> float:
        if lo is not None:
            value = max(value, float(lo))
        if hi is not None:
            value = min(value, float(hi))
        return value

    rank = q * count
    seen = 0.0
    for i, n in enumerate(bucket_counts):
        if n == 0:
            continue
        if seen + n >= rank:
            if i >= len(bounds):  # +Inf overflow bucket
                return float(hi) if hi is not None else bounds[-1]
            lower = bounds[i - 1] if i > 0 else (
                float(lo) if lo is not None else 0.0
            )
            lower = min(lower, bounds[i])
            fraction = (rank - seen) / n
            return _clamp(lower + fraction * (bounds[i] - lower))
        seen += n
    return float(hi) if hi is not None else bounds[-1]


def merge_snapshots(snapshots: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Fold per-job metric snapshots into one grid-wide snapshot.

    Counters and histograms add up; gauges (last-value semantics have no
    cross-job meaning) are averaged, with the contributing-job count
    published under ``"<name>.jobs"``.

    Raises:
        ObsError: When the same histogram appears with different bucket
            bounds (snapshots from incompatible code versions).
    """
    counters: dict[str, float] = {}
    gauge_sums: dict[str, float] = {}
    gauge_jobs: dict[str, int] = {}
    histograms: dict[str, dict[str, Any]] = {}
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0.0) + value
        for name, value in snap.get("gauges", {}).items():
            gauge_sums[name] = gauge_sums.get(name, 0.0) + value
            gauge_jobs[name] = gauge_jobs.get(name, 0) + 1
        for name, h in snap.get("histograms", {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = {
                    "bounds": list(h["bounds"]),
                    "bucket_counts": list(h["bucket_counts"]),
                    "count": h["count"],
                    "sum": h["sum"],
                    "min": h["min"],
                    "max": h["max"],
                }
                continue
            if merged["bounds"] != list(h["bounds"]):
                raise ObsError(
                    f"histogram {name!r} bucket bounds differ across jobs"
                )
            merged["bucket_counts"] = [
                a + b for a, b in zip(merged["bucket_counts"], h["bucket_counts"])
            ]
            merged["count"] += h["count"]
            merged["sum"] += h["sum"]
            for key, pick in (("min", min), ("max", max)):
                if h[key] is not None:
                    merged[key] = (
                        h[key] if merged[key] is None else pick(merged[key], h[key])
                    )
    gauges = {
        name: gauge_sums[name] / gauge_jobs[name] for name in gauge_sums
    }
    for name, jobs in sorted(gauge_jobs.items()):
        gauges[f"{name}.jobs"] = float(jobs)
    return {"counters": counters, "gauges": gauges, "histograms": histograms}
