"""The structured operational log: one JSONL record per request/job.

Traces answer "where did the time in *this* request go"; the ops log
answers "what has the service been doing" — one self-describing JSON
object per served (or rejected) request and per fleet job, carrying the
correlation ids, the outcome, and the two latencies that matter for the
SLOs (service latency and queue wait).

:class:`OpsLogger` is the **only** code allowed to append to an ops
log; lint rule RPL801 enforces that, exactly as RPL501/RPL601 do for
the perf ledger and the run cache.  Everything else in this module is
read-side: :func:`read_ops_log`, :func:`tail_ops_log`, and
:func:`summarize_ops` back ``repro ops tail|summary``, and the SLO
runtime (:mod:`repro.obs.runtime`) evaluates the same records.

Record schema (see ``docs/observability.md``):

======================  ====================================================
field                   meaning
======================  ====================================================
``ts``                  Wall-clock unix seconds when the record was logged.
``kind``                ``decision`` / ``simulation`` / ``health`` /
                        ``stats`` / ``job`` / ``drift``.
``trace_id``            End-to-end correlation id (may be ``""`` when
                        correlation was inactive).
``request_id``          Client correlation id (``""`` for fleet jobs).
``outcome``             ``ok``, ``cached``, ``rejected:<reason>``, or
                        ``failed:<error-type>``.
``latency_s``           Submit-to-reply service latency (job wall time for
                        fleet jobs).
``queue_wait_s``        Seconds spent in the bounded queue before a worker
                        picked the request up.
======================  ====================================================

Extra keys (``session``, ``cluster``, ``job_id``, ``detail``, ...) are
allowed and preserved; the required seven always exist.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

from repro.errors import ObsError

if TYPE_CHECKING:
    from repro.fleet.events import FleetEvent

#: Every ops record carries at least these keys.
OPS_RECORD_FIELDS = (
    "ts", "kind", "trace_id", "request_id", "outcome",
    "latency_s", "queue_wait_s",
)

#: The record kinds the readers/SLO runtime understand.  ``drift``
#: records come from the serve-side policy drift monitor
#: (:mod:`repro.serve.drift`): one per shadow-scored decision, with
#: ``outcome`` ``"ok"`` (agreement) or ``"failed:drift"`` — so a drift
#: SLO is just an availability SLO with ``kind="drift"``.
OPS_KINDS = ("decision", "simulation", "health", "stats", "job", "drift")


def ops_record(
    kind: str,
    outcome: str,
    latency_s: float,
    queue_wait_s: float = 0.0,
    trace_id: str = "",
    request_id: str = "",
    ts: float | None = None,
    **extra: Any,
) -> dict[str, Any]:
    """A schema-complete ops record (not yet written anywhere).

    Raises:
        ObsError: On an unknown ``kind``, an empty ``outcome``, or a
            negative latency/queue wait.
    """
    if kind not in OPS_KINDS:
        raise ObsError(
            f"unknown ops record kind {kind!r}; expected one of {OPS_KINDS}"
        )
    if not outcome:
        raise ObsError("an ops record needs a non-empty outcome")
    if latency_s < 0 or queue_wait_s < 0:
        raise ObsError(
            f"ops record latencies cannot be negative: "
            f"latency_s={latency_s}, queue_wait_s={queue_wait_s}"
        )
    record: dict[str, Any] = {
        "ts": time.time() if ts is None else float(ts),
        "kind": kind,
        "trace_id": trace_id,
        "request_id": request_id,
        "outcome": outcome,
        "latency_s": float(latency_s),
        "queue_wait_s": float(queue_wait_s),
    }
    record.update(extra)
    return record


class OpsLogger:
    """Append-only JSONL writer — the sole blessed ops-log producer.

    One logger owns one file; every :meth:`log` call validates the
    record against the schema and appends one line, so a crash can lose
    at most the line being written and the log stays greppable while
    the service runs.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.written = 0

    def log(self, record: Mapping[str, Any]) -> dict[str, Any]:
        """Validate and append one record; returns the stored form.

        Raises:
            ObsError: When required fields are missing or the record is
                not JSON-serialisable.
        """
        missing = [f for f in OPS_RECORD_FIELDS if f not in record]
        if missing:
            raise ObsError(f"ops record missing fields {missing}")
        stored = dict(record)
        try:
            line = json.dumps(stored, sort_keys=True)
        except (TypeError, ValueError) as exc:
            raise ObsError(f"ops record is not JSON-serialisable: {exc}") from exc
        with self.path.open("a") as fh:
            fh.write(line + "\n")
        self.written += 1
        return stored


def job_record_from_event(event: "FleetEvent") -> dict[str, Any] | None:
    """The ops record for one fleet completion event, or ``None``.

    Only terminal job transitions produce records — ``JobDone``,
    ``JobCached``, and *final* ``JobFailed`` — so a retried job logs
    once, with its last outcome.
    """
    # Deliberate upward reach: this adapter exists precisely to translate
    # fleet events into ops records, and the deferred import keeps obs
    # importable (and zero-cost) without the fleet machinery loaded.
    from repro.fleet.events import JobCached, JobDone, JobFailed  # noqa: RPL901

    if isinstance(event, JobDone):
        return ops_record(
            kind="job", outcome="ok", latency_s=event.wall_s,
            trace_id=event.trace_id, job_id=event.job_id,
        )
    if isinstance(event, JobCached):
        return ops_record(
            kind="job", outcome="cached", latency_s=event.wall_s,
            trace_id=event.trace_id, job_id=event.job_id,
        )
    if isinstance(event, JobFailed) and event.final:
        return ops_record(
            kind="job", outcome=f"failed:{event.error.split(':', 1)[0]}",
            latency_s=0.0, trace_id=event.trace_id, job_id=event.job_id,
            detail=event.error,
        )
    return None


# -- read side -------------------------------------------------------------


def read_ops_log(path: str | Path) -> list[dict[str, Any]]:
    """All records of one ops log, in file order.

    Raises:
        ObsError: On an unreadable file, a non-JSON line, or a record
            missing required fields.
    """
    source = Path(path)
    try:
        text = source.read_text()
    except OSError as exc:
        raise ObsError(f"cannot read ops log {source}: {exc}") from exc
    records: list[dict[str, Any]] = []
    for n, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObsError(f"{source}:{n} is not JSON: {exc}") from exc
        if not isinstance(record, dict):
            raise ObsError(f"{source}:{n} is not a JSON object")
        missing = [f for f in OPS_RECORD_FIELDS if f not in record]
        if missing:
            raise ObsError(f"{source}:{n} missing fields {missing}")
        records.append(record)
    return records


def tail_ops_log(path: str | Path, n: int = 10) -> list[dict[str, Any]]:
    """The last ``n`` records of an ops log (fewer when the log is short)."""
    if n < 1:
        raise ObsError(f"tail needs a positive count: {n}")
    return read_ops_log(path)[-n:]


def _quantile(ordered: list[float], q: float) -> float:
    """Linear-interpolation quantile of an already-sorted sample."""
    if not 0.0 <= q <= 1.0:
        raise ObsError(f"quantile must be in [0, 1]: {q}")
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] + (ordered[hi] - ordered[lo]) * frac


def _latency_stats(values: list[float]) -> dict[str, float] | None:
    if not values:
        return None
    ordered = sorted(values)
    return {
        "p50": _quantile(ordered, 0.50),
        "p99": _quantile(ordered, 0.99),
        "max": ordered[-1],
    }


def summarize_ops(records: list[dict[str, Any]]) -> dict[str, Any]:
    """Roll a record list up into the ``repro ops summary`` payload.

    Pure and deterministic in the records: counts per kind and outcome
    family, latency/queue-wait quantiles over the served requests, the
    rejection rate, and the distinct trace-id count.
    """
    by_kind: dict[str, int] = {}
    by_outcome: dict[str, int] = {}
    latencies: list[float] = []
    waits: list[float] = []
    trace_ids: set[str] = set()
    rejected = 0
    for record in records:
        kind = str(record.get("kind", ""))
        outcome = str(record.get("outcome", ""))
        by_kind[kind] = by_kind.get(kind, 0) + 1
        family = outcome.split(":", 1)[0]
        by_outcome[family] = by_outcome.get(family, 0) + 1
        if family == "rejected":
            rejected += 1
        if outcome == "ok" and kind in ("decision", "simulation", "job"):
            latencies.append(float(record.get("latency_s", 0.0)))
            waits.append(float(record.get("queue_wait_s", 0.0)))
        if record.get("trace_id"):
            trace_ids.add(str(record["trace_id"]))
    timestamps = [float(r.get("ts", 0.0)) for r in records]
    return {
        "total": len(records),
        "by_kind": dict(sorted(by_kind.items())),
        "by_outcome": dict(sorted(by_outcome.items())),
        "rejection_rate": rejected / len(records) if records else 0.0,
        "latency_s": _latency_stats(latencies),
        "queue_wait_s": _latency_stats(waits),
        "distinct_trace_ids": len(trace_ids),
        "span_s": (max(timestamps) - min(timestamps)) if timestamps else 0.0,
    }


def format_ops_summary(summary: Mapping[str, Any]) -> str:
    """The human-readable rendering of :func:`summarize_ops`."""
    lines = [f"{summary['total']} record(s) over {summary['span_s']:.1f} s"]
    kinds = ", ".join(
        f"{kind}={count}" for kind, count in summary["by_kind"].items()
    )
    outcomes = ", ".join(
        f"{outcome}={count}" for outcome, count in summary["by_outcome"].items()
    )
    lines.append(f"kinds:    {kinds or '-'}")
    lines.append(f"outcomes: {outcomes or '-'}")
    lines.append(f"rejection rate: {summary['rejection_rate']:.2%}")
    for label, key in (("latency", "latency_s"), ("queue wait", "queue_wait_s")):
        stats = summary.get(key)
        if stats:
            lines.append(
                f"{label}: p50 {stats['p50'] * 1e3:.3f} ms, "
                f"p99 {stats['p99'] * 1e3:.3f} ms, "
                f"max {stats['max'] * 1e3:.3f} ms"
            )
    lines.append(f"distinct trace ids: {summary['distinct_trace_ids']}")
    return "\n".join(lines)
