"""Runtime health: sliding windows, indicators, and SLO gating.

Three layers, each consuming the one below:

* :class:`SlidingWindow` rolls :meth:`MetricsRegistry.snapshot
  <repro.obs.metrics.MetricsRegistry.snapshot>` dicts into a bounded
  time window and differences the monotonic parts (counters, histogram
  buckets), so a long-running server can answer "what happened in the
  last 60 seconds" without ever resetting its metrics.
* :func:`health_indicators` reduces a window to the numbers an
  out-of-band ``health`` request reports: p50/p99 decision latency,
  request and rejection rates, and the window span actually covered.
* The SLO machinery — :class:`SloSpec` definitions, :func:`evaluate_slos`
  over ops-log records (:mod:`repro.obs.opslog`), and a
  text/json/github-rendered :func:`slo_gate` mirroring
  :func:`repro.perf.regress.gate` — turns "is the service healthy"
  into a deterministic exit code for CI.

Evaluation is error-budget based: an objective of ``0.999`` leaves a
``0.001`` budget of bad requests, and the *burn rate* is the fraction
of bad requests divided by that budget.  A burn rate above 1.0 means
the window, extrapolated, exhausts the budget — that SLO fails.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro.errors import ObsError
from repro.obs.metrics import histogram_quantile
from repro.obs.opslog import OPS_KINDS, read_ops_log

# -- sliding window over metric snapshots ---------------------------------


class SlidingWindow:
    """A bounded deque of ``(at_s, snapshot)`` pairs with delta views.

    Counters and histogram buckets are monotonic, so the difference
    between the newest and oldest snapshot in the window *is* the
    activity inside the window; gauges keep last-value semantics.

    Args:
        window_s: Maximum age (relative to the newest observation) a
            snapshot may reach before being evicted.
        max_samples: Hard cap on retained snapshots, so a hot polling
            loop cannot grow memory without bound.
    """

    def __init__(self, window_s: float = 60.0, max_samples: int = 256) -> None:
        if window_s <= 0:
            raise ObsError(f"window_s must be positive: {window_s}")
        if max_samples < 2:
            raise ObsError(f"a window needs at least 2 samples: {max_samples}")
        self.window_s = window_s
        self._samples: deque[tuple[float, dict[str, Any]]] = deque(
            maxlen=max_samples
        )

    def __len__(self) -> int:
        return len(self._samples)

    def observe(self, snapshot: Mapping[str, Any], at_s: float) -> None:
        """Add one snapshot taken at monotonic time ``at_s``."""
        if self._samples and at_s < self._samples[-1][0]:
            raise ObsError(
                f"window observations must not go backwards: "
                f"{at_s} < {self._samples[-1][0]}"
            )
        self._samples.append((float(at_s), dict(snapshot)))
        horizon = at_s - self.window_s
        while len(self._samples) > 2 and self._samples[0][0] < horizon:
            self._samples.popleft()

    def span_s(self) -> float:
        """Seconds between the oldest and newest retained snapshot."""
        if len(self._samples) < 2:
            return 0.0
        return self._samples[-1][0] - self._samples[0][0]

    def delta(self) -> dict[str, Any]:
        """A snapshot-shaped dict of in-window activity.

        Counters and histogram ``bucket_counts``/``count``/``sum`` are
        newest-minus-oldest (a metric absent from the oldest snapshot
        counts from zero); gauges pass through from the newest.  The
        per-window histogram ``min``/``max`` are approximated by the
        newest snapshot's lifetime extremes — bucket differencing cannot
        recover exact in-window extremes, and the quantile estimates the
        health layer needs only use them to clamp interpolation.
        """
        if not self._samples:
            return {"counters": {}, "gauges": {}, "histograms": {}}
        newest = self._samples[-1][1]
        if len(self._samples) == 1:
            return {
                "counters": dict(newest.get("counters", {})),
                "gauges": dict(newest.get("gauges", {})),
                "histograms": {
                    name: dict(h)
                    for name, h in newest.get("histograms", {}).items()
                },
            }
        oldest = self._samples[0][1]
        counters = {
            name: value - oldest.get("counters", {}).get(name, 0.0)
            for name, value in newest.get("counters", {}).items()
        }
        histograms: dict[str, dict[str, Any]] = {}
        old_hists = oldest.get("histograms", {})
        for name, h in newest.get("histograms", {}).items():
            old = old_hists.get(name)
            if old is not None and list(old["bounds"]) != list(h["bounds"]):
                raise ObsError(
                    f"histogram {name!r} bucket bounds changed inside "
                    "the window"
                )
            old_counts = (
                old["bucket_counts"] if old else [0] * len(h["bucket_counts"])
            )
            histograms[name] = {
                "bounds": list(h["bounds"]),
                "bucket_counts": [
                    n - o for n, o in zip(h["bucket_counts"], old_counts)
                ],
                "count": h["count"] - (old["count"] if old else 0),
                "sum": h["sum"] - (old["sum"] if old else 0.0),
                "min": h["min"],
                "max": h["max"],
            }
        return {
            "counters": counters,
            "gauges": dict(newest.get("gauges", {})),
            "histograms": histograms,
        }

    def quantile(self, name: str, q: float) -> float | None:
        """In-window ``q``-quantile of histogram ``name`` (or ``None``)."""
        histogram = self.delta()["histograms"].get(name)
        if histogram is None or histogram["count"] <= 0:
            return None
        return histogram_quantile(histogram, q)

    def rate(self, prefix: str) -> float:
        """In-window per-second rate summed over counters named
        ``prefix`` or ``prefix.*``."""
        span = self.span_s()
        if span <= 0:
            return 0.0
        dotted = prefix + "."
        total = sum(
            value
            for name, value in self.delta()["counters"].items()
            if name == prefix or name.startswith(dotted)
        )
        return total / span


def health_indicators(window: SlidingWindow) -> dict[str, float | None]:
    """The indicator block of a ``health`` reply, from one window."""
    return {
        "decision_latency_p50_s": window.quantile("serve.decision_latency_s", 0.50),
        "decision_latency_p99_s": window.quantile("serve.decision_latency_s", 0.99),
        "request_rate_per_s": window.rate("serve.requests"),
        "rejection_rate_per_s": window.rate("serve.rejected"),
        "window_s": window.span_s(),
    }


# -- declarative SLOs over ops-log records --------------------------------


@dataclass(frozen=True)
class SloSpec:
    """One service-level objective over ops-log records.

    Attributes:
        name: Human-facing label (unique within a config).
        kind: Which record kind the SLO scopes to (``decision``,
            ``simulation``, ``job``, ...), or ``"any"``.
        objective: Target good-request fraction in ``(0, 1)``; the
            error budget is ``1 - objective``.
        max_latency_s: When set, a record is only *good* if its
            ``latency_s`` stays at or under this bound (a latency SLO
            on top of the availability one).
    """

    name: str
    kind: str = "decision"
    objective: float = 0.999
    max_latency_s: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ObsError("an SLO needs a non-empty name")
        if self.kind != "any" and self.kind not in OPS_KINDS:
            raise ObsError(
                f"SLO {self.name!r}: unknown kind {self.kind!r}; "
                f"expected 'any' or one of {OPS_KINDS}"
            )
        if not 0.0 < self.objective < 1.0:
            raise ObsError(
                f"SLO {self.name!r}: objective must be in (0, 1): "
                f"{self.objective}"
            )
        if self.max_latency_s is not None and self.max_latency_s <= 0:
            raise ObsError(
                f"SLO {self.name!r}: max_latency_s must be positive: "
                f"{self.max_latency_s}"
            )

    def is_good(self, record: Mapping[str, Any]) -> bool:
        """Whether one (in-scope) record counts against the budget."""
        outcome = str(record.get("outcome", ""))
        if outcome not in ("ok", "cached"):
            return False
        if self.max_latency_s is not None:
            return float(record.get("latency_s", 0.0)) <= self.max_latency_s
        return True

    def applies_to(self, record: Mapping[str, Any]) -> bool:
        """Whether a record is in this SLO's scope at all."""
        return self.kind == "any" or record.get("kind") == self.kind


#: What ``repro slo gate`` checks when no config file is given: served
#: decisions nearly always succeed, and when they do they stay under the
#: paper-scale latency bound bench_s1 enforces on p99.
DEFAULT_SLOS = (
    SloSpec(name="decision-availability", kind="decision", objective=0.99),
    SloSpec(
        name="decision-latency",
        kind="decision",
        objective=0.95,
        max_latency_s=0.05,
    ),
)


def slos_from_mapping(data: Mapping[str, Any]) -> tuple[SloSpec, ...]:
    """Parse the ``{"slos": [...]}`` config mapping.

    Raises:
        ObsError: On a malformed shape, unknown keys, duplicate names,
            or an invalid spec.
    """
    known = {"name", "kind", "objective", "max_latency_s"}
    unknown_top = set(data) - {"slos"}
    if unknown_top:
        raise ObsError(
            f"unknown SLO config keys {sorted(unknown_top)}; expected 'slos'"
        )
    entries = data.get("slos")
    if not isinstance(entries, list) or not entries:
        raise ObsError("SLO config needs a non-empty 'slos' list")
    specs: list[SloSpec] = []
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ObsError(f"slos[{i}] is not a JSON object")
        unknown = set(entry) - known
        if unknown:
            raise ObsError(
                f"slos[{i}]: unknown keys {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        if "name" not in entry:
            raise ObsError(f"slos[{i}] is missing 'name'")
        specs.append(SloSpec(**entry))
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ObsError(f"duplicate SLO names: {dupes}")
    return tuple(specs)


def load_slo_config(path: str | Path) -> tuple[SloSpec, ...]:
    """Load and validate a JSON SLO config file."""
    source = Path(path)
    try:
        data = json.loads(source.read_text())
    except OSError as exc:
        raise ObsError(f"cannot read SLO config {source}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ObsError(f"{source} is not JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ObsError(f"{source} must hold a JSON object")
    return slos_from_mapping(data)


@dataclass(frozen=True)
class SloVerdict:
    """How one SLO fared over one record set.

    Attributes:
        spec: The objective evaluated.
        total: In-scope record count.
        bad: Records that missed (wrong outcome or over the latency
            bound).
        burn_rate: ``bad_fraction / error_budget``; 1.0 means the
            budget is being consumed exactly as fast as it accrues.
        status: ``"ok"`` / ``"fail"`` / ``"no-data"``.
    """

    spec: SloSpec
    total: int
    bad: int
    burn_rate: float
    status: str

    @property
    def good_fraction(self) -> float:
        return 1.0 - (self.bad / self.total) if self.total else 1.0


@dataclass(frozen=True)
class SloReport:
    """All verdicts of one evaluation pass."""

    verdicts: tuple[SloVerdict, ...]

    @property
    def failures(self) -> tuple[SloVerdict, ...]:
        return tuple(v for v in self.verdicts if v.status == "fail")

    @property
    def ok(self) -> bool:
        return not self.failures


def evaluate_slos(
    records: Sequence[Mapping[str, Any]],
    slos: Sequence[SloSpec] = DEFAULT_SLOS,
) -> SloReport:
    """Evaluate every SLO over an ops-record list (deterministic).

    An SLO with no in-scope records reports ``"no-data"`` and passes —
    an idle service has burned no budget, and CI fixtures stay
    insensitive to which kinds they happen to include.
    """
    if not slos:
        raise ObsError("nothing to evaluate: empty SLO list")
    verdicts: list[SloVerdict] = []
    for spec in slos:
        scoped = [r for r in records if spec.applies_to(r)]
        bad = sum(1 for r in scoped if not spec.is_good(r))
        if not scoped:
            verdicts.append(
                SloVerdict(spec=spec, total=0, bad=0, burn_rate=0.0,
                           status="no-data")
            )
            continue
        budget = 1.0 - spec.objective
        burn_rate = (bad / len(scoped)) / budget
        verdicts.append(
            SloVerdict(
                spec=spec,
                total=len(scoped),
                bad=bad,
                burn_rate=burn_rate,
                status="fail" if burn_rate > 1.0 else "ok",
            )
        )
    return SloReport(verdicts=tuple(verdicts))


# -- rendering + gate (mirrors repro.perf.regress) ------------------------


def render_slo_text(report: SloReport) -> str:
    """Human-readable SLO report, one line per objective."""
    lines: list[str] = []
    for v in report.verdicts:
        bound = (
            f", <={v.spec.max_latency_s:g}s"
            if v.spec.max_latency_s is not None
            else ""
        )
        lines.append(
            f"{v.status.upper():>7}  {v.spec.name} "
            f"({v.spec.kind}, obj {v.spec.objective:g}{bound}): "
            f"{v.total - v.bad}/{v.total} good, "
            f"burn rate {v.burn_rate:.2f}"
        )
    failed = len(report.failures)
    lines.append("")
    lines.append(
        f"{len(report.verdicts)} SLO(s): {failed} failing, "
        f"{len(report.verdicts) - failed} passing"
    )
    return "\n".join(lines)


def render_slo_json(report: SloReport) -> str:
    """Machine-readable SLO report (stable key order)."""
    payload = {
        "ok": report.ok,
        "verdicts": [
            {
                "name": v.spec.name,
                "kind": v.spec.kind,
                "objective": v.spec.objective,
                "max_latency_s": v.spec.max_latency_s,
                "total": v.total,
                "bad": v.bad,
                "good_fraction": v.good_fraction,
                "burn_rate": v.burn_rate,
                "status": v.status,
            }
            for v in report.verdicts
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_slo_github(report: SloReport) -> str:
    """GitHub Actions annotations — one ``::error`` per failing SLO."""
    lines: list[str] = []
    for v in report.failures:
        lines.append(
            f"::error title=SLO violation::{v.spec.name} burn rate "
            f"{v.burn_rate:.2f} ({v.bad}/{v.total} bad, "
            f"objective {v.spec.objective:g})"
        )
    for v in report.verdicts:
        if v.status == "no-data":
            lines.append(
                f"::warning title=SLO no-data::{v.spec.name} matched "
                "no records"
            )
    if not lines:
        lines.append("::notice title=slo gate::all SLOs within budget")
    return "\n".join(lines)


SLO_RENDERERS: dict[str, Callable[[SloReport], str]] = {
    "text": render_slo_text,
    "json": render_slo_json,
    "github": render_slo_github,
}


@dataclass(frozen=True)
class SloGateResult:
    """What ``repro slo gate`` decided."""

    report: SloReport
    exit_code: int
    warn_only: bool = field(default=False)


def slo_gate(report: SloReport, warn_only: bool = False) -> SloGateResult:
    """Turn an SLO report into an exit code (0 pass, 1 violated).

    ``warn_only`` reports violations but forces exit 0 — the CI
    bring-up mode, same as ``repro perf gate --warn-only``.
    """
    failed = not report.ok and not warn_only
    return SloGateResult(
        report=report, exit_code=1 if failed else 0, warn_only=warn_only
    )


def gate_ops_log(
    path: str | Path,
    slos: Sequence[SloSpec] = DEFAULT_SLOS,
    warn_only: bool = False,
) -> SloGateResult:
    """One-call form: read an ops log, evaluate, gate."""
    return slo_gate(evaluate_slos(read_ops_log(path), slos), warn_only)
