"""Per-phase wall-clock breakdown of a traced run.

Aggregates the engine's ``engine.phase.*`` spans (or any name prefix)
into per-phase statistics — the "where does simulation time go" table
behind ``repro profile`` and the CI timing baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.obs.trace import SpanRecord


@dataclass(frozen=True)
class PhaseStat:
    """Aggregate timing of one span name.

    Attributes:
        name: Span name.
        count: Completed spans.
        total_us / mean_us / min_us / max_us: Duration statistics.
    """

    name: str
    count: int
    total_us: float
    mean_us: float
    min_us: float
    max_us: float


def phase_breakdown(
    spans: Iterable[SpanRecord], prefix: str = "engine.phase."
) -> list[PhaseStat]:
    """Per-name timing statistics of spans matching ``prefix``.

    An empty prefix aggregates every span.  Results are sorted by total
    time, descending, so the hottest phase leads.
    """
    totals: dict[str, list[float]] = {}
    for s in spans:
        if s.name.startswith(prefix):
            totals.setdefault(s.name, []).append(s.dur_us)
    stats = [
        PhaseStat(
            name=name,
            count=len(durs),
            total_us=sum(durs),
            mean_us=sum(durs) / len(durs),
            min_us=min(durs),
            max_us=max(durs),
        )
        for name, durs in totals.items()
    ]
    stats.sort(key=lambda p: -p.total_us)
    return stats


def format_breakdown(
    stats: Iterable[PhaseStat], title: str = "per-phase time breakdown"
) -> str:
    """Render phase statistics as an aligned text table."""
    stats = list(stats)
    if not stats:
        return f"{title}\n  (no spans recorded)"
    grand = sum(p.total_us for p in stats) or math.inf
    header = (
        f"{'phase':<28s} {'count':>7s} {'total [ms]':>11s} "
        f"{'mean [us]':>10s} {'max [us]':>10s} {'share':>7s}"
    )
    lines = [title, header, "-" * len(header)]
    for p in stats:
        lines.append(
            f"{p.name:<28s} {p.count:>7d} {p.total_us / 1e3:>11.3f} "
            f"{p.mean_us:>10.2f} {p.max_us:>10.2f} {p.total_us / grand:>6.1%}"
        )
    return "\n".join(lines)
