"""Request correlation: :class:`TraceContext` and its propagation.

A served decision crosses several hands before a reply comes back —
protocol envelope, bounded queue, worker task, decision session (or an
executor thread running a whole simulation job), engine — and the fleet
adds process boundaries on top.  :class:`TraceContext` is the one piece
of identity that survives the whole path: a ``trace_id`` naming the
request's journey plus the client's ``request_id``.

Propagation has exactly two mechanisms, and the rules are strict:

* **Implicit, within a thread of control** — a :mod:`contextvars`
  variable.  :func:`bind` installs a context for a scope; probe sites
  downstream call :func:`current_context` / :func:`trace_args` to tag
  their spans and instants without any parameter threading.  Being a
  contextvar, the binding follows asyncio tasks automatically.
* **Explicit, across every serialization boundary** — contextvars do
  not cross JSON envelopes, executor threads, or process pools, so the
  serve protocol carries ``trace_id`` fields, and
  :class:`~repro.fleet.spec.JobSpec` carries a ``trace_context``
  attribute (re-bound by the worker via
  :meth:`TraceContext.to_mapping` / :meth:`TraceContext.from_mapping`).

The zero-overhead contract holds: nothing here runs unless a caller
binds a context, and every probe that *reads* the context sits behind
the usual ``OBS.enabled`` / ``if tracer`` guards.
"""

from __future__ import annotations

import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

from repro.errors import ObsError


@dataclass(frozen=True)
class TraceContext:
    """The correlation identity of one request (or delegated job).

    Attributes:
        trace_id: Names the end-to-end journey; generated once (by the
            first hop that cares) and copied verbatim ever after.
        request_id: The client's own correlation id, carried alongside
            so server-side records can be joined back to client logs.
    """

    trace_id: str
    request_id: str = ""

    def __post_init__(self) -> None:
        if not self.trace_id:
            raise ObsError("a trace context needs a non-empty trace_id")

    def to_mapping(self) -> dict[str, str]:
        """The explicit-serialization form (a plain JSON-able dict)."""
        return {"trace_id": self.trace_id, "request_id": self.request_id}

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "TraceContext":
        """Rebuild a context shipped through :meth:`to_mapping`.

        Raises:
            ObsError: On unknown keys or a missing/empty ``trace_id``.
        """
        unknown = set(data) - {"trace_id", "request_id"}
        if unknown:
            raise ObsError(
                f"unknown trace context keys {sorted(unknown)}; "
                "known: ['request_id', 'trace_id']"
            )
        return cls(
            trace_id=str(data.get("trace_id", "")),
            request_id=str(data.get("request_id", "")),
        )


_CURRENT: ContextVar[TraceContext | None] = ContextVar(
    "repro_trace_context", default=None
)


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (random, not derived from time)."""
    return uuid.uuid4().hex[:16]


def current_context() -> TraceContext | None:
    """The context bound in this thread of control, if any."""
    return _CURRENT.get()


@contextmanager
def bind(ctx: TraceContext | None) -> Iterator[TraceContext | None]:
    """Install ``ctx`` for the scope of the ``with`` block.

    ``bind(None)`` is a no-op passthrough, so call sites can bind
    unconditionally without paying for a contextvar set/reset on the
    uncorrelated path.
    """
    if ctx is None:
        yield None
        return
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)


def trace_args(ctx: TraceContext | None = None) -> dict[str, str]:
    """Span/instant ``args`` tagging the given (or current) context.

    Returns an empty dict when no context is bound, so probe sites can
    splat it unconditionally::

        tracer.begin("engine.run", cat="engine", **trace_args())

    Callers must still sit behind an ``if tracer:`` guard — the lookup
    is cheap, but the disabled path pays nothing at all.
    """
    if ctx is None:
        ctx = _CURRENT.get()
    if ctx is None:
        return {}
    args = {"trace_id": ctx.trace_id}
    if ctx.request_id:
        args["request_id"] = ctx.request_id
    return args
