"""Exporters: Chrome ``trace_event`` JSON, JSONL, Prometheus text.

Three formats for three audiences:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` "JSON Object Format" (``{"traceEvents": [...]}``),
  loadable in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
  Spans become complete (``"ph": "X"``) events, instants become
  ``"ph": "i"`` events, and counter metrics become ``"ph": "C"`` events.
* :func:`write_jsonl` / :func:`read_jsonl` — one self-describing JSON
  object per line (``kind`` = ``span`` / ``instant`` / ``metrics``);
  lossless for spans, so a dump reloads to the identical span tree.
* :func:`prometheus_text` — a flat ``name value`` text snapshot in the
  Prometheus exposition format (dots rewritten to underscores).
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.errors import ObsError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import InstantRecord, SpanRecord, Tracer

# -- Chrome trace_event ---------------------------------------------------

_REQUIRED_EVENT_KEYS = {"ph", "name", "ts", "pid", "tid"}


def chrome_trace(
    tracer: Tracer,
    metrics: MetricsRegistry | Mapping[str, Any] | None = None,
    process_name: str = "repro",
) -> dict[str, Any]:
    """The tracer's records as a Chrome ``trace_event`` JSON object.

    Args:
        tracer: A :class:`~repro.obs.trace.Tracer` (or anything with
            ``spans`` / ``instants`` lists).
        metrics: Optional registry or snapshot; counters and gauges are
            appended as ``"C"`` (counter-track) events so Perfetto plots
            them alongside the spans.
        process_name: The ``process_name`` metadata label.
    """
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "ts": 0,
            "args": {"name": process_name},
        }
    ]
    last_us = 0.0
    for s in tracer.spans:
        events.append(
            {
                "ph": "X",
                "name": s.name,
                "cat": s.cat,
                "ts": s.start_us,
                "dur": s.dur_us,
                "pid": 0,
                "tid": 0,
                "args": dict(s.args),
            }
        )
        last_us = max(last_us, s.start_us + s.dur_us)
    for i in tracer.instants:
        events.append(
            {
                "ph": "i",
                "s": "t",
                "name": i.name,
                "cat": i.cat,
                "ts": i.ts_us,
                "pid": 0,
                "tid": 0,
                "args": dict(i.args),
            }
        )
        last_us = max(last_us, i.ts_us)
    if metrics is not None:
        snap = metrics.snapshot() if isinstance(metrics, MetricsRegistry) else metrics
        for section in ("counters", "gauges"):
            for name, value in sorted(snap.get(section, {}).items()):
                events.append(
                    {
                        "ph": "C",
                        "name": name,
                        "cat": "metrics",
                        "ts": last_us,
                        "pid": 0,
                        "tid": 0,
                        "args": {"value": value},
                    }
                )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(data: Mapping[str, Any]) -> None:
    """Check a parsed trace against the ``trace_event`` schema essentials.

    Raises:
        ObsError: On a missing ``traceEvents`` list, a non-mapping
            event, missing required keys, or non-numeric ``ts``/``dur``.
    """
    events = data.get("traceEvents")
    if not isinstance(events, list):
        raise ObsError("chrome trace must carry a 'traceEvents' list")
    for k, event in enumerate(events):
        if not isinstance(event, Mapping):
            raise ObsError(f"traceEvents[{k}] is not an object")
        missing = _REQUIRED_EVENT_KEYS - set(event)
        if missing:
            raise ObsError(
                f"traceEvents[{k}] ({event.get('name')!r}) missing {sorted(missing)}"
            )
        for key in ("ts", "dur"):
            value = event.get(key, 0)
            if not isinstance(value, (int, float)) or not math.isfinite(value):
                raise ObsError(
                    f"traceEvents[{k}].{key} must be finite, got {value!r}"
                )
        if event["ph"] == "X" and "dur" not in event:
            raise ObsError(f"traceEvents[{k}] complete event without 'dur'")


def write_chrome_trace(
    path: str | Path,
    tracer: Tracer,
    metrics: MetricsRegistry | Mapping[str, Any] | None = None,
) -> Path:
    """Serialise :func:`chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(tracer, metrics)) + "\n")
    return path


def load_chrome_trace(path: str | Path) -> dict[str, Any]:
    """Parse and validate a trace written by :func:`write_chrome_trace`.

    Raises:
        ObsError: If the file is not valid ``trace_event`` JSON.
    """
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ObsError(f"{path} is not JSON: {exc}") from exc
    validate_chrome_trace(data)
    return data


# -- JSONL ----------------------------------------------------------------


def write_jsonl(
    path: str | Path,
    tracer: Tracer,
    metrics: MetricsRegistry | Mapping[str, Any] | None = None,
) -> Path:
    """Dump spans, instants, and an optional metrics snapshot as JSONL."""
    path = Path(path)
    with path.open("w") as fh:
        for s in tracer.spans:
            fh.write(json.dumps({
                "kind": "span",
                "uid": s.uid,
                "parent_uid": s.parent_uid,
                "name": s.name,
                "cat": s.cat,
                "start_us": s.start_us,
                "dur_us": s.dur_us,
                "depth": s.depth,
                "args": s.args,
            }) + "\n")
        for i in tracer.instants:
            fh.write(json.dumps({
                "kind": "instant",
                "uid": i.uid,
                "name": i.name,
                "cat": i.cat,
                "ts_us": i.ts_us,
                "args": i.args,
            }) + "\n")
        if metrics is not None:
            snap = (
                metrics.snapshot()
                if isinstance(metrics, MetricsRegistry)
                else metrics
            )
            fh.write(json.dumps({"kind": "metrics", "snapshot": snap}) + "\n")
    return path


def read_jsonl(
    path: str | Path,
) -> tuple[list[SpanRecord], list[InstantRecord], dict[str, Any] | None]:
    """Reload a :func:`write_jsonl` dump.

    Returns:
        ``(spans, instants, metrics_snapshot)`` — the spans and instants
        as the same record types the tracer produced (so the span tree
        round-trips exactly); the snapshot is ``None`` when absent.

    Raises:
        ObsError: On malformed lines or unknown record kinds.
    """
    spans: list[SpanRecord] = []
    instants: list[InstantRecord] = []
    snapshot: dict[str, Any] | None = None
    for n, line in enumerate(Path(path).read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObsError(f"{path}:{n} is not JSON: {exc}") from exc
        kind = record.pop("kind", None)
        try:
            if kind == "span":
                spans.append(SpanRecord(**record))
            elif kind == "instant":
                instants.append(InstantRecord(**record))
            elif kind == "metrics":
                snapshot = record["snapshot"]
            else:
                raise ObsError(f"{path}:{n} has unknown kind {kind!r}")
        except TypeError as exc:
            raise ObsError(f"{path}:{n} malformed {kind} record: {exc}") from exc
    return spans, instants, snapshot


def span_tree(spans: Iterable[SpanRecord]) -> dict[int | None, list[SpanRecord]]:
    """Children-by-parent-uid adjacency of a span list.

    ``tree[None]`` is the top level; children keep the recorded
    (completion) order, which is deterministic for a single-threaded
    tracer.
    """
    tree: dict[int | None, list[SpanRecord]] = {}
    for s in spans:
        tree.setdefault(s.parent_uid, []).append(s)
    return tree


# -- Prometheus -----------------------------------------------------------


def _prom_name(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    flat = "".join(out)
    if not flat or flat[0].isdigit():
        flat = "_" + flat
    return flat


def prometheus_text(
    metrics: MetricsRegistry | Mapping[str, Any], prefix: str = "repro"
) -> str:
    """A Prometheus exposition-format snapshot of a registry.

    Histograms follow the cumulative-bucket convention
    (``_bucket{le=...}`` plus ``_sum`` / ``_count``); all names get
    ``prefix`` and dots become underscores.
    """
    snap = metrics.snapshot() if isinstance(metrics, MetricsRegistry) else metrics
    lines: list[str] = []
    for name, value in sorted(snap.get("counters", {}).items()):
        flat = f"{prefix}_{_prom_name(name)}"
        lines.append(f"# TYPE {flat} counter")
        lines.append(f"{flat} {value:g}")
    for name, value in sorted(snap.get("gauges", {}).items()):
        flat = f"{prefix}_{_prom_name(name)}"
        lines.append(f"# TYPE {flat} gauge")
        lines.append(f"{flat} {value:g}")
    for name, h in sorted(snap.get("histograms", {}).items()):
        flat = f"{prefix}_{_prom_name(name)}"
        lines.append(f"# TYPE {flat} histogram")
        cumulative = 0
        for bound, n in zip(h["bounds"], h["bucket_counts"]):
            cumulative += n
            lines.append(f'{flat}_bucket{{le="{bound:g}"}} {cumulative}')
        cumulative += h["bucket_counts"][-1]
        lines.append(f'{flat}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{flat}_sum {h['sum']:g}")
        lines.append(f"{flat}_count {h['count']}")
    return "\n".join(lines) + "\n"
