"""Exporters: Chrome ``trace_event`` JSON, JSONL, Prometheus text.

Three formats for three audiences:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` "JSON Object Format" (``{"traceEvents": [...]}``),
  loadable in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
  Spans become complete (``"ph": "X"``) events, instants become
  ``"ph": "i"`` events, and counter metrics become ``"ph": "C"`` events.
* :func:`write_jsonl` / :func:`read_jsonl` — one self-describing JSON
  object per line (``kind`` = ``span`` / ``instant`` / ``metrics``);
  lossless for spans, so a dump reloads to the identical span tree.
* :func:`prometheus_text` — a flat ``name value`` text snapshot in the
  Prometheus exposition format (dots rewritten to underscores).
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import ObsError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import InstantRecord, SpanRecord, Tracer

# -- Chrome trace_event ---------------------------------------------------

_REQUIRED_EVENT_KEYS = {"ph", "name", "ts", "pid", "tid"}


EPOCH_METADATA_NAME = "trace_epoch_us"
"""Metadata-event name carrying a trace's ``perf_counter`` epoch.

``time.perf_counter`` shares one monotonic origin across the processes
of a machine, so a per-worker trace stamped with its tracer's epoch can
be shifted onto a fleet-wide common timeline by :func:`merge_traces`.
"""


def chrome_trace(
    tracer: Tracer,
    metrics: MetricsRegistry | Mapping[str, Any] | None = None,
    process_name: str = "repro",
    pid: int = 0,
    epoch_us: float | None = None,
) -> dict[str, Any]:
    """The tracer's records as a Chrome ``trace_event`` JSON object.

    Args:
        tracer: A :class:`~repro.obs.trace.Tracer` (or anything with
            ``spans`` / ``instants`` lists).
        metrics: Optional registry or snapshot; counters and gauges are
            appended as ``"C"`` (counter-track) events so Perfetto plots
            them alongside the spans.
        process_name: The ``process_name`` metadata label.
        pid: Process id stamped on every event — each distinct pid is
            one lane ("process") in trace viewers, which is how
            fleet-worker traces stay separable after a merge.
        epoch_us: Tracer epoch (``tracer.epoch_s * 1e6``) recorded as a
            ``trace_epoch_us`` metadata event so :func:`merge_traces`
            can align this trace with traces from other processes.
    """
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "ts": 0,
            "args": {"name": process_name},
        }
    ]
    if epoch_us is not None:
        events.append(
            {
                "ph": "M",
                "name": EPOCH_METADATA_NAME,
                "pid": pid,
                "tid": 0,
                "ts": 0,
                "args": {"epoch_us": epoch_us},
            }
        )
    last_us = 0.0
    for s in tracer.spans:
        events.append(
            {
                "ph": "X",
                "name": s.name,
                "cat": s.cat,
                "ts": s.start_us,
                "dur": s.dur_us,
                "pid": pid,
                "tid": 0,
                "args": dict(s.args),
            }
        )
        last_us = max(last_us, s.start_us + s.dur_us)
    for i in tracer.instants:
        events.append(
            {
                "ph": "i",
                "s": "t",
                "name": i.name,
                "cat": i.cat,
                "ts": i.ts_us,
                "pid": pid,
                "tid": 0,
                "args": dict(i.args),
            }
        )
        last_us = max(last_us, i.ts_us)
    if metrics is not None:
        snap = metrics.snapshot() if isinstance(metrics, MetricsRegistry) else metrics
        for section in ("counters", "gauges"):
            for name, value in sorted(snap.get(section, {}).items()):
                events.append(
                    {
                        "ph": "C",
                        "name": name,
                        "cat": "metrics",
                        "ts": last_us,
                        "pid": pid,
                        "tid": 0,
                        "args": {"value": value},
                    }
                )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(data: Mapping[str, Any]) -> None:
    """Check a parsed trace against the ``trace_event`` schema essentials.

    Raises:
        ObsError: On a missing ``traceEvents`` list, a non-mapping
            event, missing required keys, or non-numeric ``ts``/``dur``.
    """
    events = data.get("traceEvents")
    if not isinstance(events, list):
        raise ObsError("chrome trace must carry a 'traceEvents' list")
    for k, event in enumerate(events):
        if not isinstance(event, Mapping):
            raise ObsError(f"traceEvents[{k}] is not an object")
        missing = _REQUIRED_EVENT_KEYS - set(event)
        if missing:
            raise ObsError(
                f"traceEvents[{k}] ({event.get('name')!r}) missing {sorted(missing)}"
            )
        for key in ("ts", "dur"):
            value = event.get(key, 0)
            if not isinstance(value, (int, float)) or not math.isfinite(value):
                raise ObsError(
                    f"traceEvents[{k}].{key} must be finite, got {value!r}"
                )
        if event["ph"] == "X" and "dur" not in event:
            raise ObsError(f"traceEvents[{k}] complete event without 'dur'")


def write_chrome_trace(
    path: str | Path,
    tracer: Tracer,
    metrics: MetricsRegistry | Mapping[str, Any] | None = None,
    process_name: str = "repro",
    pid: int = 0,
    epoch_us: float | None = None,
) -> Path:
    """Serialise :func:`chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(
        json.dumps(
            chrome_trace(
                tracer,
                metrics,
                process_name=process_name,
                pid=pid,
                epoch_us=epoch_us,
            )
        )
        + "\n"
    )
    return path


def load_chrome_trace(path: str | Path) -> dict[str, Any]:
    """Parse and validate a trace written by :func:`write_chrome_trace`.

    Raises:
        ObsError: If the file is not valid ``trace_event`` JSON.
    """
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ObsError(f"{path} is not JSON: {exc}") from exc
    validate_chrome_trace(data)
    return data


# -- multi-process trace merging ------------------------------------------


def _trace_epoch_us(data: Mapping[str, Any]) -> float | None:
    """The ``trace_epoch_us`` metadata value of one trace, if stamped."""
    for event in data.get("traceEvents", []):
        if event.get("ph") == "M" and event.get("name") == EPOCH_METADATA_NAME:
            value = event.get("args", {}).get("epoch_us")
            if isinstance(value, (int, float)) and math.isfinite(value):
                return float(value)
    return None


def merge_traces(traces: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
    """Stitch per-process Chrome traces into one multi-lane timeline.

    Each input keeps its own lane (``pid``); events of epoch-stamped
    traces (see :data:`EPOCH_METADATA_NAME`) are shifted so every lane
    shares the earliest input's t=0, turning a grid of per-worker fleet
    traces into a single inspectable artifact.  Lanes are labelled
    ``process_name`` metadata: one per distinct pid, listing the job
    names that ran there (pool workers run several jobs per process).

    Args:
        traces: Parsed ``trace_event`` objects (e.g. from
            :func:`load_chrome_trace`).

    Raises:
        ObsError: On an empty input list or a trace without a
            ``traceEvents`` list.
    """
    if not traces:
        raise ObsError("merge_traces needs at least one trace")
    epochs = [_trace_epoch_us(t) for t in traces]
    stamped = [e for e in epochs if e is not None]
    base_us = min(stamped) if stamped else 0.0

    merged: list[dict[str, Any]] = []
    lane_names: dict[int, list[str]] = {}
    for data, epoch in zip(traces, epochs):
        events = data.get("traceEvents")
        if not isinstance(events, list):
            raise ObsError("chrome trace must carry a 'traceEvents' list")
        offset_us = (epoch - base_us) if epoch is not None else 0.0
        for event in events:
            pid = int(event.get("pid", 0))
            if event.get("ph") == "M":
                if event.get("name") == "process_name":
                    name = str(event.get("args", {}).get("name", ""))
                    names = lane_names.setdefault(pid, [])
                    if name and name not in names:
                        names.append(name)
                # Per-trace metadata (process_name, trace_epoch_us) is
                # re-emitted once per lane below.
                continue
            shifted = dict(event)
            shifted["ts"] = float(event.get("ts", 0.0)) + offset_us
            merged.append(shifted)
            lane_names.setdefault(pid, [])

    events_out: list[dict[str, Any]] = []
    for pid in sorted(lane_names):
        label = " | ".join(lane_names[pid]) or f"pid {pid}"
        events_out.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "ts": 0,
                "args": {"name": label},
            }
        )
    events_out.extend(sorted(merged, key=lambda e: (e["ts"], e.get("pid", 0))))
    return {"traceEvents": events_out, "displayTimeUnit": "ms"}


def merge_trace_files(
    paths: Sequence[str | Path], out: str | Path | None = None
) -> dict[str, Any]:
    """Load, merge, and optionally write a set of Chrome trace files.

    Args:
        paths: Trace files (each validated on load).
        out: When given, the merged trace is validated and written here.

    Raises:
        ObsError: On unreadable/invalid inputs or an empty path list.
    """
    merged = merge_traces([load_chrome_trace(p) for p in paths])
    validate_chrome_trace(merged)
    if out is not None:
        Path(out).write_text(json.dumps(merged) + "\n")
    return merged


def trace_lanes(data: Mapping[str, Any]) -> list[int]:
    """The distinct pids (viewer lanes) of a trace, sorted."""
    return sorted(
        {int(e.get("pid", 0)) for e in data.get("traceEvents", [])}
    )


def spans_from_chrome(data: Mapping[str, Any]) -> list[SpanRecord]:
    """Reconstruct span records from a Chrome trace's complete events.

    Only ``"ph": "X"`` events carry durations; uids are synthesised in
    event order and the parent/depth structure is not recovered (the
    JSONL format is the lossless one).  Good enough for offline
    re-profiling: :func:`repro.obs.profile.phase_breakdown` needs only
    names and durations.
    """
    spans: list[SpanRecord] = []
    for k, event in enumerate(data.get("traceEvents", [])):
        if event.get("ph") != "X":
            continue
        spans.append(
            SpanRecord(
                uid=k,
                parent_uid=None,
                name=str(event.get("name", "")),
                cat=str(event.get("cat", "default")),
                start_us=float(event.get("ts", 0.0)),
                dur_us=float(event.get("dur", 0.0)),
                depth=0,
                args=dict(event.get("args", {})),
            )
        )
    return spans


def load_spans(path: str | Path) -> list[SpanRecord]:
    """Span records from a saved trace file, Chrome or JSONL format.

    Sniffs the format: a JSON object with ``traceEvents`` is a Chrome
    trace (spans reconstructed from its complete events), anything else
    is treated as a :func:`write_jsonl` dump.

    Raises:
        ObsError: When the file parses as neither format.
    """
    text = Path(path).read_text()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            data = json.loads(text)
        except json.JSONDecodeError:
            data = None
        if isinstance(data, dict) and "traceEvents" in data:
            validate_chrome_trace(data)
            return spans_from_chrome(data)
    spans, _instants, _metrics = read_jsonl(path)
    return spans


# -- JSONL ----------------------------------------------------------------


def write_jsonl(
    path: str | Path,
    tracer: Tracer,
    metrics: MetricsRegistry | Mapping[str, Any] | None = None,
) -> Path:
    """Dump spans, instants, and an optional metrics snapshot as JSONL."""
    path = Path(path)
    with path.open("w") as fh:
        for s in tracer.spans:
            fh.write(json.dumps({
                "kind": "span",
                "uid": s.uid,
                "parent_uid": s.parent_uid,
                "name": s.name,
                "cat": s.cat,
                "start_us": s.start_us,
                "dur_us": s.dur_us,
                "depth": s.depth,
                "args": s.args,
            }) + "\n")
        for i in tracer.instants:
            fh.write(json.dumps({
                "kind": "instant",
                "uid": i.uid,
                "name": i.name,
                "cat": i.cat,
                "ts_us": i.ts_us,
                "args": i.args,
            }) + "\n")
        if metrics is not None:
            snap = (
                metrics.snapshot()
                if isinstance(metrics, MetricsRegistry)
                else metrics
            )
            fh.write(json.dumps({"kind": "metrics", "snapshot": snap}) + "\n")
    return path


def read_jsonl(
    path: str | Path,
) -> tuple[list[SpanRecord], list[InstantRecord], dict[str, Any] | None]:
    """Reload a :func:`write_jsonl` dump.

    Returns:
        ``(spans, instants, metrics_snapshot)`` — the spans and instants
        as the same record types the tracer produced (so the span tree
        round-trips exactly); the snapshot is ``None`` when absent.

    Raises:
        ObsError: On malformed lines or unknown record kinds.
    """
    spans: list[SpanRecord] = []
    instants: list[InstantRecord] = []
    snapshot: dict[str, Any] | None = None
    for n, line in enumerate(Path(path).read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObsError(f"{path}:{n} is not JSON: {exc}") from exc
        kind = record.pop("kind", None)
        try:
            if kind == "span":
                spans.append(SpanRecord(**record))
            elif kind == "instant":
                instants.append(InstantRecord(**record))
            elif kind == "metrics":
                snapshot = record["snapshot"]
            else:
                raise ObsError(f"{path}:{n} has unknown kind {kind!r}")
        except TypeError as exc:
            raise ObsError(f"{path}:{n} malformed {kind} record: {exc}") from exc
    return spans, instants, snapshot


def span_tree(spans: Iterable[SpanRecord]) -> dict[int | None, list[SpanRecord]]:
    """Children-by-parent-uid adjacency of a span list.

    ``tree[None]`` is the top level; children keep the recorded
    (completion) order, which is deterministic for a single-threaded
    tracer.
    """
    tree: dict[int | None, list[SpanRecord]] = {}
    for s in spans:
        tree.setdefault(s.parent_uid, []).append(s)
    return tree


# -- Prometheus -----------------------------------------------------------


def _prom_name(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    flat = "".join(out)
    if not flat or flat[0].isdigit():
        flat = "_" + flat
    return flat


def _prom_label_value(value: str) -> str:
    """Escape a label value per the exposition format: backslash,
    double quote, and newline are the three characters with meaning
    inside a quoted label value."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _prom_labels(labels: Mapping[str, str], extra: str = "") -> str:
    """Render a ``{k="v",...}`` label block (empty string when bare)."""
    parts = [
        f'{_prom_name(str(key))}="{_prom_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_text(
    metrics: MetricsRegistry | Mapping[str, Any],
    prefix: str = "repro",
    labels: Mapping[str, str] | None = None,
) -> str:
    """A Prometheus exposition-format snapshot of a registry.

    Histograms follow the cumulative-bucket convention
    (``_bucket{le=...}`` plus ``_sum`` / ``_count``); all names get
    ``prefix`` and dots become underscores.  ``labels`` are constant
    labels stamped on every sample (e.g. ``{"instance": ...}``); label
    names are sanitised like metric names and label values are escaped
    (backslash, quote, newline) per the exposition format.
    """
    snap = metrics.snapshot() if isinstance(metrics, MetricsRegistry) else metrics
    base = _prom_labels(labels) if labels else ""
    lines: list[str] = []
    for name, value in sorted(snap.get("counters", {}).items()):
        flat = f"{prefix}_{_prom_name(name)}"
        lines.append(f"# TYPE {flat} counter")
        lines.append(f"{flat}{base} {value:g}")
    for name, value in sorted(snap.get("gauges", {}).items()):
        flat = f"{prefix}_{_prom_name(name)}"
        lines.append(f"# TYPE {flat} gauge")
        lines.append(f"{flat}{base} {value:g}")
    for name, h in sorted(snap.get("histograms", {}).items()):
        flat = f"{prefix}_{_prom_name(name)}"
        lines.append(f"# TYPE {flat} histogram")
        cumulative = 0
        for bound, n in zip(h["bounds"], h["bucket_counts"]):
            cumulative += n
            bucket = _prom_labels(labels or {}, extra=f'le="{bound:g}"')
            lines.append(f"{flat}_bucket{bucket} {cumulative}")
        cumulative += h["bucket_counts"][-1]
        bucket = _prom_labels(labels or {}, extra='le="+Inf"')
        lines.append(f"{flat}_bucket{bucket} {cumulative}")
        lines.append(f"{flat}_sum{base} {h['sum']:g}")
        lines.append(f"{flat}_count{base} {h['count']}")
    return "\n".join(lines) + "\n"
