"""repro: reinforcement-learning power management for mobile MPSoCs.

A reproduction of *Late Breaking Results: Reinforcement Learning-based
Power Management Policy for Mobile Device Systems* (DAC 2020) and its
journal extension: a Q-learning DVFS governor for big.LITTLE mobile
SoCs, six baseline cpufreq governors, a full MPSoC/power/thermal/
workload simulation substrate, and a fixed-point hardware model of the
policy with CPU-FPGA interface latency accounting.

Quick start::

    from repro import exynos5422, get_scenario, train_policy, evaluate_policy

    chip = exynos5422()
    scenario = get_scenario("gaming")
    training = train_policy(chip, scenario, episodes=10)
    result = evaluate_policy(chip, training.policies, scenario.trace(seed=99))
    print(result.summary())
"""

from repro.core import (
    PolicyConfig,
    RLPowerManagementPolicy,
    TrainingResult,
    evaluate_policy,
    load_policies,
    make_policies,
    save_policies,
    train_curriculum,
    train_policy,
)
from repro.errors import ReproError
from repro.fleet import FleetResult, FleetSpec, JobSpec, run_fleet
from repro.governors import BASELINE_SIX, Governor, available, create
from repro.hw import HardwareRLPolicy, QFormat, compare_latency
from repro.power import PowerModel
from repro.qos import energy_per_qos, energy_per_qos_j, improvement_percent
from repro.sim import SimulationResult, Simulator
from repro.soc import Chip, exynos5422, symmetric_quad, tiny_test_chip
from repro.workload import SCENARIOS, Scenario, Trace, get_scenario

__version__ = "1.0.0"

__all__ = [
    "BASELINE_SIX",
    "Chip",
    "FleetResult",
    "FleetSpec",
    "Governor",
    "HardwareRLPolicy",
    "JobSpec",
    "PolicyConfig",
    "PowerModel",
    "QFormat",
    "ReproError",
    "RLPowerManagementPolicy",
    "SCENARIOS",
    "Scenario",
    "SimulationResult",
    "Simulator",
    "Trace",
    "TrainingResult",
    "__version__",
    "available",
    "compare_latency",
    "create",
    "energy_per_qos",
    "energy_per_qos_j",
    "evaluate_policy",
    "exynos5422",
    "get_scenario",
    "improvement_percent",
    "load_policies",
    "make_policies",
    "run_fleet",
    "save_policies",
    "symmetric_quad",
    "tiny_test_chip",
    "train_curriculum",
    "train_policy",
]
