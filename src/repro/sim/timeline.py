"""Exporting per-interval time series for external analysis.

A run executed with ``record_samples=True`` carries an
:class:`~repro.sim.result.IntervalSample` per interval; this module
flattens that into CSV (power, per-cluster OPP and utilisation, queue
depth) so users can plot with whatever they like, and reads it back.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.errors import SimulationError
from repro.sim.result import IntervalSample, SimulationResult


def timeline_to_csv(result: SimulationResult, path: str | Path) -> None:
    """Write a sampled run's time series as CSV.

    Columns: ``time_s, power_w, queue_jobs, opp_<cluster>...,
    util_<cluster>...`` in cluster-name order.

    Raises:
        SimulationError: If the run was not executed with
            ``record_samples=True``.
    """
    if not result.samples:
        raise SimulationError(
            "result has no samples; run the simulator with record_samples=True"
        )
    clusters = sorted(result.samples[0].opp_indices)
    fields = (
        ["time_s", "power_w", "queue_jobs"]
        + [f"opp_{c}" for c in clusters]
        + [f"util_{c}" for c in clusters]
    )
    with Path(path).open("w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(fields)
        for s in result.samples:
            writer.writerow(
                [repr(s.time_s), repr(s.power_w), s.queue_jobs]
                + [s.opp_indices[c] for c in clusters]
                + [repr(s.utilizations[c]) for c in clusters]
            )


def timeline_from_csv(path: str | Path) -> list[IntervalSample]:
    """Read samples written by :func:`timeline_to_csv`.

    Raises:
        SimulationError: On missing columns or unparseable rows.
    """
    path = Path(path)
    samples: list[IntervalSample] = []
    with path.open(newline="") as f:
        reader = csv.DictReader(f)
        names = reader.fieldnames or []
        clusters = [c.removeprefix("opp_") for c in names if c.startswith("opp_")]
        required = {"time_s", "power_w", "queue_jobs"}
        if not required <= set(names) or not clusters:
            raise SimulationError(f"{path} is not a timeline CSV (columns: {names})")
        for lineno, row in enumerate(reader, start=2):
            try:
                samples.append(
                    IntervalSample(
                        time_s=float(row["time_s"]),
                        power_w=float(row["power_w"]),
                        queue_jobs=int(row["queue_jobs"]),
                        opp_indices={c: int(row[f"opp_{c}"]) for c in clusters},
                        utilizations={c: float(row[f"util_{c}"]) for c in clusters},
                    )
                )
            except (KeyError, ValueError) as exc:
                raise SimulationError(f"{path}:{lineno}: bad timeline row: {exc}") from exc
    return samples
