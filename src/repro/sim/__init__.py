"""Simulation engine: interval loop, scheduling, telemetry, results."""

from repro.sim.engine import Simulator
from repro.sim.residency import ResidencyReport, residency
from repro.sim.result import IntervalSample, SimulationResult
from repro.sim.scheduler import HMPScheduler, PinnedScheduler, Scheduler
from repro.sim.telemetry import ClusterObservation, initial_observation
from repro.sim.timeline import timeline_from_csv, timeline_to_csv

__all__ = [
    "ClusterObservation",
    "HMPScheduler",
    "IntervalSample",
    "PinnedScheduler",
    "ResidencyReport",
    "Scheduler",
    "SimulationResult",
    "Simulator",
    "initial_observation",
    "residency",
    "timeline_from_csv",
    "timeline_to_csv",
]
