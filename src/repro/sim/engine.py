"""The interval-driven MPSoC simulator.

The engine advances in fixed DVFS-sampling intervals (default 10 ms,
matching cpufreq).  Each interval it:

1. lets each cluster's governor pick an OPP from the *previous*
   interval's observation (governors are causal),
2. applies thermal throttling on top of the governor decision,
3. releases newly arrived work units and places them via the scheduler,
4. drains each cluster's run queue EDF-first across its cores,
5. integrates power into energy and steps the thermal model,
6. publishes fresh per-cluster observations.

Work units that blow far past their deadline are abandoned (the frame is
dropped), like a real compositor would, so a starved system pays in QoS
rather than queueing unboundedly.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Mapping

from repro.errors import GovernorError, SimulationError
from repro.governors.base import Governor
from repro.obs import OBS
from repro.obs.context import trace_args
from repro.idle.governor import MenuIdleGovernor
from repro.mem.dram import DRAMModel
from repro.power.energy import EnergyMeter
from repro.power.model import PowerBreakdown, PowerModel
from repro.qos.metrics import evaluate_jobs
from repro.sim.result import IntervalSample, SimulationResult
from repro.sim.scheduler import HMPScheduler, Scheduler
from repro.sim.telemetry import ClusterObservation, initial_observation
from repro.soc.chip import Chip
from repro.soc.cluster import Cluster
from repro.soc.transition import DVFSTransitionModel
from repro.thermal.rc import ThermalModel
from repro.thermal.throttle import ThermalThrottle
from repro.workload.task import Job
from repro.workload.trace import Trace

GovernorFactory = Callable[[Cluster], Governor]

ENGINE_VERSION = "5.0"
"""Version of the simulated-numbers contract.

Bump whenever a change alters the numbers any (chip, trace, governor)
run produces — power-model arithmetic, drain order, scheduler
behaviour, QoS scoring.  The run cache (:mod:`repro.cache`) folds this
into every cache key, so stale results self-invalidate on upgrade; the
batch backend (:mod:`repro.batch`) replicates exactly this version's
float-operation sequence."""

DECISION_LATENCY_BUCKETS = (
    1e-7, 3e-7, 1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2,
)
"""Bucket bounds (seconds) for the per-decision governor latency
histogram — log-ish spacing from 100 ns to 10 ms, bracketing both a
table lookup and a full RL forward pass."""


class Simulator:
    """Runs one workload trace under one power-management policy.

    Args:
        chip: The MPSoC to simulate.  Its runtime state is reset at
            :meth:`run`.
        trace: The workload trace to execute.
        governors: Either a mapping of cluster name to a (stateful)
            :class:`~repro.governors.base.Governor`, or a factory called
            once per cluster to build one.
        power_model: Chip power model; a default is built when omitted.
        scheduler: Unit placement policy; defaults to
            :class:`~repro.sim.scheduler.HMPScheduler`.
        interval_s: DVFS sampling interval in seconds.
        thermal: Optional thermal model with one node per cluster.
        throttle: Optional thermal throttle (requires ``thermal``).
        grace_factor: Lateness window, as a multiple of each unit's
            nominal slack, after which a pending unit is abandoned and a
            late completion scores zero QoS.  Shared with QoS scoring.
        record_samples: Keep a per-interval chip time series in the result.
        record_observations: Keep the full observation log per cluster.
        idle_governor: Optional cpuidle model; idle cores' power is
            discounted by their selected C-state.
        transition: Optional DVFS transition-cost model (stall + energy
            per OPP switch).
        memory: Optional DRAM power model fed by executed work.
        qos_classes: Optional service-class map; when given, the result's
            QoS report is class-weighted
            (:func:`repro.qos.classes.evaluate_jobs_weighted`).
    """

    def __init__(
        self,
        chip: Chip,
        trace: Trace,
        governors: Mapping[str, Governor] | GovernorFactory,
        power_model: PowerModel | None = None,
        scheduler: Scheduler | None = None,
        interval_s: float = 0.01,
        thermal: ThermalModel | None = None,
        throttle: ThermalThrottle | None = None,
        grace_factor: float = 2.0,
        record_samples: bool = False,
        record_observations: bool = False,
        idle_governor: MenuIdleGovernor | None = None,
        transition: DVFSTransitionModel | None = None,
        memory: DRAMModel | None = None,
        qos_classes: "QoSClassMap | None" = None,
    ):
        if interval_s <= 0:
            raise SimulationError(f"interval must be positive: {interval_s}")
        if grace_factor <= 0:
            raise SimulationError(f"grace factor must be positive: {grace_factor}")
        if throttle is not None and thermal is None:
            raise SimulationError("throttling requires a thermal model")
        if transition is not None and transition.latency_s >= interval_s:
            raise SimulationError(
                f"transition latency {transition.latency_s} s must be shorter "
                f"than the interval {interval_s} s"
            )
        self.chip = chip
        self.trace = trace
        self.power_model = power_model or PowerModel()
        self.scheduler = scheduler or HMPScheduler()
        self.interval_s = interval_s
        self.thermal = thermal
        self.throttle = throttle
        self.grace_factor = grace_factor
        self.record_samples = record_samples
        self.record_observations = record_observations
        self.idle_governor = idle_governor
        self.transition = transition
        self.memory = memory
        self.qos_classes = qos_classes

        if callable(governors):
            self.governors: dict[str, Governor] = {
                c.spec.name: governors(c) for c in chip
            }
        else:
            missing = set(chip.cluster_names) - set(governors)
            if missing:
                raise SimulationError(f"no governor for clusters: {sorted(missing)}")
            self.governors = {name: governors[name] for name in chip.cluster_names}

    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Simulate the whole trace and return the aggregated result.

        The chip, thermal model, throttle and governors are all reset
        first, so repeated calls are independent runs (governors that
        learn, like the RL policy, may carry knowledge via their own
        ``reset`` semantics).
        """
        chip = self.chip
        dt = self.interval_s
        chip.reset()
        if self.thermal is not None:
            self.thermal.reset()
        if self.throttle is not None:
            self.throttle.reset()
        if self.idle_governor is not None:
            self.idle_governor.reset()
        if self.memory is not None:
            self.memory.reset()
        for cluster in chip:
            self.governors[cluster.spec.name].reset(cluster)

        queues: dict[str, list[Job]] = {name: [] for name in chip.cluster_names}
        all_jobs: list[Job] = []
        obs: dict[str, ClusterObservation] = {
            c.spec.name: initial_observation(
                c.spec.name,
                c.opp_index,
                len(c.spec.opp_table),
                c.freq_hz,
                c.spec.opp_table.max_freq_hz,
                dt,
            )
            for c in chip
        }
        meter = EnergyMeter()
        samples: list[IntervalSample] = []
        obs_log: dict[str, list[ClusterObservation]] = {
            name: [] for name in chip.cluster_names
        }
        opp_switches = 0
        unit_idx = 0
        units = self.trace.units
        n_steps = max(1, math.ceil(self.trace.duration_s / dt))

        # Observability probes: `tracer` is None unless a session is
        # active, so the disabled path costs one local truthiness check
        # per probe and the simulated numbers are untouched either way.
        tracer = OBS.tracer if OBS.enabled else None
        decision_hist = (
            OBS.metrics.histogram(
                "sim.decision_latency_s", DECISION_LATENCY_BUCKETS
            )
            if OBS.enabled
            else None
        )
        run_span = (
            tracer.begin(
                "engine.run", cat="engine",
                trace=self.trace.name, intervals=n_steps,
                **trace_args(),
            )
            if tracer
            else None
        )

        for step in range(n_steps):
            t0 = step * dt
            t1 = t0 + dt
            if tracer:
                interval_span = tracer.begin("engine.interval", cat="engine",
                                             step=step)
                phase_span = tracer.begin("engine.phase.governor", cat="engine")

            # 1. Governor decisions from last interval's observation.
            stall_s: dict[str, float] = {name: 0.0 for name in queues}
            transition_energy: dict[str, float] = {name: 0.0 for name in queues}
            for cluster in chip:
                name = cluster.spec.name
                if decision_hist is not None:
                    decide_t0 = time.perf_counter()
                decision = self.governors[name].decide_traced(obs[name], tracer)
                if decision_hist is not None:
                    decision_hist.observe(time.perf_counter() - decide_t0)
                try:
                    decision = int(decision)
                except (TypeError, ValueError):
                    raise GovernorError(
                        f"governor {self.governors[name].name!r} returned "
                        f"non-integer decision {decision!r}"
                    ) from None
                decision = cluster.spec.opp_table.clamp_index(decision)
                if decision != cluster.opp_index:
                    opp_switches += 1
                    if self.transition is not None:
                        stall_s[name] = self.transition.latency_s
                        transition_energy[name] = self.transition.energy_j(
                            cluster.voltage_v,
                            cluster.spec.opp_table[decision].voltage_v,
                        )
                    cluster.set_opp_index(decision)

            # 2. Thermal throttling caps the governor's choice.
            if self.throttle is not None and self.thermal is not None:
                for cluster in chip:
                    before = cluster.opp_index
                    self.throttle.apply(cluster, self.thermal)
                    if cluster.opp_index != before:
                        opp_switches += 1
                        if self.transition is not None:
                            name = cluster.spec.name
                            stall_s[name] = self.transition.latency_s
                            transition_energy[name] += self.transition.energy_j(
                                cluster.spec.opp_table[before].voltage_v,
                                cluster.voltage_v,
                            )
            if tracer:
                tracer.end(phase_span)
                phase_span = tracer.begin("engine.phase.schedule", cat="engine")

            # 3. Release arrivals and place them.
            arrived: dict[str, float] = {name: 0.0 for name in queues}
            while unit_idx < len(units) and units[unit_idx].release_s < t1:
                unit = units[unit_idx]
                backlog = {
                    name: sum(j.remaining for j in q) for name, q in queues.items()
                }
                target = self.scheduler.assign(unit, chip, backlog, t0)
                if target not in queues:
                    raise SimulationError(
                        f"scheduler placed unit {unit.uid} on unknown cluster "
                        f"{target!r}"
                    )
                job = Job(unit)
                queues[target].append(job)
                all_jobs.append(job)
                arrived[target] += unit.work
                unit_idx += 1
            if tracer:
                tracer.end(phase_span)
                phase_span = tracer.begin("engine.phase.drain", cat="engine")

            # 4. Drain run queues (a transitioning cluster stalls first).
            drained: dict[str, tuple[float, int, int]] = {}
            for cluster in chip:
                name = cluster.spec.name
                drained[name] = self._drain_cluster(
                    cluster, queues[name], t0, dt, stall_s=stall_s[name]
                )

            # 5. Abandon hopelessly late jobs (dropped frames).
            misses_extra: dict[str, int] = {name: 0 for name in queues}
            for name, queue in queues.items():
                keep: list[Job] = []
                for job in queue:
                    cutoff = job.unit.deadline_s + self.grace_factor * job.unit.slack_s
                    if t1 > cutoff:
                        misses_extra[name] += 1
                    else:
                        keep.append(job)
                queues[name] = keep
            if tracer:
                tracer.end(phase_span)
                phase_span = tracer.begin("engine.phase.power_thermal",
                                          cat="engine")

            # 6. Power, energy, thermals (C-state selection feeds the
            # per-core idle-power discount).
            temps = {
                c.spec.name: self.thermal.temperature_c(c.spec.name)
                for c in chip
            } if self.thermal is not None else {}
            cluster_energy: dict[str, float] = {}
            cluster_power_total: dict[str, float] = {}
            chip_power = PowerBreakdown(0.0, 0.0, uncore_w=self.power_model.uncore_w)
            for cluster in chip:
                name = cluster.spec.name
                scales = None
                if self.idle_governor is not None:
                    scales = []
                    for i, core in enumerate(cluster.cores):
                        idle_s = (1.0 - core.utilization) * dt
                        self.idle_governor.observe(f"{name}/{i}", idle_s, dt)
                        scales.append(self.idle_governor.power_fraction(f"{name}/{i}"))
                p = self.power_model.cluster_power(cluster, temps.get(name), scales)
                chip_power = chip_power + p
                cluster_energy[name] = p.total_w * dt + transition_energy[name]
                cluster_power_total[name] = cluster_energy[name] / dt
            if self.transition is not None:
                extra_w = sum(transition_energy.values()) / dt
                chip_power = chip_power + PowerBreakdown(extra_w, 0.0)
            if self.memory is not None:
                total_completed = sum(d[0] for d in drained.values())
                dram_w = self.memory.interval_power_w(total_completed, dt)
                chip_power = chip_power + PowerBreakdown(0.0, 0.0, uncore_w=dram_w)
            meter.record(chip_power, dt)
            if self.thermal is not None:
                self.thermal.step(cluster_power_total, dt)
            if tracer:
                tracer.end(phase_span)
                phase_span = tracer.begin("engine.phase.observe", cat="engine")

            # 7. Publish observations.
            for cluster in chip:
                name = cluster.spec.name
                completed_work, completions, misses = drained[name]
                queue = queues[name]
                obs[name] = ClusterObservation(
                    cluster=name,
                    time_s=t1,
                    interval_s=dt,
                    opp_index=cluster.opp_index,
                    n_opps=len(cluster.spec.opp_table),
                    freq_hz=cluster.freq_hz,
                    max_freq_hz=cluster.spec.opp_table.max_freq_hz,
                    utilization=cluster.utilization,
                    max_core_utilization=cluster.max_core_utilization,
                    queue_work=sum(j.remaining for j in queue),
                    queue_jobs=len(queue),
                    arrived_work=arrived[name],
                    completed_work=completed_work,
                    deadline_misses=misses + misses_extra[name],
                    completions=completions,
                    qos_slack=self._queue_slack(queue, t1),
                    energy_j=cluster_energy[name],
                    temp_c=temps.get(name),
                )
                if self.record_observations:
                    obs_log[name].append(obs[name])

            if self.record_samples:
                samples.append(
                    IntervalSample(
                        time_s=t1,
                        power_w=chip_power.total_w,
                        opp_indices={c.spec.name: c.opp_index for c in chip},
                        utilizations={c.spec.name: c.utilization for c in chip},
                        queue_jobs=sum(len(q) for q in queues.values()),
                    )
                )
            if tracer:
                tracer.end(phase_span)
                tracer.end(interval_span)

        # Units the horizon never released (e.g. a release landing exactly
        # on the final interval edge) still count: they are work the trace
        # promised, scored as dropped.
        for leftover in units[unit_idx:]:
            all_jobs.append(Job(leftover))

        if self.qos_classes is not None:
            from repro.qos.classes import evaluate_jobs_weighted

            qos = evaluate_jobs_weighted(
                all_jobs, self.qos_classes, grace_factor=self.grace_factor
            )
        else:
            qos = evaluate_jobs(all_jobs, grace_factor=self.grace_factor)
        governor_name = "+".join(
            sorted({g.name for g in self.governors.values()})
        )
        if tracer:
            tracer.end(run_span)
        if OBS.enabled:
            m = OBS.metrics
            m.counter("sim.runs").inc()
            m.counter("sim.intervals").inc(n_steps)
            m.counter("sim.opp_switches").inc(opp_switches)
            m.counter("sim.jobs").inc(len(all_jobs))
            m.counter("sim.energy_j").inc(meter.total_j)
            m.counter("sim.simulated_s").inc(n_steps * dt)
            m.gauge("sim.last_mean_qos").set(qos.mean_qos)
            m.gauge("sim.last_deadline_miss_rate").set(qos.deadline_miss_rate)
        return SimulationResult(
            governor=governor_name,
            trace_name=self.trace.name,
            duration_s=n_steps * dt,
            total_energy_j=meter.total_j,
            dynamic_energy_j=meter.dynamic_j,
            leakage_energy_j=meter.leakage_j,
            uncore_energy_j=meter.uncore_j,
            qos=qos,
            intervals=n_steps,
            opp_switches=opp_switches,
            samples=samples,
            observations=obs_log if self.record_observations else {},
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _drain_cluster(
        cluster: Cluster, queue: list[Job], t0: float, dt: float, stall_s: float = 0.0
    ) -> tuple[float, int, int]:
        """Serve the queue EDF-first on the cluster's cores for one interval.

        Jobs are offered capacity from their ``min_parallelism`` least-
        loaded cores; completion times are interpolated inside the
        interval from the work actually consumed.  A DVFS transition
        stall consumes the first ``stall_s`` seconds of every core.

        Returns:
            ``(completed_work, completions, deadline_misses)`` where
            misses counts jobs that *completed late* this interval.
        """
        freq = cluster.freq_hz
        kappa = cluster.spec.core.capacity
        n_cores = cluster.n_cores
        rate = kappa * freq  # work per second per core
        # Seconds of the interval consumed per core; a transition stall
        # pre-consumes time on every core (the cluster clock is down).
        cursors = [min(stall_s, dt)] * n_cores

        queue.sort(key=lambda j: (j.unit.deadline_s, j.unit.uid))
        completed_work = 0.0
        completions = 0
        misses = 0
        if rate > 0:
            for job in queue:
                par = min(job.unit.min_parallelism, n_cores)
                order = sorted(range(n_cores), key=cursors.__getitem__)[:par]
                avail = [(dt - cursors[i]) * rate for i in order]
                total_avail = sum(avail)
                if total_avail <= 0:
                    continue
                w = min(job.remaining, total_avail)
                finish_off = 0.0
                for i, a in zip(order, avail):
                    share = w * (a / total_avail)
                    cursors[i] += share / rate
                    if share > 0:
                        finish_off = max(finish_off, cursors[i])
                consumed = job.execute(w, t0 + finish_off)
                completed_work += consumed
                if job.done:
                    completions += 1
                    if job.lateness_s() > 0:
                        misses += 1
        queue[:] = [j for j in queue if not j.done]

        for i, core in enumerate(cluster.cores):
            core.record_interval(cursors[i] * freq, freq, dt)
        return completed_work, completions, misses

    @staticmethod
    def _queue_slack(queue: list[Job], now_s: float) -> float:
        """Normalised urgency of the pending queue, 1.0 (relaxed) to 0.0."""
        slack = 1.0
        for job in queue:
            nominal = job.unit.slack_s
            if nominal <= 0:
                return 0.0
            slack = min(slack, max(0.0, (job.unit.deadline_s - now_s) / nominal))
        return slack
