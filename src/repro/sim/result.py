"""Simulation results: per-run summary plus optional interval traces."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.qos.energy_per_qos import energy_per_qos_j
from repro.qos.metrics import QoSReport
from repro.sim.telemetry import ClusterObservation


@dataclass(frozen=True)
class IntervalSample:
    """One interval's chip-level sample for time-series reporting."""

    time_s: float
    power_w: float
    opp_indices: dict[str, int]
    utilizations: dict[str, float]
    queue_jobs: int


@dataclass
class SimulationResult:
    """Everything a benchmark needs from one simulated run.

    Attributes:
        governor: Name of the policy that ran.
        trace_name: Name of the workload trace.
        duration_s: Simulated wall time.
        total_energy_j: Chip energy over the run.
        dynamic_energy_j / leakage_energy_j / uncore_energy_j: Breakdown.
        qos: Aggregated QoS report.
        intervals: Number of simulated intervals.
        opp_switches: Total OPP changes across clusters (DVFS activity).
        samples: Optional per-interval time series (kept when the engine
            is constructed with ``record_samples=True``).
        observations: Optional full per-cluster observation log.
    """

    governor: str
    trace_name: str
    duration_s: float
    total_energy_j: float
    dynamic_energy_j: float
    leakage_energy_j: float
    uncore_energy_j: float
    qos: QoSReport
    intervals: int
    opp_switches: int
    samples: list[IntervalSample] = field(default_factory=list)
    observations: dict[str, list[ClusterObservation]] = field(default_factory=dict)

    @property
    def energy_per_qos_j(self) -> float:
        """The paper's headline metric for this run."""
        return energy_per_qos_j(self.total_energy_j, self.qos)

    @property
    def average_power_w(self) -> float:
        if self.duration_s <= 0:
            raise SimulationError("run has zero duration")
        return self.total_energy_j / self.duration_s

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.governor:>12s} on {self.trace_name:<20s} "
            f"E={self.total_energy_j:7.2f} J  QoS={self.qos.mean_qos:5.3f}  "
            f"miss={self.qos.deadline_miss_rate:6.2%}  "
            f"E/QoS={self.energy_per_qos_j * 1e3:8.3f} mJ/unit  "
            f"P={self.average_power_w:5.2f} W"
        )
