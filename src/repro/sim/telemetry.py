"""Per-interval observations handed to governors and the RL policy.

The observation is the *only* channel through which any policy sees the
system, mirroring how a cpufreq governor sees load statistics: no policy
gets to peek at the trace or the future.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ClusterObservation:
    """What one DVFS domain looked like over the last interval.

    Attributes:
        cluster: Cluster name.
        time_s: Simulation time at the *end* of the observed interval.
        interval_s: Interval length in seconds.
        opp_index: OPP in effect during the interval.
        n_opps: Size of the cluster's OPP table.
        freq_hz: Frequency in effect during the interval.
        max_freq_hz: Top frequency of the cluster's OPP table.
        utilization: Mean per-core utilisation in [0, 1].
        max_core_utilization: Busiest core's utilisation — the statistic
            kernel governors react to.
        queue_work: Work (reference cycles) still pending at interval end.
        queue_jobs: Number of pending jobs at interval end.
        arrived_work: Work released during the interval.
        completed_work: Work drained during the interval.
        deadline_misses: Jobs that completed late, or were abandoned,
            during the interval.
        completions: Jobs that completed during the interval.
        qos_slack: Normalised urgency of the pending queue in [0, 1]:
            1.0 = empty queue or ample time, 0.0 = a pending job is at or
            past its deadline.
        energy_j: Energy the cluster consumed over the interval.
        temp_c: Cluster thermal-node temperature, if a thermal model runs.
    """

    cluster: str
    time_s: float
    interval_s: float
    opp_index: int
    n_opps: int
    freq_hz: float
    max_freq_hz: float
    utilization: float
    max_core_utilization: float
    queue_work: float
    queue_jobs: int
    arrived_work: float
    completed_work: float
    deadline_misses: int
    completions: int
    qos_slack: float
    energy_j: float
    temp_c: float | None = None

    @property
    def normalized_opp(self) -> float:
        """OPP index as a fraction of the table top, in [0, 1]."""
        return self.opp_index / max(1, self.n_opps - 1)

    @property
    def absolute_load(self) -> float:
        """Busiest-core utilisation rescaled to the top OPP.

        This is schedutil's utilisation signal: 0.5 means the busiest core
        would be 50 % loaded *if* the cluster ran at maximum frequency.
        Saturated intervals (utilisation 1.0 at a low OPP) still read below
        1.0, which is exactly the blind spot reactive governors have.
        """
        return self.max_core_utilization * (self.freq_hz / self.max_freq_hz)


def initial_observation(
    cluster: str,
    opp_index: int,
    n_opps: int,
    freq_hz: float,
    max_freq_hz: float,
    interval_s: float,
) -> ClusterObservation:
    """The all-quiet observation used before the first interval completes."""
    return ClusterObservation(
        cluster=cluster,
        time_s=0.0,
        interval_s=interval_s,
        opp_index=opp_index,
        n_opps=n_opps,
        freq_hz=freq_hz,
        max_freq_hz=max_freq_hz,
        utilization=0.0,
        max_core_utilization=0.0,
        queue_work=0.0,
        queue_jobs=0,
        arrived_work=0.0,
        completed_work=0.0,
        deadline_misses=0,
        completions=0,
        qos_slack=1.0,
        energy_j=0.0,
    )
