"""Frequency-residency statistics.

Where did each cluster spend its time?  Residency histograms over OPP
indices are the standard way to explain *why* one governor beats
another (racing vs. sitting at "just enough"), and are computed from a
result's recorded interval samples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.sim.result import SimulationResult


@dataclass(frozen=True)
class ResidencyReport:
    """Per-cluster OPP residency of one run.

    Attributes:
        cluster: Cluster name.
        counts: Intervals spent at each OPP index (index = position).
        switches: Number of interval-to-interval OPP changes observed.
    """

    cluster: str
    counts: tuple[int, ...]
    switches: int

    @property
    def total_intervals(self) -> int:
        return sum(self.counts)

    @property
    def fractions(self) -> tuple[float, ...]:
        """Residency as fractions of the run."""
        total = self.total_intervals
        if total == 0:
            raise SimulationError("residency report has no samples")
        return tuple(c / total for c in self.counts)

    @property
    def mean_opp(self) -> float:
        """Time-weighted mean OPP index."""
        total = self.total_intervals
        if total == 0:
            raise SimulationError("residency report has no samples")
        return sum(i * c for i, c in enumerate(self.counts)) / total

    @property
    def switch_rate(self) -> float:
        """OPP switches per interval, in [0, 1]."""
        total = self.total_intervals
        return self.switches / total if total else 0.0

    def render(self, width: int = 30) -> str:
        """An ASCII residency histogram."""
        peak = max(self.counts) if self.counts else 0
        lines = [f"{self.cluster}: mean OPP {self.mean_opp:.2f}, "
                 f"switch rate {self.switch_rate:.2%}"]
        for i, count in enumerate(self.counts):
            bar = "█" * (count * width // peak if peak else 0)
            lines.append(f"  opp {i:2d} | {bar} {count}")
        return "\n".join(lines)


def residency(result: SimulationResult, n_opps: dict[str, int] | None = None
              ) -> dict[str, ResidencyReport]:
    """Compute per-cluster residency from a result's samples.

    Args:
        result: A run executed with ``record_samples=True``.
        n_opps: Optional OPP-table sizes per cluster (histogram lengths);
            inferred from the highest index seen when omitted.

    Raises:
        SimulationError: If the result carries no samples.
    """
    if not result.samples:
        raise SimulationError(
            "result has no samples; run the simulator with record_samples=True"
        )
    clusters = list(result.samples[0].opp_indices)
    reports: dict[str, ResidencyReport] = {}
    for name in clusters:
        series = [s.opp_indices[name] for s in result.samples]
        size = (n_opps or {}).get(name, max(series) + 1)
        if size <= max(series):
            raise SimulationError(
                f"cluster {name!r}: n_opps {size} smaller than observed "
                f"index {max(series)}"
            )
        counts = [0] * size
        for idx in series:
            counts[idx] += 1
        switches = sum(1 for a, b in zip(series, series[1:]) if a != b)
        reports[name] = ResidencyReport(
            cluster=name, counts=tuple(counts), switches=switches
        )
    return reports
