"""Task-to-cluster scheduling.

Mobile big.LITTLE kernels use HMP/EAS-style placement: work that a
LITTLE core can finish inside its deadline stays on the LITTLE cluster;
demanding single-threaded work migrates to the big cluster.  The
scheduler here makes that placement per work unit at release time, using
only information a kernel would have: the unit's demand estimate, its
deadline, per-cluster peak capacity, and the current backlog.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.soc.chip import Chip
from repro.workload.task import WorkUnit


class Scheduler(ABC):
    """Maps released work units to cluster names."""

    @abstractmethod
    def assign(
        self, unit: WorkUnit, chip: Chip, backlog_work: dict[str, float], now_s: float
    ) -> str:
        """Choose the cluster that will run ``unit``.

        Args:
            unit: The newly released work unit.
            chip: The chip being simulated.
            backlog_work: Pending work (reference cycles) per cluster name.
            now_s: Current simulation time.

        Returns:
            The chosen cluster's name.
        """


@dataclass
class HMPScheduler(Scheduler):
    """Deadline-aware heterogeneous placement.

    A unit goes to the smallest (lowest peak-capacity) cluster that could
    still meet the unit's deadline at full tilt with the current backlog
    in front of it, with a safety margin.  If no cluster qualifies, the
    highest-capacity cluster takes it.

    Attributes:
        margin: Capacity safety factor; 0.8 means plan to use at most
            80 % of a cluster's peak rate (headroom for jitter).
    """

    margin: float = 0.8

    def __post_init__(self) -> None:
        if not 0 < self.margin <= 1:
            raise ConfigurationError(f"margin must be in (0, 1]: {self.margin}")

    def assign(
        self, unit: WorkUnit, chip: Chip, backlog_work: dict[str, float], now_s: float
    ) -> str:
        time_left = max(unit.deadline_s - now_s, 1e-6)
        # Order clusters by single-thread peak capacity, smallest first.
        ranked = sorted(
            chip.clusters,
            key=lambda c: c.spec.core.capacity * c.spec.opp_table.max_freq_hz,
        )
        for cluster in ranked:
            peak_1t = (
                cluster.spec.core.capacity
                * cluster.spec.opp_table.max_freq_hz
                * min(unit.min_parallelism, cluster.n_cores)
            )
            peak_cluster = (
                cluster.spec.core.capacity
                * cluster.spec.opp_table.max_freq_hz
                * cluster.n_cores
            )
            backlog = backlog_work.get(cluster.spec.name, 0.0)
            # The unit itself is rate-limited by its parallelism; the backlog
            # in front of it drains at full cluster rate.
            needed_s = unit.work / (peak_1t * self.margin) + backlog / (
                peak_cluster * self.margin
            )
            if needed_s <= time_left:
                return cluster.spec.name
        return ranked[-1].spec.name


@dataclass
class PinnedScheduler(Scheduler):
    """Sends every unit to one named cluster (for tests and ablations)."""

    cluster_name: str

    def assign(
        self, unit: WorkUnit, chip: Chip, backlog_work: dict[str, float], now_s: float
    ) -> str:
        if self.cluster_name not in chip.cluster_names:
            raise ConfigurationError(
                f"pinned cluster {self.cluster_name!r} not on chip "
                f"{chip.name!r} (has {chip.cluster_names})"
            )
        return self.cluster_name
