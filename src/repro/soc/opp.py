"""Operating performance points (OPPs) and OPP tables.

An OPP is a (frequency, voltage) pair at which a DVFS domain may run.
Real mobile SoCs publish a discrete OPP table per cluster; governors and
the RL policy select an *index* into that table rather than an arbitrary
frequency, exactly as the Linux cpufreq core does.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import OPPError


@dataclass(frozen=True, order=True)
class OperatingPoint:
    """A single DVFS operating point.

    Attributes:
        freq_hz: Clock frequency in hertz.  Must be positive.
        voltage_v: Supply voltage in volts.  Must be positive.
    """

    freq_hz: float
    voltage_v: float

    def __post_init__(self) -> None:
        if self.freq_hz <= 0:
            raise OPPError(f"OPP frequency must be positive, got {self.freq_hz}")
        if self.voltage_v <= 0:
            raise OPPError(f"OPP voltage must be positive, got {self.voltage_v}")

    @property
    def freq_mhz(self) -> float:
        """Frequency in megahertz, for human-readable reporting."""
        return self.freq_hz / 1e6


class OPPTable:
    """An ordered, validated table of operating points for one DVFS domain.

    The table is sorted by ascending frequency and requires voltage to be
    non-decreasing with frequency (higher clocks never need *less*
    voltage), which is how vendor OPP tables are specified.

    Args:
        points: Operating points in any order; duplicates (by frequency)
            are rejected.

    Raises:
        OPPError: If the table is empty, contains duplicate frequencies,
            or voltage decreases with frequency.
    """

    def __init__(self, points: Iterable[OperatingPoint]):
        pts = sorted(points, key=lambda p: p.freq_hz)
        if not pts:
            raise OPPError("OPP table must contain at least one point")
        for prev, cur in zip(pts, pts[1:]):
            if cur.freq_hz == prev.freq_hz:
                raise OPPError(f"duplicate OPP frequency {cur.freq_hz} Hz")
            if cur.voltage_v < prev.voltage_v:
                raise OPPError(
                    "OPP voltage must be non-decreasing with frequency: "
                    f"{cur.freq_mhz:.0f} MHz @ {cur.voltage_v} V follows "
                    f"{prev.freq_mhz:.0f} MHz @ {prev.voltage_v} V"
                )
        self._points: tuple[OperatingPoint, ...] = tuple(pts)
        self._freqs: tuple[float, ...] = tuple(p.freq_hz for p in pts)

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[OperatingPoint]:
        return iter(self._points)

    def __getitem__(self, index: int) -> OperatingPoint:
        if not -len(self._points) <= index < len(self._points):
            raise OPPError(
                f"OPP index {index} out of range for table of {len(self)} points"
            )
        return self._points[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OPPTable):
            return NotImplemented
        return self._points == other._points

    def __repr__(self) -> str:
        lo, hi = self.min_freq_hz / 1e6, self.max_freq_hz / 1e6
        return f"OPPTable({len(self)} points, {lo:.0f}-{hi:.0f} MHz)"

    # -- lookups -------------------------------------------------------------

    @property
    def points(self) -> tuple[OperatingPoint, ...]:
        """All operating points, ascending by frequency."""
        return self._points

    @property
    def frequencies_hz(self) -> tuple[float, ...]:
        """All frequencies in hertz, ascending."""
        return self._freqs

    @property
    def min_freq_hz(self) -> float:
        return self._freqs[0]

    @property
    def max_freq_hz(self) -> float:
        return self._freqs[-1]

    @property
    def max_index(self) -> int:
        return len(self._points) - 1

    def clamp_index(self, index: int) -> int:
        """Clamp an arbitrary integer to a valid OPP index."""
        return max(0, min(index, self.max_index))

    def index_of(self, freq_hz: float) -> int:
        """Return the index of an exact frequency.

        Raises:
            OPPError: If the frequency is not in the table.
        """
        i = bisect_left(self._freqs, freq_hz)
        if i < len(self._freqs) and self._freqs[i] == freq_hz:
            return i
        raise OPPError(f"frequency {freq_hz} Hz not in OPP table")

    def ceil_index(self, freq_hz: float) -> int:
        """Index of the lowest OPP with frequency >= ``freq_hz``.

        Frequencies above the table maximum clamp to the top OPP.  This is
        the lookup governors use to satisfy a computed frequency target
        ("give me at least this much").
        """
        i = bisect_left(self._freqs, freq_hz)
        return min(i, self.max_index)

    def floor_index(self, freq_hz: float) -> int:
        """Index of the highest OPP with frequency <= ``freq_hz``.

        Frequencies below the table minimum clamp to the bottom OPP.
        """
        i = bisect_left(self._freqs, freq_hz)
        if i < len(self._freqs) and self._freqs[i] == freq_hz:
            return i
        return max(i - 1, 0)


def make_table(freq_mhz: Sequence[float], voltage_v: Sequence[float]) -> OPPTable:
    """Build an :class:`OPPTable` from parallel MHz / volt sequences.

    Args:
        freq_mhz: Frequencies in megahertz.
        voltage_v: Matching supply voltages in volts.

    Raises:
        OPPError: If the sequences differ in length or violate table rules.
    """
    if len(freq_mhz) != len(voltage_v):
        raise OPPError(
            f"frequency list ({len(freq_mhz)}) and voltage list "
            f"({len(voltage_v)}) must have equal length"
        )
    return OPPTable(
        OperatingPoint(freq_hz=f * 1e6, voltage_v=v)
        for f, v in zip(freq_mhz, voltage_v)
    )
