"""CPU cluster: a set of identical cores sharing one DVFS domain.

Mobile MPSoCs gang cores into clusters (e.g. 4x Cortex-A15 + 4x
Cortex-A7); all cores in a cluster share a clock and voltage rail, so a
governor decision applies cluster-wide.  The cluster is the unit the
governors and the RL policy control.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, OPPError
from repro.soc.core import CoreSpec, CoreState
from repro.soc.opp import OperatingPoint, OPPTable


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of one cluster.

    Attributes:
        name: Cluster name, unique within a chip (e.g. ``"big"``).
        core: The core type replicated across the cluster.
        n_cores: Number of cores; must be >= 1.
        opp_table: The DVFS operating points shared by all cores.
    """

    name: str
    core: CoreSpec
    n_cores: int
    opp_table: OPPTable

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ConfigurationError(f"cluster needs at least one core: {self.n_cores}")


class Cluster:
    """Runtime state of one DVFS domain: current OPP plus per-core state.

    Args:
        spec: Static cluster description.
        initial_opp_index: Starting OPP index; defaults to the lowest
            frequency, matching a cold-booted cpufreq policy floor.
    """

    def __init__(self, spec: ClusterSpec, initial_opp_index: int | None = None):
        self.spec = spec
        self.cores: list[CoreState] = [CoreState(spec.core) for _ in range(spec.n_cores)]
        if initial_opp_index is None:
            initial_opp_index = 0
        if not 0 <= initial_opp_index <= spec.opp_table.max_index:
            raise OPPError(
                f"initial OPP index {initial_opp_index} out of range for "
                f"{len(spec.opp_table)}-point table"
            )
        self._opp_index = initial_opp_index

    def __repr__(self) -> str:
        return (
            f"Cluster({self.spec.name!r}, {self.spec.n_cores}x{self.spec.core.name}, "
            f"opp={self._opp_index} @ {self.current_opp.freq_mhz:.0f} MHz)"
        )

    # -- DVFS control ---------------------------------------------------------

    @property
    def opp_index(self) -> int:
        """Index of the currently selected operating point."""
        return self._opp_index

    @property
    def current_opp(self) -> OperatingPoint:
        """The currently selected operating point."""
        return self.spec.opp_table[self._opp_index]

    @property
    def freq_hz(self) -> float:
        """Current cluster clock frequency in hertz."""
        return self.current_opp.freq_hz

    @property
    def voltage_v(self) -> float:
        """Current cluster supply voltage in volts."""
        return self.current_opp.voltage_v

    def set_opp_index(self, index: int) -> None:
        """Switch the DVFS domain to a new operating point.

        Raises:
            OPPError: If the index is out of range.  Governors should clamp
                with :meth:`repro.soc.opp.OPPTable.clamp_index` first.
        """
        if not 0 <= index <= self.spec.opp_table.max_index:
            raise OPPError(
                f"OPP index {index} out of range for cluster {self.spec.name!r}"
            )
        self._opp_index = index

    def step_opp(self, delta: int) -> int:
        """Move the OPP index by ``delta`` steps, clamped to the table.

        Returns:
            The new OPP index.
        """
        self._opp_index = self.spec.opp_table.clamp_index(self._opp_index + delta)
        return self._opp_index

    # -- capacity and accounting ----------------------------------------------

    @property
    def n_cores(self) -> int:
        return self.spec.n_cores

    def cycles_available(self, interval_s: float) -> float:
        """Total raw clock cycles across all cores for one interval."""
        return sum(
            c.spec.cycles_available(self.freq_hz, interval_s) for c in self.cores
        )

    def work_available(self, interval_s: float) -> float:
        """Total capacity-weighted work across all cores for one interval."""
        return sum(c.spec.work_available(self.freq_hz, interval_s) for c in self.cores)

    def max_work_available(self, interval_s: float) -> float:
        """Work available if the cluster ran at its top OPP (for headroom
        computations in the scheduler and QoS-slack features)."""
        top = self.spec.opp_table.max_freq_hz
        return sum(
            c.spec.capacity * top * interval_s for c in self.cores
        )

    @property
    def utilization(self) -> float:
        """Mean per-core utilisation over the previous interval, in [0, 1]."""
        return sum(c.utilization for c in self.cores) / len(self.cores)

    @property
    def max_core_utilization(self) -> float:
        """The busiest core's utilisation — what cpufreq governors react to."""
        return max(c.utilization for c in self.cores)

    def reset(self) -> None:
        """Reset runtime counters and return the OPP to the table floor."""
        for core in self.cores:
            core.reset()
        self._opp_index = 0
