"""The MPSoC: a named collection of clusters with independent DVFS domains."""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.errors import ConfigurationError
from repro.soc.cluster import Cluster, ClusterSpec


class Chip:
    """A multiprocessor system-on-chip built from DVFS clusters.

    The chip owns runtime :class:`~repro.soc.cluster.Cluster` objects and
    provides lookup by name.  Governors attach per cluster; the scheduler
    and power model iterate over all clusters.

    Args:
        name: Chip model name for reporting.
        cluster_specs: Static cluster descriptions; names must be unique.
    """

    def __init__(self, name: str, cluster_specs: Iterable[ClusterSpec]):
        self.name = name
        self.clusters: list[Cluster] = [Cluster(spec) for spec in cluster_specs]
        if not self.clusters:
            raise ConfigurationError("a chip needs at least one cluster")
        names = [c.spec.name for c in self.clusters]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate cluster names: {names}")
        self._by_name: Mapping[str, Cluster] = {
            c.spec.name: c for c in self.clusters
        }

    def __iter__(self) -> Iterator[Cluster]:
        return iter(self.clusters)

    def __len__(self) -> int:
        return len(self.clusters)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{c.spec.name}:{c.spec.n_cores}x{c.spec.core.name}" for c in self.clusters
        )
        return f"Chip({self.name!r}, {inner})"

    def cluster(self, name: str) -> Cluster:
        """Look a cluster up by name.

        Raises:
            ConfigurationError: If no cluster has that name.
        """
        try:
            return self._by_name[name]
        except KeyError:
            raise ConfigurationError(
                f"chip {self.name!r} has no cluster {name!r}; "
                f"available: {sorted(self._by_name)}"
            ) from None

    @property
    def cluster_names(self) -> list[str]:
        """Cluster names in declaration order."""
        return [c.spec.name for c in self.clusters]

    @property
    def n_cores(self) -> int:
        """Total core count across all clusters."""
        return sum(c.n_cores for c in self.clusters)

    def total_work_available(self, interval_s: float) -> float:
        """Capacity-weighted work the whole chip offers this interval at the
        currently selected OPPs."""
        return sum(c.work_available(interval_s) for c in self.clusters)

    def reset(self) -> None:
        """Reset every cluster's runtime state (OPPs return to the floor)."""
        for cluster in self.clusters:
            cluster.reset()
