"""Building chips from device-tree-style descriptions.

Vendors publish OPP tables and cluster topologies in device-tree
sources; this module accepts the same information as a plain dict (or a
JSON file) and builds a validated :class:`~repro.soc.chip.Chip`, so new
SoCs can be described as data rather than code.

Schema::

    {
      "name": "my-soc",
      "clusters": [
        {
          "name": "big",
          "cores": 4,
          "core": {"name": "A72", "capacity": 2.2,
                   "ceff_f": 5.5e-10, "leak_a_per_v": 0.10,
                   "is_big": true},
          "opps": [[500, 0.90], [1000, 1.00], [2000, 1.25]]
        }
      ]
    }

OPP entries are ``[freq_mhz, voltage_v]`` pairs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ConfigurationError
from repro.soc.chip import Chip
from repro.soc.cluster import ClusterSpec
from repro.soc.core import CoreSpec
from repro.soc.opp import make_table

_CORE_FIELDS = {"name", "capacity", "ceff_f", "leak_a_per_v", "is_big"}
_CLUSTER_FIELDS = {"name", "cores", "core", "opps"}


def chip_from_dict(data: Mapping[str, Any]) -> Chip:
    """Build a chip from a device-tree-style dict.

    Raises:
        ConfigurationError: On missing/unknown fields or any value the
            underlying spec classes reject.
    """
    try:
        name = data["name"]
        clusters = data["clusters"]
    except (KeyError, TypeError) as exc:
        raise ConfigurationError(f"chip description needs 'name' and 'clusters': {exc}") from exc
    if not isinstance(clusters, list) or not clusters:
        raise ConfigurationError("'clusters' must be a non-empty list")
    specs = [_cluster_from_dict(c, i) for i, c in enumerate(clusters)]
    return Chip(str(name), specs)


def _cluster_from_dict(data: Mapping[str, Any], index: int) -> ClusterSpec:
    if not isinstance(data, Mapping):
        raise ConfigurationError(f"cluster {index}: expected a mapping")
    unknown = set(data) - _CLUSTER_FIELDS
    if unknown:
        raise ConfigurationError(
            f"cluster {index}: unknown fields {sorted(unknown)}"
        )
    missing = _CLUSTER_FIELDS - set(data)
    if missing:
        raise ConfigurationError(
            f"cluster {index}: missing fields {sorted(missing)}"
        )
    core_data = data["core"]
    if not isinstance(core_data, Mapping):
        raise ConfigurationError(f"cluster {index}: 'core' must be a mapping")
    unknown_core = set(core_data) - _CORE_FIELDS
    if unknown_core:
        raise ConfigurationError(
            f"cluster {index}: unknown core fields {sorted(unknown_core)}"
        )
    try:
        core = CoreSpec(
            name=str(core_data["name"]),
            capacity=float(core_data["capacity"]),
            ceff_f=float(core_data["ceff_f"]),
            leak_a_per_v=float(core_data["leak_a_per_v"]),
            is_big=bool(core_data.get("is_big", False)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"cluster {index}: bad core spec: {exc}") from exc

    opps = data["opps"]
    if not isinstance(opps, list) or not opps:
        raise ConfigurationError(f"cluster {index}: 'opps' must be a non-empty list")
    try:
        freqs = [float(entry[0]) for entry in opps]
        volts = [float(entry[1]) for entry in opps]
    except (TypeError, ValueError, IndexError) as exc:
        raise ConfigurationError(
            f"cluster {index}: OPP entries must be [freq_mhz, voltage_v]: {exc}"
        ) from exc
    return ClusterSpec(
        name=str(data["name"]),
        core=core,
        n_cores=int(data["cores"]),
        opp_table=make_table(freqs, volts),
    )


def chip_from_json(path: str | Path) -> Chip:
    """Build a chip from a JSON file following the dict schema.

    Raises:
        ConfigurationError: On unreadable/invalid JSON or schema errors.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot load chip from {path}: {exc}") from exc
    return chip_from_dict(data)


def chip_to_dict(chip: Chip) -> dict[str, Any]:
    """The inverse: serialise a chip back to the dict schema."""
    return {
        "name": chip.name,
        "clusters": [
            {
                "name": c.spec.name,
                "cores": c.spec.n_cores,
                "core": {
                    "name": c.spec.core.name,
                    "capacity": c.spec.core.capacity,
                    "ceff_f": c.spec.core.ceff_f,
                    "leak_a_per_v": c.spec.core.leak_a_per_v,
                    "is_big": c.spec.core.is_big,
                },
                "opps": [
                    [p.freq_mhz, p.voltage_v] for p in c.spec.opp_table
                ],
            }
            for c in chip.clusters
        ],
    }
