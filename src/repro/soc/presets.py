"""Ready-made chip configurations.

The flagship preset models an Exynos 5422-class big.LITTLE part (4x
Cortex-A15 + 4x Cortex-A7), the canonical mobile MPSoC of the paper's
era.  OPP frequencies follow the published cpufreq tables for that part;
voltages follow the typical published DVFS curves.  Absolute calibration
is not the goal — the preset preserves the *ratios* (big:LITTLE power,
frequency range, OPP granularity) that drive governor behaviour.
"""

from __future__ import annotations

from repro.soc.chip import Chip
from repro.soc.cluster import ClusterSpec
from repro.soc.core import BIG_CORE, LITTLE_CORE, CoreSpec
from repro.soc.opp import OPPTable, make_table

# Exynos 5422 A15 cluster exposes 200 MHz steps from 200 MHz to 2.0 GHz.
_BIG_FREQS_MHZ = [200, 400, 600, 800, 1000, 1200, 1400, 1600, 1800, 2000]
_BIG_VOLTS = [0.90, 0.92, 0.95, 0.98, 1.02, 1.06, 1.11, 1.16, 1.22, 1.3625]

# A7 cluster: 200 MHz to 1.4 GHz.
_LITTLE_FREQS_MHZ = [200, 400, 600, 800, 1000, 1200, 1400]
_LITTLE_VOLTS = [0.90, 0.92, 0.95, 1.00, 1.05, 1.12, 1.20]


def big_opp_table() -> OPPTable:
    """OPP table for the big (Cortex-A15-class) cluster."""
    return make_table(_BIG_FREQS_MHZ, _BIG_VOLTS)


def little_opp_table() -> OPPTable:
    """OPP table for the LITTLE (Cortex-A7-class) cluster."""
    return make_table(_LITTLE_FREQS_MHZ, _LITTLE_VOLTS)


def exynos5422() -> Chip:
    """A big.LITTLE 4+4 MPSoC modelled on the Exynos 5422.

    Returns:
        A fresh :class:`~repro.soc.chip.Chip` with ``"big"`` and
        ``"little"`` clusters, OPPs at the table floor.
    """
    return Chip(
        "exynos5422",
        [
            ClusterSpec("big", BIG_CORE, n_cores=4, opp_table=big_opp_table()),
            ClusterSpec("little", LITTLE_CORE, n_cores=4, opp_table=little_opp_table()),
        ],
    )


def symmetric_quad() -> Chip:
    """A symmetric 4-core chip with a single mid-range cluster.

    Used by the companion paper's symmetric-CPU experiments and handy for
    tests that want one DVFS domain.
    """
    core = CoreSpec(name="A53", capacity=1.2, ceff_f=2.5e-10, leak_a_per_v=0.05)
    freqs = [300, 500, 700, 900, 1100, 1300, 1500, 1700]
    volts = [0.90, 0.93, 0.96, 1.00, 1.04, 1.09, 1.15, 1.22]
    return Chip(
        "symmetric-quad",
        [ClusterSpec("cpu", core, n_cores=4, opp_table=make_table(freqs, volts))],
    )


def tiny_test_chip() -> Chip:
    """A minimal 1-cluster, 1-core, 3-OPP chip for fast unit tests."""
    core = CoreSpec(name="T", capacity=1.0, ceff_f=1e-10, leak_a_per_v=0.01)
    return Chip(
        "tiny",
        [
            ClusterSpec(
                "cpu",
                core,
                n_cores=1,
                opp_table=make_table([500, 1000, 1500], [0.9, 1.0, 1.1]),
            )
        ],
    )


PRESETS = {
    "exynos5422": exynos5422,
    "symmetric-quad": symmetric_quad,
    "tiny": tiny_test_chip,
}
"""Registry of chip presets by name, used by the CLI and benches."""
