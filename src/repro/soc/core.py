"""CPU core models.

A core is described by its microarchitectural *capacity* (instructions
retired per cycle relative to a reference core), its effective switched
capacitance (which sets dynamic power), and leakage parameters.  Cores do
not own a frequency — frequency belongs to the cluster's DVFS domain —
but they convert (frequency, utilisation) into executed cycles and power.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CoreSpec:
    """Static description of one CPU core.

    Attributes:
        name: Human-readable core name (e.g. ``"A15"`` or ``"A7"``).
        capacity: Relative per-cycle throughput.  A core with capacity 2.0
            retires twice the work per clock of a capacity-1.0 core; used
            by the scheduler to compare clusters and by work draining.
        ceff_f: Effective switched capacitance in farads.  Dynamic power is
            ``ceff_f * V^2 * f`` at 100 % activity.
        leak_a_per_v: Leakage conductance coefficient in amperes per volt at
            the reference temperature; static power is
            ``leak_a_per_v * V^2`` scaled by the thermal model.
        is_big: True for the high-performance ("big") core type.  Only used
            for reporting and scheduler affinity heuristics.
    """

    name: str
    capacity: float
    ceff_f: float
    leak_a_per_v: float
    is_big: bool = False

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigurationError(f"core capacity must be positive: {self.capacity}")
        if self.ceff_f <= 0:
            raise ConfigurationError(f"core Ceff must be positive: {self.ceff_f}")
        if self.leak_a_per_v < 0:
            raise ConfigurationError(
                f"core leakage coefficient must be non-negative: {self.leak_a_per_v}"
            )

    def cycles_available(self, freq_hz: float, interval_s: float) -> float:
        """Raw clock cycles this core offers in one interval at ``freq_hz``."""
        if freq_hz < 0 or interval_s < 0:
            raise ConfigurationError("frequency and interval must be non-negative")
        return freq_hz * interval_s

    def work_available(self, freq_hz: float, interval_s: float) -> float:
        """Capacity-weighted work units (reference-core cycles) per interval.

        This is the quantity the scheduler balances: a big core at the same
        clock offers ``capacity`` times the work of the reference core.
        """
        return self.cycles_available(freq_hz, interval_s) * self.capacity


@dataclass
class CoreState:
    """Mutable per-core runtime state tracked by the simulator.

    Attributes:
        spec: The static core description.
        utilization: Fraction of the previous interval the core spent
            executing work, in [0, 1].
        busy_cycles: Cumulative executed cycles since reset.
        idle: True when the core ran no work in the previous interval.
    """

    spec: CoreSpec
    utilization: float = 0.0
    busy_cycles: float = 0.0
    idle: bool = True
    _peak_utilization: float = field(default=0.0, repr=False)

    def record_interval(self, used_cycles: float, freq_hz: float, interval_s: float) -> None:
        """Account one simulated interval of execution.

        Args:
            used_cycles: Clock cycles actually spent executing work.
            freq_hz: The clock frequency during the interval.
            interval_s: Interval length in seconds.

        Raises:
            ConfigurationError: If more cycles were used than available.
        """
        available = self.spec.cycles_available(freq_hz, interval_s)
        if used_cycles < 0:
            raise ConfigurationError(f"used cycles must be non-negative: {used_cycles}")
        # Tolerate tiny float overshoot from the drain loop.
        if used_cycles > available * (1 + 1e-9) + 1e-6:
            raise ConfigurationError(
                f"core {self.spec.name} used {used_cycles:.3e} cycles but only "
                f"{available:.3e} were available"
            )
        used_cycles = min(used_cycles, available)
        self.utilization = used_cycles / available if available > 0 else 0.0
        self.busy_cycles += used_cycles
        self.idle = used_cycles == 0
        self._peak_utilization = max(self._peak_utilization, self.utilization)

    @property
    def peak_utilization(self) -> float:
        """Highest interval utilisation observed since reset."""
        return self._peak_utilization

    def reset(self) -> None:
        """Clear all runtime counters back to the post-construction state."""
        self.utilization = 0.0
        self.busy_cycles = 0.0
        self.idle = True
        self._peak_utilization = 0.0


# Published-order-of-magnitude parameters for Cortex-A15 / Cortex-A7 class
# cores (Exynos 5422-era 28 nm).  Absolute values are representative, not
# measured; what matters for the reproduction is the big:LITTLE power and
# capacity ratios.
BIG_CORE = CoreSpec(name="A15", capacity=2.0, ceff_f=6.0e-10, leak_a_per_v=0.12, is_big=True)
LITTLE_CORE = CoreSpec(name="A7", capacity=1.0, ceff_f=1.5e-10, leak_a_per_v=0.03, is_big=False)
