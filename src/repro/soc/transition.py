"""DVFS transition costs.

An OPP change is not free: the voltage regulator ramps, the PLL relocks,
and the cluster stalls meanwhile (tens of microseconds on mobile parts).
Thrashy governors pay this cost every interval; the paper's motivation
for a low-overhead policy includes exactly this "runtime overhead".

The engine applies the stall as lost execution time in the switching
interval and adds the transition energy to the cluster's bill.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DVFSTransitionModel:
    """Latency and energy of one OPP switch.

    Attributes:
        latency_s: Cluster stall per transition (regulator ramp + PLL
            relock); mobile cpufreq drivers report 50-300 us.
        rail_capacitance_f: Effective regulator output capacitance; the
            energy of a voltage step is ``C * |V_new^2 - V_old^2| / 2``.
        pll_energy_j: Fixed PLL relock energy per transition.
    """

    latency_s: float = 100e-6
    rail_capacitance_f: float = 10e-6
    pll_energy_j: float = 1e-6

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.rail_capacitance_f < 0 or self.pll_energy_j < 0:
            raise ConfigurationError("transition costs must be non-negative")

    def energy_j(self, v_from: float, v_to: float) -> float:
        """Energy of one transition between two rail voltages."""
        if v_from < 0 or v_to < 0:
            raise ConfigurationError("voltages must be non-negative")
        rail = 0.5 * self.rail_capacitance_f * abs(v_to * v_to - v_from * v_from)
        return rail + self.pll_energy_j
