"""MPSoC substrate: cores, clusters, OPP tables, and chip presets."""

from repro.soc.chip import Chip
from repro.soc.cluster import Cluster, ClusterSpec
from repro.soc.core import BIG_CORE, LITTLE_CORE, CoreSpec, CoreState
from repro.soc.opp import OperatingPoint, OPPTable, make_table
from repro.soc.presets import (
    PRESETS,
    exynos5422,
    symmetric_quad,
    tiny_test_chip,
)
from repro.soc.devicetree import chip_from_dict, chip_from_json, chip_to_dict
from repro.soc.transition import DVFSTransitionModel

__all__ = [
    "BIG_CORE",
    "LITTLE_CORE",
    "Chip",
    "Cluster",
    "ClusterSpec",
    "CoreSpec",
    "CoreState",
    "DVFSTransitionModel",
    "OPPTable",
    "OperatingPoint",
    "PRESETS",
    "chip_from_dict",
    "chip_from_json",
    "chip_to_dict",
    "exynos5422",
    "make_table",
    "symmetric_quad",
    "tiny_test_chip",
]
