"""The content-addressed run cache.

A fleet grid re-runs the same (spec, code) pairs constantly — repeated
``repro fleet`` invocations, overlapping sweeps, CI re-runs — and every
one of those jobs is deterministic in its spec alone (see
:mod:`repro.fleet.worker`).  The cache exploits that determinism: a
completed job's measurement is stored under a key derived *only* from
content —

    sha256(canonical JSON of {schema, engine_version, spec.to_mapping()})

— so equal specs collide on purpose and anything that could change the
numbers (the spec itself, the engine's simulated-numbers version
:data:`repro.sim.engine.ENGINE_VERSION`, the cache schema) changes the
key and silently invalidates old entries.  No timestamps, hostnames or
git SHAs participate: a hit is exactly "this code would recompute this
spec to these numbers".

Entries are one JSON file per key under the cache root
(``.repro/cache`` by default, overridden by the ``REPRO_CACHE_DIR``
environment variable or an explicit path).  Writes are atomic
(temp-file + rename) and **must** go through :meth:`RunCache.store` —
lint rule RPL601 flags ad-hoc writes under a cache directory, mirroring
the perf ledger's RPL501 discipline.

Jobs whose results depend on more than the serialisable spec — a
``chip_obj`` escape hatch, a ``policy_config`` override, metric
snapshots or trace files that capture *this* execution — are not
cacheable and bypass the cache entirely (:func:`cacheable`).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import CacheError
from repro.fleet.spec import JobSpec
from repro.fleet.worker import JobMeasurement
from repro.obs import OBS
from repro.sim.engine import ENGINE_VERSION

DEFAULT_CACHE_DIR = ".repro/cache"
"""Default cache root, relative to the working directory."""

CACHE_ENV_VAR = "REPRO_CACHE_DIR"
"""Environment variable overriding the default cache root."""

CACHE_SCHEMA_VERSION = 1
"""Bumped when the entry file shape changes incompatibly."""

#: The measurement fields persisted per entry (all floats).
_MEASUREMENT_FIELDS = (
    "energy_j",
    "mean_qos",
    "deadline_miss_rate",
    "energy_per_qos_j",
    "sim_duration_s",
)


def resolve_cache_dir(path: str | Path | None = None) -> Path:
    """The cache root to use: explicit path, env override, or default."""
    if path is not None:
        return Path(path)
    return Path(os.environ.get(CACHE_ENV_VAR, DEFAULT_CACHE_DIR))


def cacheable(spec: JobSpec) -> bool:
    """Whether a job's result is reusable across runs.

    A spec qualifies when it is fully serialisable (no ``chip_obj`` /
    ``policy_config``) and its measurement carries no per-execution
    artefacts (no metric snapshot, no trace file) — i.e. when two runs
    of the spec are interchangeable down to the last bit.
    """
    return (
        spec.chip_obj is None
        and spec.policy_config is None
        and not spec.collect_metrics
        and spec.trace_dir is None
    )


def cache_key(spec: JobSpec) -> str:
    """The spec's content hash (sha256 hex digest).

    The digest covers the canonical (sorted-keys, no-whitespace) JSON of
    the cache schema version, the engine version, and the spec mapping,
    so a bump to either version constant re-keys the whole cache.

    Raises:
        CacheError: For a non-cacheable spec.
    """
    if not cacheable(spec):
        raise CacheError(
            f"job {spec.job_id} is not cacheable (chip_obj/policy_config/"
            "collect_metrics/trace_dir make its result run-specific)"
        )
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "engine_version": ENGINE_VERSION,
        "spec": spec.to_mapping(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheEntry:
    """One stored result, as listed by :meth:`RunCache.list_entries`."""

    key: str
    job_id: str
    engine_version: str
    created_s: float
    size_bytes: int
    path: str


@dataclass(frozen=True)
class CacheStats:
    """Aggregate cache occupancy, as printed by ``repro cache stats``."""

    root: str
    entries: int
    total_bytes: int


class RunCache:
    """Probe/store access to one cache directory.

    Args:
        root: Cache directory (default: ``REPRO_CACHE_DIR`` env or
            ``.repro/cache``).  Created lazily on the first store.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = resolve_cache_dir(root)

    def path_for(self, key: str) -> Path:
        """The entry file a key maps to."""
        return self.root / f"{key}.json"

    # -- probe / store ---------------------------------------------------

    def probe(self, spec: JobSpec) -> JobMeasurement | None:
        """The cached measurement for ``spec``, or ``None`` on a miss.

        Non-cacheable specs, absent entries, and corrupt/stale entry
        files all count as misses — a probe never raises on cache
        content, so a damaged cache degrades to recomputation rather
        than failure.  Every probe increments the ``cache.probes`` and
        ``cache.hits``/``cache.misses`` counters and emits a
        ``cache.probe`` trace instant when observability is on.
        """
        measurement: JobMeasurement | None = None
        if cacheable(spec):
            measurement = self._read_entry(self.path_for(cache_key(spec)))
        if OBS.enabled:
            m = OBS.metrics
            m.counter("cache.probes").inc()
            m.counter("cache.hits" if measurement else "cache.misses").inc()
            if OBS.tracer.enabled:
                OBS.tracer.instant(
                    "cache.probe",
                    cat="cache",
                    job_id=spec.job_id,
                    hit=measurement is not None,
                )
        return measurement

    def store(self, spec: JobSpec, measurement: JobMeasurement) -> bool:
        """Persist one completed measurement; returns whether it was stored.

        Non-cacheable specs are skipped (``False``).  The write is
        atomic — the entry appears fully formed or not at all — so
        concurrent fleets racing on the same spec simply overwrite each
        other with identical content.

        Raises:
            CacheError: If the cache directory cannot be created or
                written.
        """
        if not cacheable(spec):
            return False
        entry = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": cache_key(spec),
            "engine_version": ENGINE_VERSION,
            "job_id": spec.job_id,
            "created_s": time.time(),
            "spec": spec.to_mapping(),
            "measurement": {
                name: getattr(measurement, name)
                for name in _MEASUREMENT_FIELDS
            },
        }
        path = self.path_for(entry["key"])
        tmp = path.with_suffix(".tmp")
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(entry, sort_keys=True))
            os.replace(tmp, path)
        except OSError as exc:
            raise CacheError(f"cannot write cache entry {path}: {exc}") from exc
        if OBS.enabled:
            OBS.metrics.counter("cache.stores").inc()
        return True

    def _read_entry(self, path: Path) -> JobMeasurement | None:
        """Parse one entry file; any defect is a miss, never an error."""
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(data, dict):
            return None
        if data.get("schema") != CACHE_SCHEMA_VERSION:
            return None
        if data.get("engine_version") != ENGINE_VERSION:
            return None
        fields = data.get("measurement")
        if not isinstance(fields, dict):
            return None
        try:
            return JobMeasurement(
                **{name: float(fields[name]) for name in _MEASUREMENT_FIELDS}
            )
        except (KeyError, TypeError, ValueError):
            return None

    # -- maintenance -----------------------------------------------------

    def list_entries(self) -> list[CacheEntry]:
        """All parseable entries, oldest first (unreadable files skipped)."""
        entries: list[CacheEntry] = []
        for path in sorted(self.root.glob("*.json")):
            try:
                data = json.loads(path.read_text())
                size = path.stat().st_size
            except (OSError, json.JSONDecodeError):
                continue
            if not isinstance(data, dict):
                continue
            entries.append(
                CacheEntry(
                    key=str(data.get("key", path.stem)),
                    job_id=str(data.get("job_id", "?")),
                    engine_version=str(data.get("engine_version", "?")),
                    created_s=float(data.get("created_s", 0.0) or 0.0),
                    size_bytes=size,
                    path=str(path),
                )
            )
        entries.sort(key=lambda e: (e.created_s, e.key))
        return entries

    def stats(self) -> CacheStats:
        """Entry count and total size (zero for an absent root)."""
        entries = 0
        total = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    total += path.stat().st_size
                except OSError:
                    continue
                entries += 1
        return CacheStats(
            root=str(self.root), entries=entries, total_bytes=total
        )

    def clear(self) -> int:
        """Delete every entry file; returns how many were removed."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for path in list(self.root.glob("*.json")) + list(
            self.root.glob("*.tmp")
        ):
            try:
                path.unlink()
            except OSError:
                continue
            removed += path.suffix == ".json"
        return removed
