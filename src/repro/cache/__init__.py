"""Content-addressed caching of completed simulation runs.

See :mod:`repro.cache.store` for the key composition and invalidation
rules.  The public surface:

* :class:`RunCache` — probe/store/stats/clear access to one cache root,
* :func:`cache_key` / :func:`cacheable` — the content hash and the
  "is this job's result reusable" predicate,
* :func:`resolve_cache_dir` — explicit path > ``REPRO_CACHE_DIR`` env >
  ``.repro/cache`` resolution.
"""

from repro.cache.store import (
    CACHE_ENV_VAR,
    CACHE_SCHEMA_VERSION,
    DEFAULT_CACHE_DIR,
    CacheEntry,
    CacheStats,
    RunCache,
    cache_key,
    cacheable,
    resolve_cache_dir,
)

__all__ = [
    "CACHE_ENV_VAR",
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "CacheEntry",
    "CacheStats",
    "RunCache",
    "cache_key",
    "cacheable",
    "resolve_cache_dir",
]
