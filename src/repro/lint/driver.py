"""The incremental, parallel analysis driver behind ``repro check``.

One run = four stages:

1. **Per-file analysis** — each file is parsed once; every registered
   per-file rule runs on it and a :class:`ModuleSummary` is extracted
   from the same tree.  Results are content-addressed in the lint cache
   (:mod:`repro.lint.flow.cache`), so an unchanged file costs one
   sha256 and one JSON read.  With ``jobs > 1`` the cold files fan out
   over a process pool; output order stays deterministic because the
   pool maps over the sorted file list.
2. **Selection** — cached entries hold *all* rules' findings; the run's
   ``--select``/``--ignore`` expansion filters them afterwards, which
   keeps cache entries valid across differently-selected runs.
3. **Flow rules** — the summaries assemble into a
   :class:`~repro.lint.flow.graphs.Project` and the RPL9xx rules run
   over the whole program; their findings pass through the same
   ``# noqa`` discipline via the per-file suppression maps.
4. **Suppression hygiene** — RPL910 flags ``# noqa: RPLnnn`` comments
   that suppressed nothing, now that the full finding set is known.

:func:`repro.lint.engine.check_paths` delegates here, so the engine's
public API gains ``--jobs`` parallelism without changing shape.
"""

from __future__ import annotations

import re
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.engine import (
    CheckResult,
    _guess_project_root,
    all_rules,
    check_source,
    iter_python_files,
    select_rules,
)
from repro.lint.findings import Finding
from repro.lint.flow.cache import (
    CachedAnalysis,
    SummaryCache,
    extra_inputs_digest,
)
from repro.lint.flow.graphs import Project
from repro.lint.flow.rules import FLOW_CODES, check_project
from repro.lint.flow.summary import ModuleSummary, summarize_source

_RPL_CODE_RE = re.compile(r"^RPL[0-9]{3}$")

_UNUSED_NOQA_CODE = "RPL910"
_UNUSED_NOQA_RULE = "suppressions.unused-noqa"


@dataclass
class AnalysisResult(CheckResult):
    """A :class:`CheckResult` plus whole-program extras."""

    cache_hits: int = 0
    cache_misses: int = 0
    flow: bool = False
    project: Project | None = None

    @property
    def counts_by_path(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.path] = out.get(f.path, 0) + 1
        return dict(sorted(out.items()))


def _analyze_one(
    job: tuple[str, str | None, str | None, str],
) -> tuple[CachedAnalysis, bool]:
    """Analyse one file (worker-process entry point; must stay picklable).

    ``job`` is ``(path, project_root, cache_dir, extra_inputs_digest)``
    with ``cache_dir`` ``None`` meaning "no cache".  Returns the full
    analysis and whether it was a cache hit.
    """
    path, root, cache_dir, extra = job
    source = Path(path).read_text(encoding="utf-8")
    cache = SummaryCache(cache_dir) if cache_dir is not None else None
    key = SummaryCache.key(path, source, extra)
    if cache is not None:
        cached = cache.probe(key)
        if cached is not None:
            return cached, True
    result = check_source(source, path, project_root=root)
    summary = summarize_source(source, path)
    analysis = CachedAnalysis(
        findings=tuple(result.findings),
        suppressed=tuple(result.suppressed),
        summary=summary,
    )
    if cache is not None:
        cache.store(key, analysis)
    return analysis, False


def _apply_summary_noqa(
    findings: Iterable[Finding],
    by_path: dict[str, ModuleSummary],
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into (kept, suppressed) via the summaries' noqa maps."""
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for f in findings:
        summary = by_path.get(f.path)
        codes = (
            summary.suppressions.get(f.line, "absent")
            if summary is not None
            else "absent"
        )
        if codes is None or (codes != "absent" and f.code in codes):
            suppressed.append(f)
        else:
            kept.append(f)
    return kept, suppressed


def _unused_noqa_findings(
    summaries: Sequence[ModuleSummary],
    used: set[tuple[str, int, str]],
    selected: set[str],
    *,
    flow: bool,
) -> list[Finding]:
    """The raw RPL910 findings (pre-noqa) for one run.

    ``used`` holds every ``(path, line, code)`` a suppression actually
    consumed.  The exemptions are documented on
    :class:`repro.lint.rules.suppressions.UnusedSuppressionRule`.
    """
    known = set(all_rules())
    findings: list[Finding] = []
    for summary in summaries:
        for line in sorted(summary.suppressions):
            codes = summary.suppressions[line]
            if codes is None:  # bare noqa: attribution impossible
                continue
            for code in codes:
                if code == _UNUSED_NOQA_CODE:
                    continue
                if not _RPL_CODE_RE.match(code):
                    continue  # some other linter's code
                if code in known:
                    if code not in selected:
                        continue  # rule did not run this time
                    if code in FLOW_CODES and not flow:
                        continue  # flow rules did not run this time
                    if (summary.path, line, code) in used:
                        continue
                    reason = f"no {code} finding on this line"
                else:
                    reason = f"{code} is not a registered rule"
                findings.append(
                    Finding(
                        path=summary.path,
                        line=line,
                        col=0,
                        code=_UNUSED_NOQA_CODE,
                        message=(
                            f"unused suppression: {reason}; drop "
                            f"`# noqa: {code}` (dead suppressions hide "
                            "future violations)"
                        ),
                        rule=_UNUSED_NOQA_RULE,
                        line_text=summary.line_text(line),
                    )
                )
    return findings


def analyze_paths(
    paths: Iterable[str | Path],
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    project_root: str | Path | None = None,
    jobs: int = 1,
    flow: bool = True,
    cache: bool = True,
    cache_dir: str | Path | None = None,
) -> AnalysisResult:
    """Lint every Python file under ``paths``, whole-program rules included.

    Args:
        paths: Files and/or directories to expand.
        select: Optional code prefixes to report exclusively.
        ignore: Optional code prefixes to drop.
        project_root: Checkout root for cross-file rule inputs; guessed
            from the first file (pyproject.toml anchor) when ``None``.
        jobs: Worker processes for per-file analysis (1 = in-process).
        flow: Run the RPL9xx whole-program rules.
        cache: Reuse/store per-file analyses in the lint cache.
        cache_dir: Cache root override (default: ``REPRO_LINTCACHE_DIR``
            env or ``.repro/lintcache``).

    Raises:
        LintError: On unparsable sources, missing paths, bad selectors.
    """
    selected = {rule.code for rule in select_rules(select, ignore)}
    files = list(iter_python_files(paths))
    if project_root is None and files:
        project_root = _guess_project_root(files[0])
    extra = extra_inputs_digest(project_root)
    root_str = str(project_root) if project_root is not None else None
    cache_dir_str = (
        str(SummaryCache(cache_dir).root) if cache else None
    )
    worker_jobs = [
        (str(f), root_str, cache_dir_str, extra) for f in files
    ]
    if jobs > 1 and len(worker_jobs) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            analyses = list(pool.map(_analyze_one, worker_jobs))
    else:
        analyses = [_analyze_one(job) for job in worker_jobs]

    hits = sum(1 for _, hit in analyses if hit)
    findings: list[Finding] = []
    suppressed: list[Finding] = []
    all_suppressed: list[Finding] = []
    summaries: list[ModuleSummary] = []
    for analysis, _hit in analyses:
        summaries.append(analysis.summary)
        all_suppressed.extend(analysis.suppressed)
        findings.extend(
            f for f in analysis.findings if f.code in selected
        )
        suppressed.extend(
            f for f in analysis.suppressed if f.code in selected
        )

    project = Project(summaries)
    by_path = {s.path: s for s in summaries}
    flow_suppressed: list[Finding] = []
    if flow:
        flow_codes = selected & FLOW_CODES
        if flow_codes:
            raw = check_project(project, codes=flow_codes)
            kept, flow_suppressed = _apply_summary_noqa(raw, by_path)
            findings.extend(kept)
            suppressed.extend(flow_suppressed)

    if _UNUSED_NOQA_CODE in selected:
        used = {
            (f.path, f.line, f.code)
            for f in [*all_suppressed, *flow_suppressed]
        }
        raw = _unused_noqa_findings(summaries, used, selected, flow=flow)
        kept, dropped = _apply_summary_noqa(raw, by_path)
        findings.extend(kept)
        suppressed.extend(dropped)

    findings.sort()
    suppressed.sort()
    return AnalysisResult(
        findings=findings,
        suppressed=suppressed,
        files_checked=len(files),
        cache_hits=hits,
        cache_misses=len(files) - hits,
        flow=flow,
        project=project,
    )
