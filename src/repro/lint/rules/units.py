"""Unit-consistency rules (RPL101–RPL102).

The codebase carries physical units in identifier suffixes — the
convention :mod:`repro.soc.opp` (``freq_hz`` / ``freq_mhz``) and
:mod:`repro.power.model` (``dynamic_w``, ``energy_j``) established.
Since values are plain floats, a dropped ``* 1e6`` or a watt added to a
milliwatt survives every type checker; the only machine-checkable trace
of the unit is the suffix.  These rules read it:

* **RPL101** — mixed-unit arithmetic: ``a + b``, ``a - b``, or a
  comparison where both operands carry recognised unit suffixes that
  disagree in dimension (``_hz`` vs ``_w``) or in scale (``_hz`` vs
  ``_mhz``, ``_w`` vs ``_mw``).  Multiplication and division are exempt:
  they legitimately combine dimensions.
* **RPL102** — a suffix-less float on a power/energy path: a function
  or property on ``power/``, ``qos/``, ``soc/`` or ``thermal/`` whose
  name says it yields a physical quantity (power, energy, freq, ...)
  and is annotated ``-> float`` must declare the unit in its name
  (``..._w``, ``..._j``, ``..._hz``, ...), or an explicitly
  dimensionless marker (``_frac``, ``_ratio``, ``_norm``, ...).
"""

from __future__ import annotations

import ast

from repro.lint.engine import Rule, register

#: suffix -> (dimension, scale relative to the dimension's base unit)
UNIT_SUFFIXES: dict[str, tuple[str, float]] = {
    "hz": ("frequency", 1.0),
    "khz": ("frequency", 1e3),
    "mhz": ("frequency", 1e6),
    "ghz": ("frequency", 1e9),
    "v": ("voltage", 1.0),
    "mv": ("voltage", 1e-3),
    "w": ("power", 1.0),
    "mw": ("power", 1e-3),
    "uw": ("power", 1e-6),
    "j": ("energy", 1.0),
    "mj": ("energy", 1e-3),
    "uj": ("energy", 1e-6),
    "s": ("time", 1.0),
    "ms": ("time", 1e-3),
    "us": ("time", 1e-6),
    "ns": ("time", 1e-9),
    "c": ("temperature", 1.0),
    "a": ("current", 1.0),
    "ma": ("current", 1e-3),
    "mah": ("charge", 1e-3),
    "pct": ("ratio", 1e-2),
}

#: Suffixes that declare "deliberately dimensionless".
DIMENSIONLESS_SUFFIXES = {
    "frac", "fraction", "ratio", "norm", "scale", "factor", "pct", "percent",
}

#: Name fragments that promise a physical quantity (RPL102 trigger).
_QUANTITY_WORDS = (
    "power", "energy", "freq", "voltage", "temperature", "current",
)

_UNIT_PATH_SCOPE = ()  # RPL101 applies package-wide
_RETURN_PATH_SCOPE = ("power/", "qos/", "soc/", "thermal/")


def unit_of(name: str) -> tuple[str, float] | None:
    """The (dimension, scale) a name's suffix declares, or ``None``.

    Only the token after the final underscore counts, so ``stall_s`` is
    seconds but ``misses`` (no underscore) carries no unit.
    """
    if "_" not in name:
        return None
    suffix = name.rsplit("_", 1)[1]
    return UNIT_SUFFIXES.get(suffix)


def _operand_name(node: ast.expr) -> str | None:
    """The identifier an operand exposes for unit inference."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        # A call's unit is its callee's declared suffix: `energy_j(...)`.
        return _operand_name(node.func)
    return None


def _operand_unit(node: ast.expr) -> tuple[str, str, float] | None:
    """(name, dimension, scale) when the operand's unit is inferable."""
    name = _operand_name(node)
    if name is None:
        return None
    unit = unit_of(name)
    if unit is None:
        return None
    return (name, *unit)


@register
class MixedUnitArithmeticRule(Rule):
    """RPL101: additive/comparative arithmetic across unit suffixes."""

    code = "RPL101"
    name = "units.mixed-arithmetic"
    summary = (
        "adding/subtracting/comparing values whose suffixes declare "
        "different units or scales (e.g. _mhz vs _hz, _w vs _mw)"
    )
    scope = _UNIT_PATH_SCOPE

    def _check_pair(self, node: ast.AST, left: ast.expr, right: ast.expr,
                    verb: str) -> None:
        lu = _operand_unit(left)
        ru = _operand_unit(right)
        if lu is None or ru is None:
            return
        lname, ldim, lscale = lu
        rname, rdim, rscale = ru
        if ldim != rdim:
            self.report(
                node,
                f"{verb} {lname!r} ({ldim}) and {rname!r} ({rdim}) mixes "
                "dimensions; convert one side explicitly",
            )
        elif lscale != rscale:
            self.report(
                node,
                f"{verb} {lname!r} and {rname!r} mixes {ldim} scales "
                f"({lscale:g} vs {rscale:g}); rescale one side explicitly",
            )

    def visit_BinOp(self, node: ast.BinOp) -> None:
        """Check additive arithmetic for unit agreement."""
        if isinstance(node.op, (ast.Add, ast.Sub)):
            verb = "adding" if isinstance(node.op, ast.Add) else "subtracting"
            self._check_pair(node, node.left, node.right, verb)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        """Check each comparison pair for unit agreement."""
        operands = [node.left, *node.comparators]
        for left, right in zip(operands, operands[1:]):
            self._check_pair(node, left, right, "comparing")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        """Check `+=` / `-=` accumulation for unit agreement."""
        if isinstance(node.op, (ast.Add, ast.Sub)):
            self._check_pair(node, node.target, node.value, "accumulating")
        self.generic_visit(node)


def _returns_float(node: ast.FunctionDef) -> bool:
    ret = node.returns
    return isinstance(ret, ast.Name) and ret.id == "float"


@register
class SuffixlessQuantityRule(Rule):
    """RPL102: float-returning quantity functions must declare a unit."""

    code = "RPL102"
    name = "units.suffixless-return"
    summary = (
        "a float-returning function named after a physical quantity on a "
        "power/energy path must carry a unit suffix (_w, _j, _hz, ...)"
    )
    scope = _RETURN_PATH_SCOPE

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Check a function's name for a declared unit."""
        self._check(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Check an async function's name for a declared unit."""
        self._check(node)
        self.generic_visit(node)

    def _check(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        name = node.name
        if name.startswith("_") or not _returns_float(node):  # type: ignore[arg-type]
            return
        if not any(word in name for word in _QUANTITY_WORDS):
            return
        if "_" in name:
            suffix = name.rsplit("_", 1)[1]
            if suffix in UNIT_SUFFIXES or suffix in DIMENSIONLESS_SUFFIXES:
                return
        self.report(
            node,
            f"{name}() returns a float physical quantity without a unit "
            "suffix; name it e.g. "
            f"{name}_j/{name}_w so call sites carry the unit",
        )
