"""Serve-loop discipline rule (RPL701).

The policy server answers decision requests on the asyncio event loop
itself — that is what keeps service latency in the microsecond band the
paper's latency argument is about.  One blocking call inside an async
handler stalls *every* queued request behind it: a ``time.sleep`` or a
synchronous file read in the hot path turns the bounded-queue
backpressure story into head-of-line blocking.

**RPL701** flags, inside ``async def`` bodies anywhere under
:mod:`repro.serve`:

* calls resolving to ``time.sleep`` (use ``asyncio.sleep``);
* synchronous file I/O — bare ``open(...)`` and read/write attribute
  calls (``read_text``, ``write_text``, ``read_bytes``,
  ``write_bytes``, ``.open``) — ship it to a thread with
  ``loop.run_in_executor`` instead, the way simulation jobs and stdin
  reads already are.

Nested synchronous ``def`` bodies are not scanned: defining a helper is
fine, the rule is about what the event loop executes directly.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Rule, register

#: Dotted origins that park the event loop outright.
_SLEEP_ORIGINS = {"time.sleep"}

#: Attribute tails that mean synchronous file I/O on the receiver.
_FILE_IO_ATTRS = {"read_text", "write_text", "read_bytes", "write_bytes", "open"}


def _direct_calls(root: ast.AsyncFunctionDef) -> Iterator[ast.Call]:
    """Calls the event loop would execute directly in ``root``'s body.

    Descends statements and expressions but not nested function
    definitions — sync helpers run only if called, and nested async
    defs get their own visit.
    """
    stack: list[ast.AST] = list(root.body)
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


@register
class AsyncBlockingCallRule(Rule):
    """RPL701: no blocking calls inside ``repro.serve`` async handlers."""

    code = "RPL701"
    name = "serve.async-blocking"
    summary = (
        "blocking call (time.sleep / sync file I/O) inside an async "
        "handler in repro.serve; it stalls every queued request"
    )
    scope = ("serve/",)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Check every call made directly by an async function body."""
        for call in _direct_calls(node):
            self._check(call)
        self.generic_visit(node)

    def _check(self, call: ast.Call) -> None:
        origin = self.ctx.imports.resolve(call.func)
        if origin in _SLEEP_ORIGINS:
            self.report(
                call,
                "time.sleep parks the serve event loop; use "
                "await asyncio.sleep(...)",
            )
            return
        if isinstance(call.func, ast.Name) and call.func.id == "open":
            self.report(
                call,
                "sync open() blocks the serve event loop; move the I/O "
                "to a thread via loop.run_in_executor",
            )
            return
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _FILE_IO_ATTRS
        ):
            self.report(
                call,
                f"sync file I/O (.{call.func.attr}) blocks the serve "
                "event loop; move it to a thread via loop.run_in_executor",
            )
