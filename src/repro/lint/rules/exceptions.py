"""Exception-policy rules (RPL401–RPL402) for the fleet layer.

The fleet's failure-isolation contract (PR 1) is that a crashing job
becomes a structured :class:`~repro.fleet.worker.JobFailure` — never a
silently missing grid row.  A bare ``except:`` (which also swallows
``KeyboardInterrupt`` and worker-timeout ``SystemExit``) or a blind
``except Exception: pass`` breaks that contract invisibly: the sweep
"succeeds" with holes in it and the aggregate statistics shift.

* **RPL401** — bare ``except:`` anywhere in ``fleet/``.
* **RPL402** — an ``except Exception`` / ``except BaseException``
  handler that swallows: it neither re-raises, nor uses the bound
  exception (to wrap it into a failure record), nor logs it.

A broad handler that *records* the failure — like the worker's
``except Exception as exc:`` building a ``JobFailure`` from ``exc`` —
is the pattern these rules exist to protect, and is not flagged.
"""

from __future__ import annotations

import ast

from repro.lint.engine import Rule, register

_FLEET_SCOPE = ("fleet/",)

_BROAD_TYPES = {"Exception", "BaseException"}

_LOG_ROOTS = {"log", "logger", "logging"}


def _handler_type_names(handler: ast.ExceptHandler) -> list[str]:
    t = handler.type
    if t is None:
        return []
    nodes = t.elts if isinstance(t, ast.Tuple) else [t]
    names: list[str] = []
    for n in nodes:
        if isinstance(n, ast.Name):
            names.append(n.id)
        elif isinstance(n, ast.Attribute):
            names.append(n.attr)
    return names


def _body_reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(n, ast.Raise) for n in ast.walk(handler))


def _body_uses_name(handler: ast.ExceptHandler, name: str) -> bool:
    for n in ast.walk(handler):
        if isinstance(n, ast.Name) and n.id == name and isinstance(
            n.ctx, ast.Load
        ):
            return True
    return False


def _body_logs(handler: ast.ExceptHandler) -> bool:
    for n in ast.walk(handler):
        if isinstance(n, ast.Call) and isinstance(n.func, ast.Attribute):
            root = n.func.value
            if isinstance(root, ast.Name) and root.id in _LOG_ROOTS:
                return True
    return False


@register
class BareExceptRule(Rule):
    """RPL401: no bare ``except:`` in the fleet layer."""

    code = "RPL401"
    name = "exceptions.bare-except"
    summary = (
        "bare `except:` in fleet code swallows KeyboardInterrupt and "
        "timeout signals; catch Exception (and record it) instead"
    )
    scope = _FLEET_SCOPE

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        """Flag handlers with no exception type."""
        if node.type is None:
            self.report(
                node,
                "bare `except:` also catches KeyboardInterrupt/SystemExit "
                "and can wedge a worker; catch Exception and convert it "
                "into a JobFailure",
            )
        self.generic_visit(node)


@register
class SwallowedExceptionRule(Rule):
    """RPL402: broad handlers must record, wrap, or re-raise."""

    code = "RPL402"
    name = "exceptions.swallowed"
    summary = (
        "`except Exception` that neither re-raises, uses the bound "
        "error, nor logs it turns worker failures into missing rows"
    )
    scope = _FLEET_SCOPE

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        """Flag broad handlers that drop the failure on the floor."""
        names = _handler_type_names(node)
        if any(n in _BROAD_TYPES for n in names):
            handled = (
                _body_reraises(node)
                or (node.name is not None and _body_uses_name(node, node.name))
                or _body_logs(node)
            )
            if not handled:
                what = " as ".join(filter(None, [" | ".join(names), node.name]))
                self.report(
                    node,
                    f"`except {what}` swallows the failure: bind the "
                    "exception and turn it into a structured failure "
                    "record (or log and re-raise)",
                )
        self.generic_visit(node)
