"""Run-cache discipline rule (RPL601).

The run cache (:mod:`repro.cache`) is content-addressed: every entry
file is named by the sha256 of its job spec and engine version, written
atomically, and validated on read.  A direct write into the cache
directory bypasses all three properties — the entry's name no longer
proves its content, a half-written file can be probed mid-write, and a
schema drift turns into silently-wrong sweep rows instead of a clean
miss.

**RPL601** flags write-ish calls (``json.dump``/``json.dumps``,
``open``, ``write_text``, ``.open``, ``.write``) whose receiver or
arguments name the cache directory — a string constant containing
``".repro/cache"``, the ``REPRO_CACHE_DIR`` variable, or a
``cache_dir``/``cache_path``/``cache_root``-ish name — anywhere outside
:mod:`repro.cache.store` itself, pointing the author at
``RunCache.store()``.  The deliberately narrow name patterns keep
unrelated caches (functools memoisation, CPU caches) out of scope;
this mirrors RPL501's ledger discipline.
"""

from __future__ import annotations

import ast

from repro.lint.engine import Rule, register

#: The one module allowed to touch cache entry files directly.
_BLESSED = "cache/store.py"

#: Call shapes that write data: plain names and attribute tails.
_WRITE_NAMES = {"open"}
_WRITE_ATTRS = {"dump", "dumps", "open", "write", "write_text"}

#: Identifier fragments that mean "the run-cache directory" (not just
#: any cache): the env var, the default path, and dir/path/root names.
_NAME_FRAGMENTS = ("cache_dir", "cache_path", "cache_root")
_STRING_FRAGMENTS = (".repro/cache", "repro_cache_dir")


def _mentions_cache_dir(node: ast.expr) -> bool:
    """Whether any sub-expression names the run-cache directory."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            text = sub.value.lower()
            if any(fragment in text for fragment in _STRING_FRAGMENTS):
                return True
        if isinstance(sub, ast.Name):
            name = sub.id.lower()
            if any(fragment in name for fragment in _NAME_FRAGMENTS):
                return True
            if name == "repro_cache_dir" or name == "cache_env_var":
                return True
        if isinstance(sub, ast.Attribute):
            attr = sub.attr.lower()
            if any(fragment in attr for fragment in _NAME_FRAGMENTS):
                return True
    return False


def _is_write_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in _WRITE_NAMES
    if isinstance(func, ast.Attribute):
        return func.attr in _WRITE_ATTRS
    return False


@register
class AdHocCacheWriteRule(Rule):
    """RPL601: cache entries go through ``repro.cache.RunCache``."""

    code = "RPL601"
    name = "cache.store-discipline"
    summary = (
        "ad-hoc write into the run-cache directory; entries must go "
        "through repro.cache.RunCache so keys stay content-addressed "
        "and writes atomic"
    )

    @classmethod
    def applies_to(cls, module_path: str) -> bool:
        # Everywhere *except* the blessed store module.
        return module_path != _BLESSED

    def run(self) -> None:
        self.visit(self.ctx.tree)

    def visit_Call(self, node: ast.Call) -> None:
        """Flag writes whose receiver or arguments name the cache dir."""
        if _is_write_call(node):
            receiver = (
                node.func.value
                if isinstance(node.func, ast.Attribute)
                else None
            )
            targets = list(node.args) + [kw.value for kw in node.keywords]
            if receiver is not None:
                targets.append(receiver)
            if any(_mentions_cache_dir(t) for t in targets):
                self.report(
                    node,
                    "ad-hoc run-cache write; store results through "
                    "repro.cache.RunCache.store() so entry names stay "
                    "content hashes and writes stay atomic",
                )
        self.generic_visit(node)
