"""Suppression hygiene (RPL910).

A ``# noqa: RPLnnn`` that no longer suppresses anything is a silent
lie: the hazard it documented was fixed (or the rule's scope moved) and
the comment now grants a free pass to any *future* violation on that
line.  RPL910 flags such dead suppressions, the same discipline ruff's
``RUF100`` applies to its own codes.

The check is necessarily a whole-run computation — "did any finding
land on this line?" is only known after every rule (including the
RPL9xx flow rules) has run — so the rule class here is inert per file
and the analysis driver (:mod:`repro.lint.driver`) produces the
findings.  Ground rules, to stay honest about what the run actually
knows:

* only ``RPL``-shaped codes are examined — ``# noqa: F401`` talks to
  some other linter;
* only codes the current run *selected* can be called unused — an
  unselected rule produced no findings by construction;
* flow codes (RPL901–904) are exempt when ``--no-flow`` disabled them;
* an unknown ``RPL`` code is always flagged — it can never suppress
  anything;
* ``RPL910`` itself is never flagged, and a ``# noqa: RPL910`` on the
  line suppresses the unused-suppression finding like any other;
* a bare ``# noqa`` is left alone (it suppresses *everything*, so it
  is "used" whenever any rule could fire — attribution is impossible).
"""

from __future__ import annotations

from repro.lint.engine import Rule, register


@register
class UnusedSuppressionRule(Rule):
    """RPL910: a ``# noqa: RPLnnn`` that suppresses no finding."""

    code = "RPL910"
    name = "suppressions.unused-noqa"
    summary = (
        "`# noqa: RPLnnn` with no matching finding on its line; dead "
        "suppressions hide future violations"
    )

    def run(self) -> None:
        """Per-file pass: nothing to do (computed by the analysis driver)."""
