"""Ops-log discipline rule (RPL801).

The ops log is only queryable because every line has the same shape —
timestamp, kind, trace/request ids, outcome, latencies — which holds
only while :class:`repro.obs.opslog.OpsLogger` is the sole writer (its
``log()`` validates the required fields before appending).  An ad-hoc
``json.dump`` into an ops-log file forks the schema: ``repro ops
summary`` chokes on the line, or ``repro slo gate`` silently scopes it
out and a violation sails through unevaluated.

**RPL801** flags write-ish calls (``json.dump``/``json.dumps``,
``open``, ``write_text``, ``.open``, ``.write``) whose arguments
mention an ops log — a name or string constant containing ``ops_log``
/ ``ops-log`` / ``opslog`` — anywhere outside
:mod:`repro.obs.opslog` itself, pointing the author at
``OpsLogger.log()``.
"""

from __future__ import annotations

import ast

from repro.lint.engine import Rule, register

#: The one module allowed to touch ops-log files directly.
_BLESSED = "obs/opslog.py"

#: Call shapes that write data: plain names and attribute tails.
_WRITE_NAMES = {"open"}
_WRITE_ATTRS = {"dump", "dumps", "open", "write", "write_text"}

#: Spellings that identify an ops log in names and string constants.
_MARKERS = ("ops_log", "ops-log", "opslog")


def _names_ops_log(text: str) -> bool:
    """Whether ``text`` spells an ops log in any accepted form."""
    lowered = text.lower()
    return any(marker in lowered for marker in _MARKERS)


def _mentions_ops_log(node: ast.expr) -> bool:
    """Whether any sub-expression names an ops log."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            if _names_ops_log(sub.value):
                return True
        if isinstance(sub, ast.Name) and _names_ops_log(sub.id):
            return True
        if isinstance(sub, ast.Attribute) and _names_ops_log(sub.attr):
            return True
    return False


def _is_write_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in _WRITE_NAMES
    if isinstance(func, ast.Attribute):
        return func.attr in _WRITE_ATTRS
    return False


@register
class AdHocOpsLogWriteRule(Rule):
    """RPL801: ops-log records go through ``OpsLogger.log()``."""

    code = "RPL801"
    name = "obs.opslog-discipline"
    summary = (
        "ad-hoc write to an ops log; all records must go through "
        "repro.obs.OpsLogger.log() so every line carries the shared "
        "record schema"
    )

    @classmethod
    def applies_to(cls, module_path: str) -> bool:
        # Everywhere *except* the blessed writer module.
        return module_path != _BLESSED

    def run(self) -> None:
        self.visit(self.ctx.tree)

    def visit_Call(self, node: ast.Call) -> None:
        """Flag writes whose receiver or arguments name an ops log."""
        if _is_write_call(node):
            receiver = (
                node.func.value
                if isinstance(node.func, ast.Attribute)
                else None
            )
            targets = list(node.args) + [kw.value for kw in node.keywords]
            if receiver is not None:
                targets.append(receiver)
            if any(_mentions_ops_log(t) for t in targets):
                self.report(
                    node,
                    "ad-hoc ops-log write; append records through "
                    "repro.obs.OpsLogger.log() instead of dumping JSON "
                    "directly, so every record carries the shared schema",
                )
        self.generic_visit(node)
