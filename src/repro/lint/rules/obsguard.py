"""Observability-overhead rule (RPL301).

PR 2's contract is that disabled observability is *zero*-overhead: a
run without a session must be bit-identical to (and as fast as) the
pre-observability engine.  That only holds if every probe — each
``tracer.begin/end/instant`` and ``metrics.counter/gauge/histogram``
call on the hot path — sits behind an enabled-check, because an
unguarded probe on the null tracer still evaluates its arguments
(f-strings, attribute chains, reductions) on every interval.

**RPL301** flags a probe call that is not protected by one of the
recognised guard shapes:

* an enclosing positive guard — ``if tracer:`` / ``if OBS.enabled:``
  (including ``elif`` and ``a and b`` tests that mention the guard);
* a conditional expression — ``x = tracer.begin(...) if tracer else None``;
* an early return before it in the same function —
  ``if not OBS.enabled: return``.

Scope: the hot paths — ``sim/``, ``rl/``, ``core/trainer.py``,
``core/policy.py`` and ``governors/`` — not the CLI or exporters, where
observability is the point and a few attribute checks are noise.
"""

from __future__ import annotations

import ast

from repro.lint.engine import Rule, ancestors, register

#: Receiver roots treated as observability objects.
_PROBE_ROOTS = {"tracer", "metrics"}

#: Method names that are probes when called on a probe root / OBS chain.
_PROBE_METHODS = {
    "begin", "end", "instant", "span",
    "counter", "gauge", "histogram", "inc", "set", "observe",
}


def _attr_chain(node: ast.expr) -> list[str] | None:
    """``OBS.metrics.counter`` → ``["OBS", "metrics", "counter"]``."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return list(reversed(parts))
    return None


def _expr_mentions_guard(node: ast.expr) -> bool:
    """Whether a test expression checks observability enablement."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and (
            sub.id in _PROBE_ROOTS or sub.id.endswith("tracer")
        ):
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == "enabled":
            return True
    return False


def _is_probe_call(node: ast.Call, assigned_from_obs: set[str]) -> bool:
    chain = _attr_chain(node.func)
    if chain is None or len(chain) < 2:
        return False
    root, *rest = chain
    method = rest[-1]
    if method not in _PROBE_METHODS:
        return False
    if root in _PROBE_ROOTS or root.endswith("tracer"):
        return True
    if root == "OBS" and len(chain) >= 3:
        return True
    if root in assigned_from_obs:
        return True
    return False


@register
class UnguardedProbeRule(Rule):
    """RPL301: every obs probe on a hot path needs an enabled-check."""

    code = "RPL301"
    name = "obs.unguarded-probe"
    summary = (
        "tracer./metrics. probe without an enabled-guard on a hot path; "
        "disabled runs must stay bit-identical and zero-overhead"
    )
    scope = ("sim/", "rl/", "core/trainer.py", "core/policy.py", "governors/")

    def run(self) -> None:
        self._obs_aliases = self._collect_obs_aliases()
        self.visit(self.ctx.tree)

    def _collect_obs_aliases(self) -> set[str]:
        """Names bound from the OBS hub (``m = OBS.metrics``)."""
        aliases: set[str] = set()
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                chain = None
                value = node.value
                if isinstance(value, ast.IfExp):
                    value = value.body
                if isinstance(value, ast.Attribute):
                    chain = _attr_chain(value)
                if chain and chain[0] == "OBS":
                    aliases.add(target.id)
        return aliases

    def visit_Call(self, node: ast.Call) -> None:
        """Flag probe calls with no recognised enabled-guard."""
        if _is_probe_call(node, self._obs_aliases) and not self._guarded(node):
            chain = _attr_chain(node.func) or ["probe"]
            self.report(
                node,
                f"unguarded probe {'.'.join(chain)}(...); wrap it in "
                "`if tracer:` / `if OBS.enabled:` (or bail out early with "
                "`if not OBS.enabled: return`) so disabled runs pay nothing",
            )
        self.generic_visit(node)

    # -- guard detection ---------------------------------------------------

    def _guarded(self, node: ast.Call) -> bool:
        prev: ast.AST = node
        for anc in ancestors(node):
            if isinstance(anc, ast.If) and _expr_mentions_guard(anc.test):
                negated = isinstance(anc.test, ast.UnaryOp) and isinstance(
                    anc.test.op, ast.Not
                )
                in_body = prev in anc.body
                if (in_body and not negated) or (not in_body and negated):
                    return True
            if isinstance(anc, ast.IfExp) and _expr_mentions_guard(anc.test):
                if prev is anc.body:
                    return True
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return self._early_return_before(anc, node)
            prev = anc
        return False

    @staticmethod
    def _early_return_before(
        func: ast.FunctionDef | ast.AsyncFunctionDef, node: ast.Call
    ) -> bool:
        """``if not OBS.enabled: return`` earlier in the function body."""
        for stmt in func.body:
            if stmt.lineno >= node.lineno:
                break
            if not isinstance(stmt, ast.If) or stmt.orelse:
                continue
            test = stmt.test
            is_negated = isinstance(test, ast.UnaryOp) and isinstance(
                test.op, ast.Not
            )
            if not is_negated or not _expr_mentions_guard(test.operand):  # type: ignore[union-attr]
                continue
            if all(
                isinstance(s, (ast.Return, ast.Raise, ast.Continue))
                for s in stmt.body
            ):
                return True
        return False
