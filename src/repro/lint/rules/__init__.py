"""Rule modules; importing this package registers every rule.

Rule code families:

* ``RPL0xx`` — determinism (:mod:`repro.lint.rules.determinism`)
* ``RPL1xx`` — unit consistency (:mod:`repro.lint.rules.units`)
* ``RPL2xx`` — fixed-point discipline (:mod:`repro.lint.rules.fixedpoint`)
* ``RPL3xx`` — observability overhead (:mod:`repro.lint.rules.obsguard`)
* ``RPL4xx`` — exception policy (:mod:`repro.lint.rules.exceptions`)
* ``RPL5xx`` — performance-ledger discipline
  (:mod:`repro.lint.rules.perfledger`)
* ``RPL6xx`` — run-cache discipline (:mod:`repro.lint.rules.cachedir`)
* ``RPL7xx`` — serve-loop discipline
  (:mod:`repro.lint.rules.asyncblocking`)
* ``RPL801`` — ops-log discipline (:mod:`repro.lint.rules.opslog`)
* ``RPL802`` — learning-ledger discipline
  (:mod:`repro.lint.rules.learnlog`)
* ``RPL90x`` — whole-program flow analysis
  (:mod:`repro.lint.flow.rules`): architecture layering,
  interprocedural determinism taint, asyncio shared-state hazards,
  transitive blocking calls
* ``RPL910`` — suppression hygiene
  (:mod:`repro.lint.rules.suppressions`)
"""

from repro.lint.flow import rules as _flow_rules  # noqa: F401
from repro.lint.rules import (  # noqa: F401
    asyncblocking,
    cachedir,
    determinism,
    exceptions,
    fixedpoint,
    learnlog,
    obsguard,
    opslog,
    perfledger,
    suppressions,
    units,
)
