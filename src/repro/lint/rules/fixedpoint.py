"""Fixed-point discipline rules (RPL201–RPL203).

The FPGA datapath model (:mod:`repro.hw.datapath`,
:mod:`repro.hw.fixed_point`) must stay faithful to integer RTL: every
quantity is a raw integer in a declared Q-format, arithmetic saturates,
and the only legal float crossings are the declared conversion helpers
(quantize/dequantize and friends).  A stray float literal or a true
division in the update path silently turns the "3.92x faster, bit-exact
vs software" claim into a float model with extra steps.

* **RPL201** — a float literal in datapath arithmetic outside the
  conversion helpers.  Defaults of config parameters (``gamma: float =
  0.85``) are interface-level and exempt; so are ``__init__`` /
  ``__post_init__`` validation (quantisation happens once at
  configuration time, which *is* a conversion boundary).
* **RPL202** — true division (``/``) outside the conversion helpers;
  hardware divides by shifting.
* **RPL203** — a ``QFormat(int_bits=..., frac_bits=...)`` literal in
  ``hw/`` whose total width exceeds the MMIO reward field declared in
  :mod:`repro.hw.registers` (``OBS1_REWARD_BITS``): such a format could
  never be carried over the register interface.  The width is parsed
  out of ``registers.py`` at lint time so the register map stays the
  single source of truth.
"""

from __future__ import annotations

import ast

from repro.lint.engine import LintContext, Rule, ancestors, register

_DATAPATH_SCOPE = ("hw/datapath.py", "hw/fixed_point.py")

#: Functions allowed to touch floats / true division: the declared
#: float<->raw conversion boundary of the datapath model.
CONVERSION_HELPERS = {
    "quantize",
    "dequantize",
    "saturate",
    "to_float_table",
    "load_float_table",
    "from_float",
    "max_value",
    "min_value",
    "resolution",
    "alpha",
    "__init__",
    "__post_init__",
}

_FALLBACK_REWARD_BITS = 16


def _enclosing_function(node: ast.AST) -> str | None:
    for anc in ancestors(node):
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return anc.name
    return None


def _in_conversion_helper(node: ast.AST) -> bool:
    name = _enclosing_function(node)
    return name is not None and name in CONVERSION_HELPERS


def _is_default_value(node: ast.AST) -> bool:
    """Whether the node sits in a function signature's default values."""
    for anc in ancestors(node):
        if isinstance(anc, ast.arguments):
            return True
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
            return False
    return False


def _is_annotated_class_default(node: ast.AST) -> bool:
    """Whether the node is a dataclass-style class-level field default."""
    for anc in ancestors(node):
        if isinstance(anc, (ast.AnnAssign, ast.Assign)):
            assign_parent = next(ancestors(anc), None)
            return isinstance(assign_parent, ast.ClassDef)
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
    return False


@register
class FloatLiteralRule(Rule):
    """RPL201: no float literals in datapath arithmetic."""

    code = "RPL201"
    name = "fixed-point.float-literal"
    summary = (
        "datapath arithmetic is raw-integer only; float literals belong "
        "in the declared conversion helpers or config defaults"
    )
    scope = _DATAPATH_SCOPE

    def visit_Constant(self, node: ast.Constant) -> None:
        """Flag float literals outside the conversion boundary."""
        if (
            isinstance(node.value, float)
            and not _in_conversion_helper(node)
            and not _is_default_value(node)
            and not _is_annotated_class_default(node)
        ):
            self.report(
                node,
                f"float literal {node.value!r} in datapath code outside a "
                "conversion helper; fixed-point paths carry raw integers",
            )


@register
class TrueDivisionRule(Rule):
    """RPL202: no true division in datapath arithmetic."""

    code = "RPL202"
    name = "fixed-point.true-division"
    summary = (
        "`/` in datapath code outside a conversion helper; hardware "
        "rescales with shifts, not float division"
    )
    scope = _DATAPATH_SCOPE

    def visit_BinOp(self, node: ast.BinOp) -> None:
        """Flag `/` outside the conversion boundary."""
        if isinstance(node.op, ast.Div) and not _in_conversion_helper(node):
            self.report(
                node,
                "true division in datapath code outside a conversion "
                "helper; use shifts (or move this into a declared helper)",
            )
        self.generic_visit(node)


def _reward_field_bits(ctx: LintContext) -> int:
    """The OBS1 reward field width, parsed from ``hw/registers.py``.

    Falls back to the interface's historical 16 bits when the file (or
    the ``OBS1_REWARD_BITS`` constant) cannot be found — e.g. when
    linting a detached fixture file.
    """
    root = ctx.project_root
    if root is None:
        return _FALLBACK_REWARD_BITS
    for candidate in (
        root / "src" / "repro" / "hw" / "registers.py",
        root / "repro" / "hw" / "registers.py",
        root / "hw" / "registers.py",
    ):
        if candidate.is_file():
            try:
                tree = ast.parse(candidate.read_text(encoding="utf-8"))
            except SyntaxError:
                return _FALLBACK_REWARD_BITS
            for node in ast.walk(tree):
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id == "OBS1_REWARD_BITS"
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, int)
                ):
                    return node.value.value
            return _FALLBACK_REWARD_BITS
    return _FALLBACK_REWARD_BITS


@register
class RegisterWidthRule(Rule):
    """RPL203: Q-format literals must fit the MMIO reward field."""

    code = "RPL203"
    name = "fixed-point.register-width"
    summary = (
        "a QFormat wider than the OBS1 reward field in hw/registers.py "
        "cannot cross the MMIO interface"
    )
    scope = ("hw/",)

    def visit_Call(self, node: ast.Call) -> None:
        """Cross-check literal QFormat widths against the register map."""
        if (
            isinstance(node.func, ast.Name) and node.func.id == "QFormat"
        ) or (
            isinstance(node.func, ast.Attribute) and node.func.attr == "QFormat"
        ):
            widths = self._literal_bits(node)
            if widths is not None:
                int_bits, frac_bits = widths
                width = 1 + int_bits + frac_bits
                limit = _reward_field_bits(self.ctx)
                if width > limit:
                    self.report(
                        node,
                        f"QFormat({int_bits}, {frac_bits}) is {width} bits "
                        f"wide but the OBS1 reward field carries only "
                        f"{limit}; the register map in hw/registers.py is "
                        "the interface contract",
                    )
        self.generic_visit(node)

    @staticmethod
    def _literal_bits(node: ast.Call) -> tuple[int, int] | None:
        values: dict[str, int] = {}
        names = ("int_bits", "frac_bits")
        for i, arg in enumerate(node.args[:2]):
            if isinstance(arg, ast.Constant) and isinstance(arg.value, int):
                values[names[i]] = arg.value
        for kw in node.keywords:
            if (
                kw.arg in names
                and isinstance(kw.value, ast.Constant)
                and isinstance(kw.value.value, int)
            ):
                values[kw.arg] = kw.value.value
        if set(values) == {"int_bits", "frac_bits"}:
            return values["int_bits"], values["frac_bits"]
        return None
