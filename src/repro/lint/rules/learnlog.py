"""Learning-ledger discipline rule (RPL802).

The learning ledger is only gateable because every line has the same
shape — episode, scenario, reward, TD-error stats, epsilon, Q norms,
coverage, churn — which holds only while
:class:`repro.obs.learn.LearnRecorder` is the sole writer (its ``log()``
validates the required fields before appending).  An ad-hoc
``json.dump`` into a learn-log file forks the schema: ``repro learn
report`` chokes on the line, or ``repro learn gate`` silently scopes it
out and a divergent run sails through unevaluated.

**RPL802** flags write-ish calls (``json.dump``/``json.dumps``,
``open``, ``write_text``, ``.open``, ``.write``) whose arguments
mention a learning ledger — a name or string constant containing
``learn_log`` / ``learn-log`` / ``learnlog`` — anywhere outside
:mod:`repro.obs.learn` itself, pointing the author at
``LearnRecorder.log()``.  It is the learning-ledger twin of RPL801
(ops-log discipline).
"""

from __future__ import annotations

import ast

from repro.lint.engine import Rule, register

#: The one module allowed to touch learning-ledger files directly.
_BLESSED = "obs/learn.py"

#: Call shapes that write data: plain names and attribute tails.
_WRITE_NAMES = {"open"}
_WRITE_ATTRS = {"dump", "dumps", "open", "write", "write_text"}

#: Spellings that identify a learning ledger in names and constants.
_MARKERS = ("learn_log", "learn-log", "learnlog")


def _names_learn_log(text: str) -> bool:
    """Whether ``text`` spells a learning ledger in any accepted form."""
    lowered = text.lower()
    return any(marker in lowered for marker in _MARKERS)


def _mentions_learn_log(node: ast.expr) -> bool:
    """Whether any sub-expression names a learning ledger."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            if _names_learn_log(sub.value):
                return True
        if isinstance(sub, ast.Name) and _names_learn_log(sub.id):
            return True
        if isinstance(sub, ast.Attribute) and _names_learn_log(sub.attr):
            return True
    return False


def _is_write_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in _WRITE_NAMES
    if isinstance(func, ast.Attribute):
        return func.attr in _WRITE_ATTRS
    return False


@register
class AdHocLearnLogWriteRule(Rule):
    """RPL802: learning-ledger records go through ``LearnRecorder.log()``."""

    code = "RPL802"
    name = "obs.learnlog-discipline"
    summary = (
        "ad-hoc write to a learning ledger; all records must go through "
        "repro.obs.LearnRecorder.log() so every line carries the shared "
        "per-episode schema"
    )

    @classmethod
    def applies_to(cls, module_path: str) -> bool:
        # Everywhere *except* the blessed writer module.
        return module_path != _BLESSED

    def run(self) -> None:
        self.visit(self.ctx.tree)

    def visit_Call(self, node: ast.Call) -> None:
        """Flag writes whose receiver or arguments name a learn log."""
        if _is_write_call(node):
            receiver = (
                node.func.value
                if isinstance(node.func, ast.Attribute)
                else None
            )
            targets = list(node.args) + [kw.value for kw in node.keywords]
            if receiver is not None:
                targets.append(receiver)
            if any(_mentions_learn_log(t) for t in targets):
                self.report(
                    node,
                    "ad-hoc learning-ledger write; append records through "
                    "repro.obs.LearnRecorder.log() instead of dumping JSON "
                    "directly, so every record carries the shared schema",
                )
        self.generic_visit(node)
