"""Performance-ledger discipline rule (RPL501).

The ledger's value is that every record has the same shape — run id,
git SHA, timestamp, config, flat metrics — which only holds while
:func:`repro.perf.record_run` is the sole writer.  An ad-hoc
``json.dump`` of metrics into a ledger file silently forks the schema:
``repro perf gate`` either chokes on the line or, worse, quietly skips
it and the regression sails through.

**RPL501** flags write-ish calls (``json.dump``/``json.dumps``,
``open``, ``write_text``, ``.open``, ``.write``) whose arguments
mention a ledger — a name or string constant containing ``"ledger"`` —
anywhere outside :mod:`repro.perf.ledger` itself, pointing the author
at ``record_run()``.
"""

from __future__ import annotations

import ast

from repro.lint.engine import Rule, register

#: The one module allowed to touch ledger files directly.
_BLESSED = "perf/ledger.py"

#: Call shapes that write data: plain names and attribute tails.
_WRITE_NAMES = {"open"}
_WRITE_ATTRS = {"dump", "dumps", "open", "write", "write_text"}


def _mentions_ledger(node: ast.expr) -> bool:
    """Whether any sub-expression names a ledger."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            if "ledger" in sub.value.lower():
                return True
        if isinstance(sub, ast.Name) and "ledger" in sub.id.lower():
            return True
        if isinstance(sub, ast.Attribute) and "ledger" in sub.attr.lower():
            return True
    return False


def _is_write_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in _WRITE_NAMES
    if isinstance(func, ast.Attribute):
        return func.attr in _WRITE_ATTRS
    return False


@register
class AdHocLedgerWriteRule(Rule):
    """RPL501: ledger records go through ``repro.perf.record_run()``."""

    code = "RPL501"
    name = "perf.ledger-discipline"
    summary = (
        "ad-hoc write to a perf ledger; all records must go through "
        "repro.perf.record_run() so the schema stays uniform"
    )

    @classmethod
    def applies_to(cls, module_path: str) -> bool:
        # Everywhere *except* the blessed writer module.
        return module_path != _BLESSED

    def run(self) -> None:
        self.visit(self.ctx.tree)

    def visit_Call(self, node: ast.Call) -> None:
        """Flag writes whose receiver or arguments name a ledger."""
        if _is_write_call(node):
            receiver = (
                node.func.value
                if isinstance(node.func, ast.Attribute)
                else None
            )
            targets = list(node.args) + [kw.value for kw in node.keywords]
            if receiver is not None:
                targets.append(receiver)
            if any(_mentions_ledger(t) for t in targets):
                self.report(
                    node,
                    "ad-hoc ledger write; append run records through "
                    "repro.perf.record_run() instead of dumping JSON "
                    "directly, so every record carries the shared schema",
                )
        self.generic_visit(node)
