"""Determinism rules (RPL001–RPL003).

The headline claims only reproduce if a simulation's outputs are a pure
function of its inputs and seeds: the fleet promises bit-identical rows
whether a job runs serially or on a pool, and the paper's energy/QoS
numbers are regression-tested against fixed seeds.  These rules ban the
three ways nondeterminism has historically crept into simulators:

* **RPL001** — wall-clock reads (``time.time``, ``datetime.now``,
  ``time.strftime``, ``os.urandom`` ...) inside simulation code.  Wall
  time may steer telemetry (``time.perf_counter`` for wall-clock job
  timing is allowed) but must never reach simulated quantities.
* **RPL002** — global or unseeded RNG: module-level ``random.*``,
  NumPy's legacy global state (``np.random.rand`` / ``np.random.seed``),
  or ``np.random.default_rng()`` without an explicit seed.  RNGs must be
  constructed from a threaded seed so every trace is replayable.
* **RPL003** — iterating a ``set`` (literal, comprehension,
  ``set(...)`` call, or set algebra) in a ``for`` loop or comprehension.
  Set iteration order varies across processes with hash randomisation;
  wrap the set in ``sorted(...)`` to pin it.

Scope: ``sim/``, ``rl/``, and ``fleet/worker.py`` — the code that runs
inside (or feeds) simulation, where the bit-determinism contract holds.
"""

from __future__ import annotations

import ast

from repro.lint.engine import Rule, register

_SIM_SCOPE = ("sim/", "rl/", "fleet/worker.py")

#: Dotted call origins that read the wall clock or OS entropy.
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "time.strftime",
    "time.ctime",
    "time.asctime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
}

#: numpy.random attributes that are construction, not global-state use.
_NP_RANDOM_OK = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "PCG64",
    "Philox",
    "BitGenerator",
}


@register
class WallClockRule(Rule):
    """RPL001: no wall-clock or OS-entropy reads in simulation code."""

    code = "RPL001"
    name = "determinism.wall-clock"
    summary = (
        "simulation code must not read the wall clock or OS entropy; "
        "results must be a pure function of the spec and seeds"
    )
    scope = _SIM_SCOPE

    def visit_Call(self, node: ast.Call) -> None:
        """Flag calls whose resolved origin reads the wall clock."""
        origin = self.ctx.imports.resolve(node.func)
        if origin in _WALL_CLOCK_CALLS:
            self.report(
                node,
                f"call to {origin}() makes simulation state depend on the "
                "wall clock; thread timestamps in from the caller instead",
            )
        self.generic_visit(node)


@register
class GlobalRngRule(Rule):
    """RPL002: RNG must be an explicitly seeded, threaded generator."""

    code = "RPL002"
    name = "determinism.global-rng"
    summary = (
        "no module-level random.* / numpy global RNG / unseeded "
        "default_rng(); seed and thread generators explicitly"
    )
    scope = _SIM_SCOPE

    def visit_Call(self, node: ast.Call) -> None:
        """Flag global-state RNG use and unseeded generator builds."""
        origin = self.ctx.imports.resolve(node.func)
        if origin is not None:
            if origin.startswith("random."):
                self.report(
                    node,
                    f"{origin}() uses the process-global stdlib RNG; pass a "
                    "seeded numpy Generator through the call chain instead",
                )
            elif origin.startswith("numpy.random."):
                attr = origin.removeprefix("numpy.random.")
                if attr == "default_rng":
                    if self._unseeded(node):
                        self.report(
                            node,
                            "default_rng() without a seed draws OS entropy; "
                            "every generator must take an explicit seed",
                        )
                elif attr not in _NP_RANDOM_OK:
                    self.report(
                        node,
                        f"numpy.random.{attr}() mutates numpy's hidden global "
                        "RNG state; use an explicitly seeded Generator",
                    )
        self.generic_visit(node)

    @staticmethod
    def _unseeded(node: ast.Call) -> bool:
        if not node.args and not node.keywords:
            return True
        first = node.args[0] if node.args else None
        if first is None:
            for kw in node.keywords:
                if kw.arg == "seed":
                    first = kw.value
                    break
        return isinstance(first, ast.Constant) and first.value is None


def _is_set_expr(node: ast.expr) -> bool:
    """Whether an expression's value is statically known to be a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    ):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Sub, ast.BitAnd, ast.BitOr, ast.BitXor)
    ):
        # Set algebra keeps set-ness if either side is a known set.
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


@register
class SetIterationRule(Rule):
    """RPL003: no iteration over unordered sets in simulation code."""

    code = "RPL003"
    name = "determinism.set-iteration"
    summary = (
        "iterating a set in simulation code is hash-order dependent; "
        "wrap it in sorted(...)"
    )
    scope = _SIM_SCOPE

    _MESSAGE = (
        "iteration order of a set depends on hash randomisation and can "
        "differ between worker processes; iterate sorted(...) instead"
    )

    def visit_For(self, node: ast.For) -> None:
        """Flag `for ... in <set>` loops."""
        if _is_set_expr(node.iter):
            self.report(node.iter, self._MESSAGE)
        self.generic_visit(node)

    def _check_comprehensions(self, node: ast.AST) -> None:
        for gen in getattr(node, "generators", []):
            if _is_set_expr(gen.iter):
                self.report(gen.iter, self._MESSAGE)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        """Flag set-sourced generators in list comprehensions."""
        self._check_comprehensions(node)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        """Flag set-sourced generators in set comprehensions."""
        self._check_comprehensions(node)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        """Flag set-sourced generators in dict comprehensions."""
        self._check_comprehensions(node)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        """Flag set-sourced generator expressions."""
        self._check_comprehensions(node)
        self.generic_visit(node)
