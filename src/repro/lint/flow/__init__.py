"""repro.lint.flow — whole-program analysis behind ``repro check --flow``.

The per-file rules (RPL001–801) see one AST at a time, so a helper two
modules away that calls ``time.time()`` on behalf of ``sim.engine.run``
is invisible to RPL001, and nothing stops ``sim/`` from quietly
importing ``serve/``.  This package closes that gap in three stages:

1. **Summaries** (:mod:`repro.lint.flow.summary`) — one compact,
   JSON-serialisable :class:`ModuleSummary` per file: imports (with
   deferral), defined functions, resolved outgoing calls,
   nondeterminism / blocking-I/O sources, and ``self.*``-mutation vs
   ``await`` ordering in async methods.
2. **Graphs** (:mod:`repro.lint.flow.graphs`) — a project import graph
   and a name-resolution-based call graph assembled from the summaries,
   with cycle detection and reachability.
3. **Rules** (:mod:`repro.lint.flow.rules`) — the RPL9xx family run
   over the graphs: RPL901 architecture layering (the DAG lives in
   :mod:`repro.lint.flow.layers`), RPL902 interprocedural determinism
   taint, RPL903 asyncio shared-state hazards, RPL904 transitive
   blocking calls.

Summaries are content-addressed (:mod:`repro.lint.flow.cache`) under
``.repro/lintcache`` — keyed by source hash + lint-engine version,
mirroring the run cache's discipline — so a warm ``repro check --flow``
re-parses only edited files.
"""

from repro.lint.flow.cache import (
    DEFAULT_LINTCACHE_DIR,
    LINTCACHE_ENV_VAR,
    CachedAnalysis,
    SummaryCache,
    extra_inputs_digest,
    resolve_lintcache_dir,
)
from repro.lint.flow.graphs import CallGraph, ImportGraph, Project
from repro.lint.flow.layers import LAYER_RANKS, LAYERS, layer_of
from repro.lint.flow.rules import FLOW_CODES, FlowRule, check_project
from repro.lint.flow.summary import (
    SUMMARY_SCHEMA,
    AwaitHazard,
    CallSite,
    FunctionSummary,
    Hazard,
    ImportRecord,
    ModuleSummary,
    module_name,
    summarize_source,
)

__all__ = [
    "AwaitHazard",
    "CachedAnalysis",
    "CallGraph",
    "CallSite",
    "DEFAULT_LINTCACHE_DIR",
    "FLOW_CODES",
    "FlowRule",
    "FunctionSummary",
    "Hazard",
    "ImportGraph",
    "ImportRecord",
    "LAYERS",
    "LAYER_RANKS",
    "LINTCACHE_ENV_VAR",
    "ModuleSummary",
    "Project",
    "SUMMARY_SCHEMA",
    "SummaryCache",
    "check_project",
    "extra_inputs_digest",
    "layer_of",
    "module_name",
    "resolve_lintcache_dir",
    "summarize_source",
]
