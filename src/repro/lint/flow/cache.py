"""The content-addressed lint summary cache.

``repro check --flow`` re-analyses a whole tree on every run, but a
file's per-file findings *and* its :class:`ModuleSummary` are pure
functions of (source text, analysis semantics, the register map RPL203
cross-checks).  The cache exploits that exactly the way the run cache
(:mod:`repro.cache.store`) does for simulations: a completed analysis
is stored under a key derived only from content —

    sha256(canonical JSON of {schema, lint_version, path, source_sha,
                              extra_inputs})

— so an unchanged file hits, an edited file re-keys itself, and a bump
to :data:`repro.lint.engine.LINT_ENGINE_VERSION` or
:data:`repro.lint.flow.summary.SUMMARY_SCHEMA` silently invalidates
every entry at once.  ``extra_inputs`` digests the one cross-file rule
input (``hw/registers.py``, read by RPL203), so editing the register
map re-analyses the ``hw/`` tree even though those sources are
byte-identical.

Entries are one JSON file per key under ``.repro/lintcache`` (the
``REPRO_LINTCACHE_DIR`` environment variable or an explicit path
override).  Writes are atomic (temp-file + rename) and best-effort: a
read-only filesystem degrades to cold analysis, never to failure, and
corrupt or stale entries count as misses.

Cached entries hold the findings of **all** rules (post-``noqa``); the
driver filters by the run's ``--select``/``--ignore`` afterwards, which
keeps entries valid across differently-selected runs.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.lint.engine import LINT_ENGINE_VERSION
from repro.lint.findings import Finding
from repro.lint.flow.summary import SUMMARY_SCHEMA, ModuleSummary

DEFAULT_LINTCACHE_DIR = ".repro/lintcache"
"""Default cache root, relative to the working directory."""

LINTCACHE_ENV_VAR = "REPRO_LINTCACHE_DIR"
"""Environment variable overriding the default cache root."""


def resolve_lintcache_dir(path: str | Path | None = None) -> Path:
    """The cache root to use: explicit path, env override, or default."""
    if path is not None:
        return Path(path)
    return Path(os.environ.get(LINTCACHE_ENV_VAR, DEFAULT_LINTCACHE_DIR))


def extra_inputs_digest(project_root: str | Path | None) -> str:
    """Digest of the cross-file inputs that can change findings.

    Today that is exactly the register map ``hw/registers.py`` (RPL203
    parses ``OBS1_REWARD_BITS`` out of it at lint time); the candidate
    locations mirror :func:`repro.lint.rules.fixedpoint._reward_field_bits`.
    Absent file → the constant ``"none"``, matching the rule's fallback.
    """
    if project_root is None:
        return "none"
    root = Path(project_root)
    for candidate in (
        root / "src" / "repro" / "hw" / "registers.py",
        root / "repro" / "hw" / "registers.py",
        root / "hw" / "registers.py",
    ):
        if candidate.is_file():
            try:
                content = candidate.read_bytes()
            except OSError:
                return "none"
            return hashlib.sha256(content).hexdigest()
    return "none"


@dataclass(frozen=True)
class CachedAnalysis:
    """One file's complete analysis: findings (all rules) + summary."""

    findings: tuple[Finding, ...]
    suppressed: tuple[Finding, ...]
    summary: ModuleSummary

    def to_mapping(self) -> dict[str, Any]:
        """The JSON-serialisable form stored in a cache entry."""
        return {
            "findings": [f.to_cache_mapping() for f in self.findings],
            "suppressed": [f.to_cache_mapping() for f in self.suppressed],
            "summary": self.summary.to_mapping(),
        }

    @classmethod
    def from_mapping(cls, data: dict[str, Any]) -> "CachedAnalysis":
        return cls(
            findings=tuple(
                Finding.from_mapping(f) for f in data["findings"]
            ),
            suppressed=tuple(
                Finding.from_mapping(f) for f in data["suppressed"]
            ),
            summary=ModuleSummary.from_mapping(data["summary"]),
        )


class SummaryCache:
    """Probe/store access to one lint-cache directory.

    Args:
        root: Cache directory (default: ``REPRO_LINTCACHE_DIR`` env or
            ``.repro/lintcache``).  Created lazily on the first store.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = resolve_lintcache_dir(root)
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(path: str, source: str, extra_inputs: str = "none") -> str:
        """The analysis content hash (sha256 hex digest).

        Covers the canonical JSON of the summary schema, the lint engine
        version, the (as-given) file path, the source digest, and the
        cross-file input digest — bump any of them and the key moves.
        """
        payload = {
            "schema": SUMMARY_SCHEMA,
            "lint_version": LINT_ENGINE_VERSION,
            "path": Path(path).as_posix(),
            "source_sha": hashlib.sha256(source.encode("utf-8")).hexdigest(),
            "extra_inputs": extra_inputs,
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def path_for(self, key: str) -> Path:
        """The entry file a key maps to."""
        return self.root / f"{key}.json"

    def probe(self, key: str) -> CachedAnalysis | None:
        """The cached analysis under ``key``, or ``None`` on a miss.

        Absent, corrupt, and stale (schema/version mismatch) entries all
        count as misses — a damaged cache degrades to recomputation.
        """
        entry = self._read_entry(self.path_for(key))
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def store(self, key: str, analysis: CachedAnalysis) -> bool:
        """Persist one analysis atomically; best-effort.

        Returns whether the entry was written — an unwritable cache
        directory yields ``False`` rather than an error, because lint
        results must not depend on cache health.
        """
        entry = {
            "schema": SUMMARY_SCHEMA,
            "lint_version": LINT_ENGINE_VERSION,
            "key": key,
            "analysis": analysis.to_mapping(),
        }
        path = self.path_for(key)
        tmp = path.with_suffix(".tmp")
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(entry, sort_keys=True))
            os.replace(tmp, path)
        except OSError:
            return False
        return True

    def _read_entry(self, path: Path) -> CachedAnalysis | None:
        """Parse one entry file; any defect is a miss, never an error."""
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(data, dict):
            return None
        if data.get("schema") != SUMMARY_SCHEMA:
            return None
        if data.get("lint_version") != LINT_ENGINE_VERSION:
            return None
        payload = data.get("analysis")
        if not isinstance(payload, dict):
            return None
        try:
            return CachedAnalysis.from_mapping(payload)
        except (KeyError, TypeError, ValueError):
            return None
