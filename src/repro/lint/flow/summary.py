"""Per-file analysis summaries: the unit of whole-program linting.

A :class:`ModuleSummary` is everything the flow rules need to know
about one file, extracted in a single AST pass and small enough to
serialise (the summary cache stores it as JSON):

* every import, with its line and whether it is *deferred* (made inside
  a function body rather than at module level) — the import graph and
  the RPL901 layer check consume these;
* every function/method, with its resolved outgoing calls — the call
  graph's edges;
* direct nondeterminism sources (the RPL001/RPL002 origin sets) and
  blocking-I/O calls (the RPL701 origin set) per function — the taint
  that RPL902/RPL904 propagate across module boundaries;
* ``self.*``-mutation vs ``await`` ordering per async method — the
  RPL903 shared-state hazards, precomputed here because they only need
  one function's statement order;
* the file's ``# noqa`` map and the source text of every referenced
  line, so flow findings anchored in this file can be suppressed and
  baseline-fingerprinted without re-reading the source.

Call resolution is name-based (the same :class:`~repro.lint.engine.ImportMap`
the per-file rules use): ``self.helper()`` resolves to the enclosing
class, a bare ``helper()`` to a module-level definition, and imported
names to their dotted origin.  Calls through variables of unknown type
(``self._queue.get()``) are *not* resolved — the flow rules are a
static over-approximation of the program, not a points-to analysis, and
``docs/static-analysis.md`` documents that boundary.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.lint.engine import ImportMap, module_relpath, noqa_map

#: Bumped when the summary shape (or its extraction semantics) changes;
#: part of the cache key, so stale summaries invalidate themselves.
SUMMARY_SCHEMA = 1


def module_name(path: str) -> str:
    """The dotted module id of a package-relative path.

    ``src/repro/sim/engine.py`` → ``sim.engine``; ``sim/__init__.py`` →
    ``sim``; the repo root ``src/repro/__init__.py`` → ``repro``.  The
    ``repro.`` prefix is deliberately dropped so fixture files with
    virtual package-relative paths (``sim/x.py``) and real tree files
    land in the same namespace.
    """
    rel = module_relpath(path)
    if rel.endswith(".py"):
        rel = rel[: -len(".py")]
    parts = [p for p in rel.split("/") if p]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else "repro"


@dataclass(frozen=True)
class ImportRecord:
    """One import statement's target, as the import graph sees it.

    ``target`` is the dotted name *as resolvable*: for ``import a.b``
    it is ``a.b``; for ``from a.b import c`` it is ``a.b.c`` (the graph
    drops the last segment when ``a.b.c`` turns out to be a symbol, not
    a module).  A leading ``repro.`` is stripped at graph-assembly
    time, not here.
    """

    target: str
    line: int
    deferred: bool

    def to_mapping(self) -> dict[str, Any]:
        """The JSON-serialisable form stored in the summary cache."""
        return {"target": self.target, "line": self.line,
                "deferred": self.deferred}

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "ImportRecord":
        return cls(target=str(data["target"]), line=int(data["line"]),
                   deferred=bool(data["deferred"]))


@dataclass(frozen=True)
class CallSite:
    """One outgoing call with a name-resolved target.

    ``kind`` is ``"local"`` (bare name defined at this module's top
    level), ``"self"`` (a ``self.method()`` call, target already
    class-qualified), or ``"resolved"`` (dotted origin through the
    import map — possibly external; the call graph decides).
    """

    target: str
    line: int
    kind: str

    def to_mapping(self) -> dict[str, Any]:
        """The JSON-serialisable form stored in the summary cache."""
        return {"target": self.target, "line": self.line, "kind": self.kind}

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "CallSite":
        return cls(target=str(data["target"]), line=int(data["line"]),
                   kind=str(data["kind"]))


@dataclass(frozen=True)
class Hazard:
    """A direct nondeterminism or blocking-I/O source inside a function."""

    origin: str
    line: int
    code: str

    def to_mapping(self) -> dict[str, Any]:
        """The JSON-serialisable form stored in the summary cache."""
        return {"origin": self.origin, "line": self.line, "code": self.code}

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "Hazard":
        return cls(origin=str(data["origin"]), line=int(data["line"]),
                   code=str(data["code"]))


@dataclass(frozen=True)
class AwaitHazard:
    """A ``self.<attr>`` write that spans an ``await`` (RPL903 input).

    The attribute is accessed at ``first_line``, the coroutine yields
    at ``await_line``, and the attribute is written at ``write_line``
    — another handler instance may have interleaved at the await.
    """

    attr: str
    write_line: int
    await_line: int
    first_line: int

    def to_mapping(self) -> dict[str, Any]:
        """The JSON-serialisable form stored in the summary cache."""
        return {"attr": self.attr, "write_line": self.write_line,
                "await_line": self.await_line, "first_line": self.first_line}

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "AwaitHazard":
        return cls(attr=str(data["attr"]), write_line=int(data["write_line"]),
                   await_line=int(data["await_line"]),
                   first_line=int(data["first_line"]))


@dataclass(frozen=True)
class FunctionSummary:
    """One function or method, as the call graph sees it."""

    qualname: str
    line: int
    is_async: bool
    calls: tuple[CallSite, ...] = ()
    nondet: tuple[Hazard, ...] = ()
    blocking: tuple[Hazard, ...] = ()
    await_hazards: tuple[AwaitHazard, ...] = ()

    def to_mapping(self) -> dict[str, Any]:
        """The JSON-serialisable form stored in the summary cache."""
        return {
            "qualname": self.qualname,
            "line": self.line,
            "is_async": self.is_async,
            "calls": [c.to_mapping() for c in self.calls],
            "nondet": [h.to_mapping() for h in self.nondet],
            "blocking": [h.to_mapping() for h in self.blocking],
            "await_hazards": [h.to_mapping() for h in self.await_hazards],
        }

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "FunctionSummary":
        return cls(
            qualname=str(data["qualname"]),
            line=int(data["line"]),
            is_async=bool(data["is_async"]),
            calls=tuple(CallSite.from_mapping(c) for c in data["calls"]),
            nondet=tuple(Hazard.from_mapping(h) for h in data["nondet"]),
            blocking=tuple(Hazard.from_mapping(h) for h in data["blocking"]),
            await_hazards=tuple(
                AwaitHazard.from_mapping(h) for h in data["await_hazards"]
            ),
        )


@dataclass(frozen=True)
class ModuleSummary:
    """Everything the flow rules need to know about one file."""

    path: str
    module_path: str
    module: str
    imports: tuple[ImportRecord, ...] = ()
    functions: tuple[FunctionSummary, ...] = ()
    #: line → None (bare noqa) or sorted codes; flow-finding suppression.
    suppressions: dict[int, list[str] | None] = field(default_factory=dict)
    #: source text of every line referenced by a record above, so flow
    #: findings carry ``line_text`` for baseline fingerprinting.
    line_texts: dict[int, str] = field(default_factory=dict)

    def line_text(self, line: int) -> str:
        """The stripped source text of one line (1-based), or empty."""
        return self.line_texts.get(line, "")

    def to_mapping(self) -> dict[str, Any]:
        """The JSON-serialisable form stored in the summary cache."""
        return {
            "schema": SUMMARY_SCHEMA,
            "path": self.path,
            "module_path": self.module_path,
            "module": self.module,
            "imports": [i.to_mapping() for i in self.imports],
            "functions": [f.to_mapping() for f in self.functions],
            "suppressions": {
                str(line): codes for line, codes in self.suppressions.items()
            },
            "line_texts": {
                str(line): text for line, text in self.line_texts.items()
            },
        }

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "ModuleSummary":
        return cls(
            path=str(data["path"]),
            module_path=str(data["module_path"]),
            module=str(data["module"]),
            imports=tuple(
                ImportRecord.from_mapping(i) for i in data["imports"]
            ),
            functions=tuple(
                FunctionSummary.from_mapping(f) for f in data["functions"]
            ),
            suppressions={
                int(line): (None if codes is None else [str(c) for c in codes])
                for line, codes in data["suppressions"].items()
            },
            line_texts={
                int(line): str(text)
                for line, text in data["line_texts"].items()
            },
        )


# ---------------------------------------------------------------------------
# Hazard classification (shared origin sets with the per-file rules)
# ---------------------------------------------------------------------------


def _nondet_hazard(origin: str | None, node: ast.Call) -> Hazard | None:
    """Classify a resolved call as an RPL001/RPL002 source, or ``None``."""
    from repro.lint.rules.determinism import (
        _NP_RANDOM_OK,
        _WALL_CLOCK_CALLS,
        GlobalRngRule,
    )

    if origin is None:
        return None
    line = getattr(node, "lineno", 1)
    if origin in _WALL_CLOCK_CALLS:
        return Hazard(origin=origin, line=line, code="RPL001")
    if origin.startswith("random."):
        return Hazard(origin=origin, line=line, code="RPL002")
    if origin.startswith("numpy.random."):
        attr = origin.removeprefix("numpy.random.")
        if attr == "default_rng":
            if GlobalRngRule._unseeded(node):
                return Hazard(origin=origin, line=line, code="RPL002")
            return None
        if attr not in _NP_RANDOM_OK:
            return Hazard(origin=origin, line=line, code="RPL002")
    return None


def _blocking_hazard(origin: str | None, node: ast.Call) -> Hazard | None:
    """Classify a call as a blocking operation (the RPL701 origin set)."""
    from repro.lint.rules.asyncblocking import _FILE_IO_ATTRS, _SLEEP_ORIGINS

    line = getattr(node, "lineno", 1)
    if origin in _SLEEP_ORIGINS:
        return Hazard(origin=origin or "", line=line, code="sleep")
    if isinstance(node.func, ast.Name) and node.func.id == "open":
        return Hazard(origin="open", line=line, code="file-io")
    if (
        isinstance(node.func, ast.Attribute)
        and node.func.attr in _FILE_IO_ATTRS
    ):
        return Hazard(origin=f".{node.func.attr}", line=line, code="file-io")
    return None


# ---------------------------------------------------------------------------
# Extraction
# ---------------------------------------------------------------------------


def _self_attr(node: ast.expr) -> str | None:
    """The first attribute of a ``self.<attr>...`` chain, or ``None``."""
    chain: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        chain.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name) and cur.id == "self" and chain:
        return chain[-1]
    return None


def _iter_body(root: ast.AST) -> Iterator[ast.AST]:
    """The nodes a function body executes directly (no nested defs)."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


_LOCK_HINTS = ("lock", "mutex", "semaphore", "sem")


def _is_lock_guard(stmt: ast.AST) -> bool:
    """Whether a ``with``/``async with`` looks like a synchronisation guard."""
    if not isinstance(stmt, (ast.With, ast.AsyncWith)):
        return False
    for item in stmt.items:
        try:
            text = ast.unparse(item.context_expr).lower()
        except Exception:  # pragma: no cover - unparse is total on 3.10+
            continue
        if any(hint in text for hint in _LOCK_HINTS):
            return True
    return False


def _await_hazards(fn: ast.AsyncFunctionDef) -> tuple[AwaitHazard, ...]:
    """``self.*`` writes that span an await, in statement order.

    The walk is ordered by source position — an over-approximation of
    control flow (loops fold onto one pass), which is the right bias
    for a hazard detector.  Writes under a ``with``/``async with`` on
    anything lock-shaped are considered synchronised and skipped.
    """
    events: list[tuple[int, int, str, str]] = []  # (line, col, kind, attr)
    guarded_writes: set[int] = set()

    def walk(node: ast.AST, guarded: bool) -> None:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            return
        if isinstance(node, ast.Await):
            events.append(
                (node.lineno, node.col_offset, "await", "")
            )
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                attr = _self_attr(target)
                if attr is not None:
                    events.append(
                        (node.lineno, node.col_offset, "write", attr)
                    )
                    if guarded:
                        guarded_writes.add(node.lineno)
        elif isinstance(node, ast.Attribute) and isinstance(
            node.ctx, ast.Load
        ):
            attr = _self_attr(node)
            if attr is not None:
                events.append((node.lineno, node.col_offset, "read", attr))
        child_guarded = guarded or _is_lock_guard(node)
        for child in ast.iter_child_nodes(node):
            walk(child, child_guarded)

    for stmt in fn.body:
        walk(stmt, False)
    events.sort(key=lambda e: (e[0], e[1]))

    hazards: list[AwaitHazard] = []
    seen: set[tuple[str, int]] = set()
    for i, (line, _col, kind, attr) in enumerate(events):
        if kind != "write" or line in guarded_writes:
            continue
        # The latest await before this write, and the earliest access of
        # the same attribute before that await.
        await_line = None
        for pline, _pcol, pkind, _pattr in reversed(events[:i]):
            if pkind == "await":
                await_line = pline
                break
        if await_line is None:
            continue
        first_line = None
        for pline, _pcol, pkind, pattr in events[:i]:
            if pline >= await_line:
                break
            if pkind in ("read", "write") and pattr == attr:
                first_line = pline
                break
        if first_line is None or (attr, line) in seen:
            continue
        seen.add((attr, line))
        hazards.append(
            AwaitHazard(
                attr=attr, write_line=line,
                await_line=await_line, first_line=first_line,
            )
        )
    return tuple(hazards)


def _function_summary(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    qualname: str,
    imports: ImportMap,
    local_defs: set[str],
    class_name: str | None,
) -> FunctionSummary:
    calls: list[CallSite] = []
    nondet: list[Hazard] = []
    blocking: list[Hazard] = []
    for node in _iter_body(fn):
        if not isinstance(node, ast.Call):
            continue
        line = getattr(node, "lineno", fn.lineno)
        origin = imports.resolve(node.func)
        hazard = _nondet_hazard(origin, node)
        if hazard is not None:
            nondet.append(hazard)
        block = _blocking_hazard(origin, node)
        if block is not None:
            blocking.append(block)
        # Call-graph edge candidates, most specific resolution first.
        attr = (
            _self_attr(node.func)
            if isinstance(node.func, ast.Attribute)
            else None
        )
        if attr is not None and class_name is not None:
            calls.append(
                CallSite(target=f"{class_name}.{attr}", line=line,
                         kind="self")
            )
        elif origin is not None and "." in origin:
            calls.append(CallSite(target=origin, line=line, kind="resolved"))
        elif origin is not None and origin in local_defs:
            calls.append(CallSite(target=origin, line=line, kind="local"))
    is_async = isinstance(fn, ast.AsyncFunctionDef)
    return FunctionSummary(
        qualname=qualname,
        line=fn.lineno,
        is_async=is_async,
        calls=tuple(calls),
        nondet=tuple(nondet),
        blocking=tuple(blocking),
        await_hazards=_await_hazards(fn) if is_async else (),
    )


def _is_type_checking_guard(node: ast.AST) -> bool:
    """Whether an ``if`` statement is an ``if TYPE_CHECKING:`` guard."""
    if not isinstance(node, ast.If):
        return False
    test = node.test
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _collect_imports(tree: ast.Module) -> list[ImportRecord]:
    records: list[ImportRecord] = []

    def handle(child: ast.AST, deferred: bool) -> None:
        if _is_type_checking_guard(child):
            # Type-only imports are erased at runtime: they cannot
            # deadlock start-up or violate runtime layering, so the
            # graph (and RPL901) never sees the guarded body.
            assert isinstance(child, ast.If)
            for alt in child.orelse:
                handle(alt, deferred)
            return
        if isinstance(child, ast.Import):
            for alias in child.names:
                records.append(
                    ImportRecord(target=alias.name, line=child.lineno,
                                 deferred=deferred)
                )
        elif isinstance(child, ast.ImportFrom):
            if child.module and child.level == 0:
                for alias in child.names:
                    records.append(
                        ImportRecord(
                            target=f"{child.module}.{alias.name}",
                            line=child.lineno, deferred=deferred,
                        )
                    )
        else:
            child_deferred = deferred or isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            )
            for grandchild in ast.iter_child_nodes(child):
                handle(grandchild, child_deferred)

    for stmt in tree.body:
        handle(stmt, False)
    return records


def summarize_source(
    source: str, path: str, tree: ast.Module | None = None
) -> ModuleSummary:
    """Extract one file's :class:`ModuleSummary`.

    Args:
        source: Python source text.
        path: Real or virtual path; drives the module id and scoping.
        tree: An already-parsed AST to reuse (the driver parses once for
            the per-file rules and hands the tree in here).
    """
    if tree is None:
        tree = ast.parse(source, filename=path)
    imports = ImportMap(tree)
    local_defs = {
        stmt.name
        for stmt in tree.body
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        )
    }

    functions: list[FunctionSummary] = []

    def visit_defs(body: list[ast.stmt], prefix: str,
                   class_name: str | None) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{stmt.name}" if prefix else stmt.name
                functions.append(
                    _function_summary(
                        stmt, qualname, imports, local_defs, class_name
                    )
                )
                # Nested defs get their own (dotted) entry so taint in a
                # closure still lands in the index.
                visit_defs(stmt.body, f"{qualname}.", class_name)
            elif isinstance(stmt, ast.ClassDef):
                cls_qual = f"{prefix}{stmt.name}" if prefix else stmt.name
                visit_defs(stmt.body, f"{cls_qual}.", stmt.name)

    visit_defs(tree.body, "", None)

    import_records = _collect_imports(tree)
    suppressions = {
        line: (None if codes is None else sorted(codes))
        for line, codes in noqa_map(source).items()
    }

    lines = source.splitlines()

    def text(line: int) -> str:
        return lines[line - 1] if 1 <= line <= len(lines) else ""

    referenced: set[int] = set()
    # noqa lines included so RPL910 findings can fingerprint themselves.
    referenced.update(suppressions)
    for rec in import_records:
        referenced.add(rec.line)
    for fn in functions:
        referenced.add(fn.line)
        referenced.update(c.line for c in fn.calls)
        referenced.update(h.line for h in fn.nondet)
        referenced.update(h.line for h in fn.blocking)
        referenced.update(h.write_line for h in fn.await_hazards)

    posix_path = path.replace("\\", "/")
    return ModuleSummary(
        path=posix_path,
        module_path=module_relpath(posix_path),
        module=module_name(posix_path),
        imports=tuple(import_records),
        functions=tuple(functions),
        suppressions=suppressions,
        line_texts={line: text(line) for line in sorted(referenced)},
    )
