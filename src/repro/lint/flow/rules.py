"""The RPL9xx whole-program rule family.

These rules run over an assembled :class:`~repro.lint.flow.graphs.Project`
rather than one file's AST — the per-file engine registers them (so
``--select``/``--ignore``/``--list-rules`` treat them like any other
rule) but their :meth:`~repro.lint.engine.Rule.run` is a no-op; the
flow driver calls :func:`check_project` instead.

* **RPL901** — architecture layering: an import whose target sits in a
  *higher* layer of the declared DAG (:mod:`repro.lint.flow.layers`),
  plus module-level import cycles.  ``sim/``, ``rl/``, ``hw/``,
  ``governors/`` can never reach ``serve/``, ``fleet/`` or the CLI.
* **RPL902** — interprocedural determinism taint: RPL001/RPL002
  sources propagated transitively to any function reachable from
  ``sim.engine``'s run loop or the trainer, across module boundaries
  and *outside* the per-file determinism scope (inside it, RPL001/002
  already own the finding).
* **RPL903** — asyncio shared-state hazards in ``serve/``: a
  ``self.*`` attribute accessed before an ``await`` and written after
  it in the same async function, without a lock — two handler
  instances interleave exactly at awaits.
* **RPL904** — transitive blocking calls: RPL701 made
  interprocedural; an async handler in ``serve/`` that reaches
  ``time.sleep`` / sync file I/O through one or more sync helpers,
  possibly in other modules.

Findings are anchored at real source positions (the offending import,
the nondeterministic call, the first hop into a blocking chain), so
``# noqa`` and the baseline treat them exactly like per-file findings.
"""

from __future__ import annotations

from repro.lint.engine import Rule, register
from repro.lint.findings import Finding
from repro.lint.flow.graphs import CallGraph, ImportGraph, Project
from repro.lint.flow.layers import layer_of
from repro.lint.flow.summary import Hazard, ModuleSummary

#: Call-graph roots for the determinism taint: the simulation run loop
#: and the training loops the headline numbers come from.
ENTRY_POINTS: tuple[str, ...] = (
    "sim.engine.Simulator.run",
    "sim.engine.run",
    "core.trainer.train_policy",
    "core.trainer.train_curriculum",
)


class FlowRule(Rule):
    """Base class for whole-program rules.

    Registered in the normal rule registry for selection/catalogue
    purposes, but inert per file — subclasses implement
    :meth:`check_project` and the flow driver invokes it once per run.
    """

    def run(self) -> None:
        """Per-file pass: nothing to do (whole-program rules)."""

    @classmethod
    def check_project(
        cls, project: Project, imports: ImportGraph, calls: CallGraph
    ) -> list[Finding]:
        raise NotImplementedError

    @classmethod
    def _finding(
        cls, summary: ModuleSummary, line: int, message: str
    ) -> Finding:
        return Finding(
            path=summary.path,
            line=line,
            col=0,
            code=cls.code,
            message=message,
            rule=cls.name,
            line_text=summary.line_text(line),
        )


@register
class LayeringRule(FlowRule):
    """RPL901: imports must respect the declared layer DAG."""

    code = "RPL901"
    name = "flow.layering"
    summary = (
        "import from a higher architecture layer (or a module-level "
        "import cycle); the layer DAG lives in repro.lint.flow.layers"
    )

    @classmethod
    def check_project(
        cls, project: Project, imports: ImportGraph, calls: CallGraph
    ) -> list[Finding]:
        findings: list[Finding] = []
        for edge in imports.edges:
            src_layer = layer_of(edge.src)
            dst_layer = layer_of(edge.dst)
            if src_layer is None or dst_layer is None:
                continue
            src_name, src_rank = src_layer
            dst_name, dst_rank = dst_layer
            if dst_rank <= src_rank:
                continue
            summary = project.summaries[edge.src]
            how = "deferred import of" if edge.deferred else "imports"
            findings.append(
                cls._finding(
                    summary,
                    edge.line,
                    f"{edge.src} (layer {src_name}, rank {src_rank}) "
                    f"{how} {edge.dst} (layer {dst_name}, rank "
                    f"{dst_rank}); lower layers must stay importable "
                    "without the execution machinery above them",
                )
            )
        for cycle in imports.cycles():
            anchor = cycle[0]
            summary = project.summaries[anchor]
            # Anchor at the import in `anchor` that participates in the
            # cycle, falling back to line 1.
            members = set(cycle)
            line = 1
            for edge in imports.edges:
                if edge.src == anchor and edge.dst in members and not edge.deferred:
                    line = edge.line
                    break
            chain = " -> ".join([*cycle, cycle[0]])
            findings.append(
                cls._finding(
                    summary,
                    line,
                    f"module-level import cycle: {chain}; break it with a "
                    "deferred import or by moving the shared piece down a "
                    "layer",
                )
            )
        return findings


@register
class TaintRule(FlowRule):
    """RPL902: determinism taint reachable from the sim/training loops."""

    code = "RPL902"
    name = "flow.determinism-taint"
    summary = (
        "wall-clock/global-RNG call reachable from sim.engine.run or "
        "the trainer through the call graph, outside RPL001/002's "
        "per-file scope"
    )

    @classmethod
    def check_project(
        cls, project: Project, imports: ImportGraph, calls: CallGraph
    ) -> list[Finding]:
        from repro.lint.rules.determinism import WallClockRule

        roots = [
            fn_id
            for fn_id in calls.index
            if any(
                fn_id == entry or fn_id.endswith(f".{entry}")
                for entry in ENTRY_POINTS
            )
        ]
        parents = calls.reachable(roots)
        findings: list[Finding] = []
        for fn_id in sorted(parents):
            module, fn = calls.index[fn_id]
            if not fn.nondet:
                continue
            summary = project.summaries[module]
            if WallClockRule.applies_to(summary.module_path):
                # The per-file determinism rules own this file; flow
                # would only duplicate (or resurrect noqa'd) findings.
                continue
            chain = CallGraph.chain(parents, fn_id)
            chain_text = " -> ".join(chain)
            for hazard in fn.nondet:
                source = (
                    "the wall clock"
                    if hazard.code == "RPL001"
                    else "global/unseeded RNG state"
                )
                findings.append(
                    cls._finding(
                        summary,
                        hazard.line,
                        f"{hazard.origin}() depends on {source} and is "
                        f"reachable from the simulation/training loop: "
                        f"{chain_text} (suppressed nowhere on the way); "
                        "simulated results must be a pure function of "
                        "spec and seeds [propagates RPL001/002 "
                        f"interprocedurally, via {hazard.code}]",
                    )
                )
        return findings


@register
class AwaitStateRule(FlowRule):
    """RPL903: ``self.*`` mutation spanning an await in serve handlers."""

    code = "RPL903"
    name = "flow.await-shared-state"
    summary = (
        "self.* attribute accessed before an await and written after "
        "it in a serve/ async function without a lock; handlers "
        "interleave at awaits"
    )

    @classmethod
    def check_project(
        cls, project: Project, imports: ImportGraph, calls: CallGraph
    ) -> list[Finding]:
        findings: list[Finding] = []
        for module in sorted(project.summaries):
            summary = project.summaries[module]
            if not summary.module_path.startswith("serve/"):
                continue
            for fn in summary.functions:
                for hazard in fn.await_hazards:
                    findings.append(
                        cls._finding(
                            summary,
                            hazard.write_line,
                            f"self.{hazard.attr} is written here after an "
                            f"await (line {hazard.await_line}) and was "
                            f"accessed before it (line {hazard.first_line}) "
                            f"in {fn.qualname}; another handler can "
                            "interleave at the await — guard it with a "
                            "lock or restructure to a single assignment",
                        )
                    )
        return findings


@register
class TransitiveBlockingRule(FlowRule):
    """RPL904: blocking I/O reached from serve handlers via sync helpers."""

    code = "RPL904"
    name = "flow.transitive-blocking"
    summary = (
        "async serve/ handler reaches time.sleep or sync file I/O "
        "through sync helpers (RPL701, made interprocedural)"
    )

    @classmethod
    def check_project(
        cls, project: Project, imports: ImportGraph, calls: CallGraph
    ) -> list[Finding]:
        findings: list[Finding] = []
        seen: set[tuple[str, int, str, int]] = set()
        for module in sorted(project.summaries):
            summary = project.summaries[module]
            if not summary.module_path.startswith("serve/"):
                continue
            for fn in summary.functions:
                if not fn.is_async:
                    continue
                src_id = f"{module}.{fn.qualname}"
                for first_hop in calls.callees(src_id):
                    target = calls.index.get(first_hop.dst)
                    if target is None or target[1].is_async:
                        continue
                    hit = cls._find_blocking(calls, first_hop.dst)
                    if hit is None:
                        continue
                    chain, hazard_fn, hazard = hit
                    key = (src_id, first_hop.line, hazard_fn, hazard.line)
                    if key in seen:
                        continue
                    seen.add(key)
                    hazard_path = project.summaries[
                        calls.index[hazard_fn][0]
                    ].path
                    op = (
                        "time.sleep"
                        if hazard.code == "sleep"
                        else f"sync file I/O ({hazard.origin})"
                    )
                    chain_text = " -> ".join([src_id, *chain])
                    findings.append(
                        cls._finding(
                            summary,
                            first_hop.line,
                            f"this call chain blocks the serve event "
                            f"loop: {chain_text} performs {op} at "
                            f"{hazard_path}:{hazard.line}; ship the sync "
                            "work to a thread via loop.run_in_executor",
                        )
                    )
        return findings

    @classmethod
    def _find_blocking(
        cls, calls: CallGraph, start: str
    ) -> tuple[list[str], str, Hazard] | None:
        """BFS through sync callees for the nearest blocking hazard.

        Returns (chain from ``start`` to the hazard's function, hazard
        function id, hazard) or ``None``.
        """
        parents: dict[str, tuple[str, int] | None] = {start: None}
        frontier = [start]
        while frontier:
            next_frontier: list[str] = []
            for node in frontier:
                entry = calls.index.get(node)
                if entry is None:
                    continue
                _module, fn = entry
                if fn.blocking:
                    chain = CallGraph.chain(parents, node)
                    return chain, node, fn.blocking[0]
                for edge in calls.callees(node):
                    target = calls.index.get(edge.dst)
                    if (
                        target is None
                        or target[1].is_async
                        or edge.dst in parents
                    ):
                        continue
                    parents[edge.dst] = (node, edge.line)
                    next_frontier.append(edge.dst)
            frontier = next_frontier
        return None


#: The whole-program rules, in code order — the driver iterates this.
FLOW_RULES: tuple[type[FlowRule], ...] = (
    LayeringRule,
    TaintRule,
    AwaitStateRule,
    TransitiveBlockingRule,
)

FLOW_CODES: frozenset[str] = frozenset(rule.code for rule in FLOW_RULES)


def check_project(
    project: Project, codes: frozenset[str] | set[str] | None = None
) -> list[Finding]:
    """Run the (selected) flow rules over an assembled project.

    Args:
        project: Summaries of every file in the run.
        codes: Optional allow-set of rule codes (the driver passes the
            effective ``--select``/``--ignore`` expansion).

    Returns raw findings — ``# noqa`` suppression is the driver's job,
    using each summary's suppression map.
    """
    imports = ImportGraph(project)
    calls = CallGraph(project)
    findings: list[Finding] = []
    for rule_cls in FLOW_RULES:
        if codes is not None and rule_cls.code not in codes:
            continue
        findings.extend(rule_cls.check_project(project, imports, calls))
    findings.sort()
    return findings
