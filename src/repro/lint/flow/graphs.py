"""Project assembly: the import graph and the call graph.

A :class:`Project` is a set of :class:`~repro.lint.flow.summary.ModuleSummary`
objects indexed by module id.  From it:

* :class:`ImportGraph` — module → module edges from the import records,
  each with its source line and deferral flag.  Cycle detection
  (Tarjan SCCs) runs over the **module-level** edges only: a deferred
  import cannot deadlock interpreter start-up, while a module-level
  cycle is exactly the thing that breaks ``import repro.sim`` depending
  on who imported it first.
* :class:`CallGraph` — function → function edges by name resolution.
  Function ids are global dotted names (``sim.engine.Simulator.run``);
  a call site resolves through the import map, through one level of
  package re-exports (``from repro.serve import PolicyServer`` finds
  ``serve.server.PolicyServer``), and constructor calls land on
  ``__init__``.  Reachability (:meth:`CallGraph.reachable`) returns a
  BFS parent tree so rules can print full call chains.

Both graphs render to DOT and JSON for ``repro graph``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.lint.flow.summary import FunctionSummary, ModuleSummary


@dataclass(frozen=True)
class ImportEdge:
    """One module-to-module import, with provenance."""

    src: str
    dst: str
    line: int
    deferred: bool


class Project:
    """The summaries of one whole-program analysis run, by module id."""

    def __init__(self, summaries: Iterable[ModuleSummary]) -> None:
        self.summaries: dict[str, ModuleSummary] = {}
        for summary in summaries:
            # Last writer wins on module-id collisions (e.g. duplicate
            # virtual paths in tests); real trees have unique ids.
            self.summaries[summary.module] = summary
        #: One-hop re-export map: module → {local name → dotted target}.
        self._exports: dict[str, dict[str, str]] = {}
        for module, summary in self.summaries.items():
            exports: dict[str, str] = {}
            for rec in summary.imports:
                if rec.deferred:
                    continue
                name = rec.target.rsplit(".", 1)[-1]
                exports[name] = self._strip(rec.target)
            self._exports[module] = exports

    @staticmethod
    def _strip(target: str) -> str:
        """Normalise a dotted import target into project namespace.

        Dropping a leading ``repro.`` maps real-tree imports onto the
        package-relative module ids summaries use.
        """
        return target.removeprefix("repro.") if target != "repro" else target

    @property
    def modules(self) -> list[str]:
        return sorted(self.summaries)

    def resolve_module(self, target: str) -> str | None:
        """The project module a dotted import target lands in, if any.

        Tries the stripped target itself, then drops trailing segments
        (``sim.engine.ENGINE_VERSION`` → ``sim.engine`` → ``sim``): an
        ``from a.b import c`` record stores ``a.b.c`` whether ``c`` is a
        submodule or a symbol, and only the project knows which.
        """
        parts = self._strip(target).split(".")
        while parts:
            candidate = ".".join(parts)
            if candidate in self.summaries:
                return candidate
            parts.pop()
        return None

    def function_index(self) -> dict[str, tuple[str, FunctionSummary]]:
        """Global function id → (module id, summary)."""
        index: dict[str, tuple[str, FunctionSummary]] = {}
        for module, summary in self.summaries.items():
            for fn in summary.functions:
                index[f"{module}.{fn.qualname}"] = (module, fn)
        return index

    def resolve_function(
        self,
        module: str,
        target: str,
        kind: str,
        index: Mapping[str, tuple[str, FunctionSummary]],
    ) -> str | None:
        """The global function id a call site resolves to, or ``None``."""
        if kind in ("local", "self"):
            return self._lookup(f"{module}.{target}", index)
        dotted = self._strip(target)
        for _hop in range(4):  # bounded re-export chasing
            resolved = self._lookup(dotted, index)
            if resolved is not None:
                return resolved
            # Re-export: find the longest module prefix and map the next
            # segment through that module's import table.
            parts = dotted.split(".")
            chased = None
            for cut in range(len(parts) - 1, 0, -1):
                prefix = ".".join(parts[:cut])
                if prefix in self.summaries:
                    rest = parts[cut:]
                    exported = self._exports.get(prefix, {}).get(rest[0])
                    if exported is not None:
                        chased = ".".join([exported, *rest[1:]])
                    break
            if chased is None or chased == dotted:
                return None
            dotted = chased
        return None

    @staticmethod
    def _lookup(
        dotted: str, index: Mapping[str, tuple[str, FunctionSummary]]
    ) -> str | None:
        if dotted in index:
            return dotted
        init = f"{dotted}.__init__"
        if init in index:
            return init
        return None


class ImportGraph:
    """Module-level and deferred import edges between project modules."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.edges: list[ImportEdge] = []
        for module, summary in sorted(project.summaries.items()):
            seen: set[tuple[str, int, bool]] = set()
            for rec in summary.imports:
                dst = project.resolve_module(rec.target)
                if dst is None or dst == module:
                    continue
                key = (dst, rec.line, rec.deferred)
                if key in seen:
                    continue
                seen.add(key)
                self.edges.append(
                    ImportEdge(src=module, dst=dst, line=rec.line,
                               deferred=rec.deferred)
                )

    def adjacency(self, *, include_deferred: bool = True) -> dict[str, list[str]]:
        """Module → imported-module lists, optionally module-level only."""
        adj: dict[str, list[str]] = {m: [] for m in self.project.modules}
        for edge in self.edges:
            if edge.deferred and not include_deferred:
                continue
            if edge.dst not in adj[edge.src]:
                adj[edge.src].append(edge.dst)
        return adj

    def cycles(self) -> list[list[str]]:
        """Module-level import cycles, as sorted SCC member lists.

        Tarjan's algorithm, iterative (lint runs inside CI's default
        recursion limit).  Only strongly-connected components with more
        than one member (or a self-loop) count.
        """
        adj = self.adjacency(include_deferred=False)
        index: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = [0]
        sccs: list[list[str]] = []

        for root in sorted(adj):
            if root in index:
                continue
            work: list[tuple[str, int]] = [(root, 0)]
            while work:
                node, child_i = work[-1]
                if child_i == 0:
                    index[node] = lowlink[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                children = adj[node]
                while child_i < len(children):
                    child = children[child_i]
                    child_i += 1
                    if child not in index:
                        work[-1] = (node, child_i)
                        work.append((child, 0))
                        recurse = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], index[child])
                if recurse:
                    continue
                work[-1] = (node, child_i)
                if lowlink[node] == index[node]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1 or any(
                        e.src == node and e.dst == node for e in self.edges
                    ):
                        sccs.append(sorted(component))
                work.pop()
                if work:
                    parent, _ = work[-1]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
        sccs.sort()
        return sccs

    def to_json(self) -> str:
        """The graph as versioned JSON (``repro graph imports --format json``)."""
        payload = {
            "version": 1,
            "modules": self.project.modules,
            "edges": [
                {"from": e.src, "to": e.dst, "line": e.line,
                 "deferred": e.deferred}
                for e in self.edges
            ],
        }
        return json.dumps(payload, indent=2)

    def to_dot(self) -> str:
        """Graphviz DOT; deferred imports render as dashed edges."""
        lines = ["digraph imports {", "  rankdir=LR;", "  node [shape=box];"]
        for module in self.project.modules:
            lines.append(f'  "{module}";')
        for e in self.edges:
            style = " [style=dashed]" if e.deferred else ""
            lines.append(f'  "{e.src}" -> "{e.dst}"{style};')
        lines.append("}")
        return "\n".join(lines)


@dataclass(frozen=True)
class CallEdge:
    """One resolved caller → callee edge, with the call-site line."""

    src: str
    dst: str
    line: int


class CallGraph:
    """Name-resolution-based function → function edges."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.index = project.function_index()
        self.edges: list[CallEdge] = []
        adjacency: dict[str, list[CallEdge]] = {}
        for module, summary in sorted(project.summaries.items()):
            for fn in summary.functions:
                src = f"{module}.{fn.qualname}"
                for call in fn.calls:
                    dst = project.resolve_function(
                        module, call.target, call.kind, self.index
                    )
                    if dst is None or dst == src:
                        continue
                    edge = CallEdge(src=src, dst=dst, line=call.line)
                    self.edges.append(edge)
                    adjacency.setdefault(src, []).append(edge)
        self._adjacency = adjacency

    def callees(self, src: str) -> list[CallEdge]:
        """The resolved outgoing edges of one function id."""
        return self._adjacency.get(src, [])

    def reachable(
        self, roots: Iterable[str]
    ) -> dict[str, tuple[str, int] | None]:
        """BFS tree from ``roots``: function id → (parent id, call line).

        Roots map to ``None``.  The parent pointers reconstruct the
        shortest call chain from a root to any reachable function.
        """
        parents: dict[str, tuple[str, int] | None] = {}
        frontier: list[str] = []
        for root in sorted(set(roots)):
            if root in self.index and root not in parents:
                parents[root] = None
                frontier.append(root)
        while frontier:
            next_frontier: list[str] = []
            for node in frontier:
                for edge in self.callees(node):
                    if edge.dst in parents:
                        continue
                    parents[edge.dst] = (node, edge.line)
                    next_frontier.append(edge.dst)
            frontier = next_frontier
        return parents

    @staticmethod
    def chain(
        parents: Mapping[str, tuple[str, int] | None], node: str
    ) -> list[str]:
        """The root → ... → node path reconstructed from a BFS tree."""
        path = [node]
        seen = {node}
        cur = node
        while True:
            parent = parents.get(cur)
            if parent is None:
                break
            cur = parent[0]
            if cur in seen:  # pragma: no cover - BFS trees are acyclic
                break
            seen.add(cur)
            path.append(cur)
        path.reverse()
        return path

    def to_json(self) -> str:
        """The graph as versioned JSON (``repro graph calls --format json``)."""
        payload = {
            "version": 1,
            "functions": sorted(self.index),
            "edges": [
                {"from": e.src, "to": e.dst, "line": e.line}
                for e in self.edges
            ],
        }
        return json.dumps(payload, indent=2)

    def to_dot(self) -> str:
        """Graphviz DOT over the functions that participate in edges."""
        lines = ["digraph calls {", "  rankdir=LR;", "  node [shape=oval];"]
        used = sorted(
            {e.src for e in self.edges} | {e.dst for e in self.edges}
        )
        for fn in used:
            lines.append(f'  "{fn}";')
        for e in self.edges:
            lines.append(f'  "{e.src}" -> "{e.dst}";')
        lines.append("}")
        return "\n".join(lines)
