"""The declared architecture layer DAG that RPL901 enforces.

The repo's headline claim is regression-tested against fixed seeds, so
everything below the simulation boundary must stay importable — and
deterministic — without dragging in the service, fleet, or CLI
machinery above it.  The layers encode that as a rank order: a module
may import **same-or-lower** ranks, never higher.  Rationale per rank:

* ``foundation`` (0) — ``errors``: the shared exception vocabulary;
  depends on nothing so every layer can raise it.
* ``domain`` (1) — ``soc``, ``workload``, ``power``, ``qos``,
  ``thermal``, ``mem``, ``idle``, ``obs``: physical models and the
  zero-overhead observability probes.  ``obs`` sits here *because* the
  simulation engine instruments itself with it; anything ``obs``
  needed from above would drag the fleet into every simulation import.
* ``model`` (2) — ``sim``, ``governors``, ``rl``: the simulation
  engine, the DVFS policies, and the learning agents.  This is the
  bit-determinism boundary: nothing here may know about execution
  infrastructure (``serve``/``fleet``/``cli``), or a served decision
  could diverge from an offline rollout.
* ``policy`` (3) — ``core``, ``hw``: trained-policy assembly,
  checkpoints, and the hardware export path; they orchestrate layer-2
  pieces but still serve no traffic.
* ``orchestration`` (4) — ``analysis``, ``experiments``, ``fleet``,
  ``perf``, ``cache``: sweep/grid execution, statistics, the perf
  ledger, and the content-addressed run cache (``cache`` ↔ ``fleet``
  is a deliberate same-rank pairing: the cache stores fleet
  measurements, the fleet probes the cache).
* ``scale-out`` (5) — ``batch``, ``serve``: the vectorised backend and
  the policy-decision service, built on the orchestration layer.
* ``surface`` (6) — ``cli``, ``__main__``, ``lint``, the ``repro``
  root package: user entry points and tooling; may import anything.

Modules whose top-level package is not declared here (test fixtures,
``tests/``, ``benchmarks/``) are outside the DAG and exempt.
"""

from __future__ import annotations

#: Layer name → (rank, member top-level packages).
LAYERS: dict[str, tuple[int, tuple[str, ...]]] = {
    "foundation": (0, ("errors",)),
    "domain": (
        1,
        ("soc", "workload", "power", "qos", "thermal", "mem", "idle", "obs"),
    ),
    "model": (2, ("sim", "governors", "rl")),
    "policy": (3, ("core", "hw")),
    "orchestration": (
        4,
        ("analysis", "experiments", "fleet", "perf", "cache"),
    ),
    "scale-out": (5, ("batch", "serve")),
    "surface": (6, ("cli", "__main__", "lint", "repro")),
}

#: Top-level package → (layer name, rank), derived from :data:`LAYERS`.
LAYER_RANKS: dict[str, tuple[str, int]] = {
    package: (name, rank)
    for name, (rank, packages) in LAYERS.items()
    for package in packages
}


def layer_of(module: str) -> tuple[str, int] | None:
    """The (layer name, rank) of a dotted module id, or ``None``.

    The top-level package decides: ``sim.engine`` → ``("model", 2)``.
    Unknown packages (fixtures, tests) are outside the DAG.
    """
    top = module.split(".", 1)[0] if module else ""
    return LAYER_RANKS.get(top)
