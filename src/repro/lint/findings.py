"""Finding records produced by the static-analysis engine.

A :class:`Finding` pins one rule violation to a file position.  Findings
are plain, orderable, hashable data so the engine, the baseline store,
and the output formatters can pass them around without coupling to the
rules that produced them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        path: File path as given to the engine (posix separators).
        line: 1-based source line.
        col: 0-based column, as :mod:`ast` reports it.
        code: The rule code (``RPL001`` ...).
        message: Human-readable description of the violation.
        rule: The rule's registry name (``determinism.wall-clock`` ...).
        line_text: The stripped source line, carried for baseline
            fingerprinting so findings survive line-number drift.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    rule: str = field(default="", compare=False)
    line_text: str = field(default="", compare=False)

    def location(self) -> str:
        """``path:line:col`` — the clickable prefix of text output."""
        return f"{self.path}:{self.line}:{self.col}"

    def content_key(self) -> str:
        """The fingerprint payload, stable under line-number drift.

        Two findings of the same code on the same (stripped) source line
        of the same file share a key; the baseline disambiguates
        duplicates with an occurrence counter.
        """
        return f"{self.path}::{self.code}::{self.line_text.strip()}"

    def fingerprint(self, occurrence: int = 0) -> str:
        """A short stable id for baseline storage."""
        payload = f"{self.content_key()}::{occurrence}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def to_mapping(self) -> dict[str, object]:
        """JSON-ready representation (the ``--format json`` row)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "rule": self.rule,
        }

    def to_cache_mapping(self) -> dict[str, object]:
        """Lossless representation for the lint summary cache.

        Unlike :meth:`to_mapping` (the user-facing JSON row), this keeps
        ``line_text`` so a cache hit can still fingerprint against the
        baseline.
        """
        return {**self.to_mapping(), "line_text": self.line_text}

    @classmethod
    def from_mapping(cls, data: dict[str, object]) -> Finding:
        """Rebuild a finding from either mapping shape.

        Raises:
            KeyError, TypeError, ValueError: On malformed data — callers
                reading untrusted cache files treat that as a miss.
        """
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[call-overload]
            col=int(data["col"]),  # type: ignore[call-overload]
            code=str(data["code"]),
            message=str(data["message"]),
            rule=str(data.get("rule", "")),
            line_text=str(data.get("line_text", "")),
        )
