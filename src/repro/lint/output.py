"""Output formatters for ``repro check``.

Three formats, one per consumer:

* ``text`` — human-readable, one ``path:line:col: CODE message`` line
  per finding plus a per-code summary.
* ``json`` — the machine-readable report CI uploads as an artifact.
* ``github`` — GitHub Actions workflow commands
  (``::error file=...``), which the Actions runner turns into inline
  PR annotations.
"""

from __future__ import annotations

import json

from repro.lint.engine import all_rules
from repro.lint.findings import Finding

FORMATS = ("text", "json", "github")


def build_statistics(
    findings: list[Finding],
    *,
    files_checked: int = 0,
    cache_hits: int = 0,
    cache_misses: int = 0,
    flow: bool = False,
) -> dict[str, object]:
    """The ``--statistics`` payload: per-rule and per-file counts plus
    how much work the run actually did (files checked, cache traffic).
    """
    by_path: dict[str, int] = {}
    for f in findings:
        by_path[f.path] = by_path.get(f.path, 0) + 1
    return {
        "files_checked": files_checked,
        "cache_hits": cache_hits,
        "cache_misses": cache_misses,
        "flow": flow,
        "by_code": _by_code(findings),
        "by_path": dict(sorted(by_path.items())),
    }


def render_text(
    findings: list[Finding],
    *,
    files_checked: int = 0,
    suppressed: int = 0,
    accepted: int = 0,
    stale: int = 0,
    statistics: dict[str, object] | None = None,
) -> str:
    """The human report: findings, then a one-line summary."""
    lines = [f"{f.location()}: {f.code} {f.message}" for f in findings]
    counts: dict[str, int] = {}
    for f in findings:
        counts[f.code] = counts.get(f.code, 0) + 1
    if counts:
        lines.append("")
        for code, n in sorted(counts.items()):
            rule = all_rules().get(code)
            name = rule.name if rule else "?"
            lines.append(f"{code} ({name}): {n}")
    tail = [f"{len(findings)} finding{'s' if len(findings) != 1 else ''}"]
    if files_checked:
        tail.append(f"{files_checked} files checked")
    if suppressed:
        tail.append(f"{suppressed} suppressed by noqa")
    if accepted:
        tail.append(f"{accepted} accepted by baseline")
    if stale:
        tail.append(f"{stale} stale baseline entries")
    lines.append(", ".join(tail))
    if statistics is not None:
        lines.append("")
        lines.append("statistics:")
        lines.append(f"  files checked: {statistics['files_checked']}")
        lines.append(
            f"  cache: {statistics['cache_hits']} hits, "
            f"{statistics['cache_misses']} misses"
        )
        lines.append(
            "  flow rules: "
            + ("on" if statistics.get("flow") else "off")
        )
        by_code = statistics.get("by_code") or {}
        if isinstance(by_code, dict) and by_code:
            lines.append("  findings by code:")
            for code, n in by_code.items():
                lines.append(f"    {code}: {n}")
        by_path = statistics.get("by_path") or {}
        if isinstance(by_path, dict) and by_path:
            lines.append("  findings by file:")
            for path, n in by_path.items():
                lines.append(f"    {path}: {n}")
    return "\n".join(lines)


def render_json(
    findings: list[Finding],
    *,
    files_checked: int = 0,
    suppressed: int = 0,
    accepted: int = 0,
    stale: int = 0,
    statistics: dict[str, object] | None = None,
) -> str:
    """The machine report (stable schema; CI artifact)."""
    payload: dict[str, object] = {
        "version": 1,
        "findings": [f.to_mapping() for f in findings],
        "summary": {
            "count": len(findings),
            "files_checked": files_checked,
            "suppressed": suppressed,
            "accepted_by_baseline": accepted,
            "stale_baseline_entries": stale,
            "by_code": _by_code(findings),
        },
    }
    if statistics is not None:
        payload["statistics"] = statistics
    return json.dumps(payload, indent=2)


def render_github(
    findings: list[Finding],
    *,
    statistics: dict[str, object] | None = None,
    **_: int,
) -> str:
    """GitHub Actions annotations, one ``::error`` command per finding."""
    lines = []
    for f in findings:
        message = f.message.replace("%", "%25").replace("\n", "%0A")
        lines.append(
            f"::error file={f.path},line={f.line},col={f.col + 1},"
            f"title={f.code} {f.rule}::{message}"
        )
    if statistics is not None:
        by_code = statistics.get("by_code") or {}
        codes = (
            " ".join(f"{c}={n}" for c, n in by_code.items())
            if isinstance(by_code, dict)
            else ""
        )
        lines.append(
            "::notice title=repro check statistics::"
            f"files={statistics['files_checked']} "
            f"cache_hits={statistics['cache_hits']} "
            f"cache_misses={statistics['cache_misses']} "
            f"flow={'on' if statistics.get('flow') else 'off'}"
            + (f" {codes}" if codes else "")
        )
    return "\n".join(lines)


def render(
    fmt: str,
    findings: list[Finding],
    *,
    statistics: dict[str, object] | None = None,
    **stats: int,
) -> str:
    """Dispatch on a ``--format`` value."""
    return {
        "text": render_text,
        "json": render_json,
        "github": render_github,
    }[fmt](findings, statistics=statistics, **stats)


def rule_catalogue() -> str:
    """The ``repro check --list-rules`` table."""
    lines = []
    for code, rule in all_rules().items():
        scope = ", ".join(rule.scope) if rule.scope else "everywhere"
        lines.append(f"{code}  {rule.name}")
        lines.append(f"       {rule.summary}")
        lines.append(f"       scope: {scope}")
    return "\n".join(lines)


def _by_code(findings: list[Finding]) -> dict[str, int]:
    out: dict[str, int] = {}
    for f in findings:
        out[f.code] = out.get(f.code, 0) + 1
    return dict(sorted(out.items()))
