"""Baseline storage: accepted findings that ``repro check`` ignores.

A baseline is the reviewed debt ledger: findings recorded in it are
deliberate (or grandfathered) and do not fail the build, while any *new*
finding still does.  Entries are keyed by a content fingerprint —
``sha256(path :: code :: stripped source line :: occurrence)`` — so they
survive unrelated edits that shift line numbers, but disappear (go
*stale*) when the offending line itself is fixed or removed.

Workflow::

    repro check src/ --write-baseline             # accept current state
    repro check src/ --baseline lint-baseline.json  # CI gate

:func:`filter_findings` also reports stale entries so the ledger can be
re-tightened as debt is paid down.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import LintError
from repro.lint.findings import Finding

_VERSION = 1


def _fingerprints(findings: list[Finding]) -> dict[str, Finding]:
    """Fingerprint every finding, numbering duplicates per content key."""
    seen: dict[str, int] = {}
    out: dict[str, Finding] = {}
    for f in findings:
        key = f.content_key()
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        out[f.fingerprint(occurrence)] = f
    return out


@dataclass
class Baseline:
    """The committed set of accepted findings."""

    entries: dict[str, dict[str, object]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file.

        Raises:
            LintError: If the file is missing or malformed.
        """
        p = Path(path)
        if not p.is_file():
            raise LintError(f"baseline file not found: {p}")
        try:
            data = json.loads(p.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise LintError(f"invalid JSON in baseline {p}: {exc}") from exc
        if not isinstance(data, dict) or data.get("version") != _VERSION:
            raise LintError(
                f"baseline {p} has unsupported format "
                f"(expected version {_VERSION})"
            )
        entries = data.get("findings", {})
        if not isinstance(entries, dict):
            raise LintError(f"baseline {p}: 'findings' must be an object")
        return cls(entries=entries)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        return cls(
            entries={
                fp: f.to_mapping() for fp, f in _fingerprints(findings).items()
            }
        )

    def save(self, path: str | Path) -> None:
        """Write the baseline as versioned, sorted JSON."""
        payload = {
            "version": _VERSION,
            "findings": dict(sorted(self.entries.items())),
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class BaselineResult:
    """Findings partitioned against a baseline."""

    new: list[Finding]
    accepted: list[Finding]
    stale: list[str]


def filter_findings(findings: list[Finding], baseline: Baseline) -> BaselineResult:
    """Split findings into new vs. baseline-accepted, and spot stale entries."""
    current = _fingerprints(findings)
    new: list[Finding] = []
    accepted: list[Finding] = []
    for fp, f in current.items():
        (accepted if fp in baseline.entries else new).append(f)
    stale = sorted(fp for fp in baseline.entries if fp not in current)
    new.sort()
    accepted.sort()
    return BaselineResult(new=new, accepted=accepted, stale=stale)
