"""repro.lint — invariant-aware static analysis for this repository.

The repo's correctness rests on invariants no generic linter knows
about: bit-determinism under seeding (sim/rl/fleet), the ``_mhz`` /
``_mw`` unit-suffix convention, integer-only fixed-point datapaths,
zero-overhead-when-disabled observability probes, and the fleet's
never-swallow-a-worker-failure exception policy.  This package encodes
each as an AST rule with a stable ``RPLnnn`` code and gates them behind
``repro check``.

Beyond the per-file rules, ``repro check --flow`` (the default) runs
the whole-program RPL9xx family (:mod:`repro.lint.flow`): architecture
layering against a declared layer DAG, interprocedural determinism
taint from the simulation/training entry points, asyncio shared-state
hazards, and transitive blocking calls.  Per-file analyses are
content-addressed in ``.repro/lintcache`` so warm runs re-parse only
edited files, and ``--jobs N`` fans cold files over a process pool.

Typical use::

    repro check src/                         # human output, exit 1 on findings
    repro check src/ --format json           # machine report
    repro check src/ --select RPL0 --ignore RPL003
    repro check src/ --jobs 4 --statistics   # parallel + run statistics
    repro check src/ --no-flow               # per-file rules only
    repro check src/ --write-baseline        # accept current findings
    repro check src/ --baseline lint-baseline.json   # the CI gate
    repro graph imports --format dot         # the project import graph

Library API::

    from repro.lint import analyze_paths, check_paths, check_source

    result = analyze_paths(["src/repro"], jobs=4)
    for finding in result.findings:
        print(finding.location(), finding.code, finding.message)

Suppression: append ``# noqa: RPL001`` (or a bare ``# noqa``) to the
offending line.  The rule catalogue, rationale, and the baseline
workflow live in ``docs/static-analysis.md``.
"""

from repro.lint.baseline import Baseline, BaselineResult, filter_findings
from repro.lint.driver import AnalysisResult, analyze_paths
from repro.lint.engine import (
    LINT_ENGINE_VERSION,
    CheckResult,
    FileResult,
    ImportMap,
    LintContext,
    Rule,
    all_rules,
    check_paths,
    check_source,
    iter_python_files,
    module_relpath,
    noqa_map,
    register,
    select_rules,
)
from repro.lint.findings import Finding
from repro.lint.output import (
    FORMATS,
    build_statistics,
    render,
    render_github,
    render_json,
    render_text,
    rule_catalogue,
)

__all__ = [
    "AnalysisResult",
    "Baseline",
    "BaselineResult",
    "CheckResult",
    "FORMATS",
    "FileResult",
    "Finding",
    "ImportMap",
    "LINT_ENGINE_VERSION",
    "LintContext",
    "Rule",
    "all_rules",
    "analyze_paths",
    "build_statistics",
    "check_paths",
    "check_source",
    "filter_findings",
    "iter_python_files",
    "module_relpath",
    "noqa_map",
    "register",
    "render",
    "render_github",
    "render_json",
    "render_text",
    "rule_catalogue",
    "select_rules",
]
