"""repro.lint — invariant-aware static analysis for this repository.

The repo's correctness rests on invariants no generic linter knows
about: bit-determinism under seeding (sim/rl/fleet), the ``_mhz`` /
``_mw`` unit-suffix convention, integer-only fixed-point datapaths,
zero-overhead-when-disabled observability probes, and the fleet's
never-swallow-a-worker-failure exception policy.  This package encodes
each as an AST rule with a stable ``RPLnnn`` code and gates them behind
``repro check``.

Typical use::

    repro check src/                         # human output, exit 1 on findings
    repro check src/ --format json           # machine report
    repro check src/ --select RPL0 --ignore RPL003
    repro check src/ --write-baseline        # accept current findings
    repro check src/ --baseline lint-baseline.json   # the CI gate

Library API::

    from repro.lint import check_paths, check_source

    result = check_paths(["src/repro"])
    for finding in result.findings:
        print(finding.location(), finding.code, finding.message)

Suppression: append ``# noqa: RPL001`` (or a bare ``# noqa``) to the
offending line.  The rule catalogue, rationale, and the baseline
workflow live in ``docs/static-analysis.md``.
"""

from repro.lint.baseline import Baseline, BaselineResult, filter_findings
from repro.lint.engine import (
    CheckResult,
    FileResult,
    ImportMap,
    LintContext,
    Rule,
    all_rules,
    check_paths,
    check_source,
    iter_python_files,
    module_relpath,
    noqa_map,
    register,
    select_rules,
)
from repro.lint.findings import Finding
from repro.lint.output import (
    FORMATS,
    render,
    render_github,
    render_json,
    render_text,
    rule_catalogue,
)

__all__ = [
    "Baseline",
    "BaselineResult",
    "CheckResult",
    "FORMATS",
    "FileResult",
    "Finding",
    "ImportMap",
    "LintContext",
    "Rule",
    "all_rules",
    "check_paths",
    "check_source",
    "filter_findings",
    "iter_python_files",
    "module_relpath",
    "noqa_map",
    "register",
    "render",
    "render_github",
    "render_json",
    "render_text",
    "rule_catalogue",
    "select_rules",
]
