"""The AST visitor framework behind ``repro check``.

The engine parses each Python file once, annotates the tree with parent
links, builds an import map, and runs every registered :class:`Rule`
that applies to the file's package-relative path.  Rules are
:class:`ast.NodeVisitor` subclasses that call :meth:`Rule.report`;
``# noqa`` comments (bare, or code-qualified like ``# noqa: RPL001``)
suppress findings on their line.

Rule registration::

    @register
    class MyRule(Rule):
        code = "RPL999"
        name = "family.short-name"
        summary = "one-line description for the catalogue"
        scope = ("sim/",)          # path prefixes; () means everywhere

        def visit_Call(self, node):
            ...
            self.report(node, "message")
            self.generic_visit(node)

Paths are normalised to the ``repro`` package root before scope
matching, so ``src/repro/sim/engine.py``, ``repro/sim/engine.py`` and a
test fixture at ``/tmp/x/sim/engine.py`` all match the ``sim/`` scope.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import LintError
from repro.lint.findings import Finding

#: Version of the analysis semantics (rules, summaries, resolution).
#: Participates in every lint-cache key, so bumping it invalidates all
#: cached per-file analyses at once — bump on any change that could
#: alter findings or module summaries for unchanged source.
LINT_ENGINE_VERSION = "1"

_NOQA_RE = re.compile(
    r"#\s*noqa(?::\s*(?P<codes>[A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*))?",
    re.IGNORECASE,
)

_CODE_RE = re.compile(r"^RPL[0-9]{3}$")

#: Directory names never descended into when expanding paths.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules", "build", "dist"}


def module_relpath(path: str) -> str:
    """A path normalised to the ``repro`` package root, posix-style.

    ``src/repro/sim/engine.py`` → ``sim/engine.py``.  Falls back to the
    path unchanged (posix separators) when no ``repro``/``src`` anchor
    appears, which lets tests lint fixture files under any temp dir by
    giving them package-shaped virtual paths.
    """
    parts = Path(path).as_posix().split("/")
    dirs = parts[:-1]
    for anchor in ("repro", "src"):
        if anchor in dirs:
            idx = len(dirs) - 1 - dirs[::-1].index(anchor)
            return "/".join(parts[idx + 1:])
    return "/".join(parts)


# ---------------------------------------------------------------------------
# Import resolution (shared by rules that match dotted call names)
# ---------------------------------------------------------------------------


class ImportMap:
    """Local alias → dotted origin, built from a module's import statements.

    ``import numpy as np`` maps ``np`` → ``numpy``; ``from time import
    time`` maps ``time`` → ``time.time``.  :meth:`resolve` expands an
    expression's root name through the map, so ``np.random.rand`` resolves
    to ``numpy.random.rand`` and a bare ``time()`` call (after a
    ``from time import time``) to ``time.time``.
    """

    def __init__(self, tree: ast.AST) -> None:
        self._aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    origin = alias.name if alias.asname else alias.name.split(".")[0]
                    self._aliases[local] = origin
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.expr) -> str | None:
        """The dotted origin of a Name/Attribute chain, or ``None``."""
        parts: list[str] = []
        cur: ast.expr = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        root = self._aliases.get(cur.id, cur.id)
        parts.append(root)
        return ".".join(reversed(parts))


# ---------------------------------------------------------------------------
# Context and rule base
# ---------------------------------------------------------------------------


@dataclass
class LintContext:
    """Everything a rule may inspect about the file under analysis."""

    path: str
    module_path: str
    source: str
    tree: ast.Module
    imports: ImportMap
    project_root: Path | None = None
    findings: list[Finding] = field(default_factory=list)

    @property
    def lines(self) -> list[str]:
        return self.source.splitlines()

    def line_text(self, line: int) -> str:
        """The 1-based source line, or "" out of range."""
        lines = self.lines
        return lines[line - 1] if 1 <= line <= len(lines) else ""


def parent(node: ast.AST) -> ast.AST | None:
    """The parent link the engine annotated, or ``None`` at the root."""
    return getattr(node, "_lint_parent", None)


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    """The node's ancestor chain, innermost first."""
    cur = parent(node)
    while cur is not None:
        yield cur
        cur = parent(cur)


class Rule(ast.NodeVisitor):
    """Base class for all lint rules.

    Class attributes:
        code: The unique ``RPLnnn`` code.
        name: Registry name, ``family.short-name``.
        summary: One line for the rule catalogue / ``--format json``.
        scope: Package-relative path prefixes (or exact file paths) the
            rule applies to; the empty tuple means the whole tree.
    """

    code: str = ""
    name: str = ""
    summary: str = ""
    scope: tuple[str, ...] = ()

    def __init__(self, ctx: LintContext) -> None:
        self.ctx = ctx

    @classmethod
    def applies_to(cls, module_path: str) -> bool:
        if not cls.scope:
            return True
        return any(
            module_path == entry or module_path.startswith(entry)
            for entry in cls.scope
        )

    def report(self, node: ast.AST, message: str, *, code: str | None = None) -> None:
        """Record one finding anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        self.ctx.findings.append(
            Finding(
                path=self.ctx.path,
                line=line,
                col=col,
                code=code or self.code,
                message=message,
                rule=self.name,
                line_text=self.ctx.line_text(line),
            )
        )

    def run(self) -> None:
        """Visit the whole tree (rules may override for non-visitor logic)."""
        self.visit(self.ctx.tree)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry.

    Raises:
        LintError: On a malformed or duplicate code.
    """
    if not _CODE_RE.match(cls.code):
        raise LintError(f"rule {cls.__name__} has malformed code {cls.code!r}")
    if cls.code in _REGISTRY and _REGISTRY[cls.code] is not cls:
        raise LintError(
            f"duplicate rule code {cls.code}: {cls.__name__} vs "
            f"{_REGISTRY[cls.code].__name__}"
        )
    if not cls.name:
        raise LintError(f"rule {cls.__name__} needs a registry name")
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> dict[str, type[Rule]]:
    """Registered rules by code (importing the rule modules on demand)."""
    # The import is deferred so `engine` itself stays importable from the
    # rule modules without a cycle.
    from repro.lint import rules as _rules  # noqa: F401

    return dict(sorted(_REGISTRY.items()))


def select_rules(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[type[Rule]]:
    """The rule classes matching ``--select`` / ``--ignore`` code prefixes.

    A selector matches by prefix, so ``RPL0`` selects the whole
    determinism family and ``RPL101`` exactly one rule.

    Raises:
        LintError: When a selector matches no registered rule.
    """
    rules = all_rules()

    def expand(codes: Iterable[str], flag: str) -> set[str]:
        out: set[str] = set()
        for code in codes:
            matched = {c for c in rules if c.startswith(code.upper())}
            if not matched:
                raise LintError(
                    f"{flag} {code!r} matches no rule; known codes: "
                    + ", ".join(rules)
                )
            out |= matched
        return out

    chosen = expand(select, "--select") if select else set(rules)
    dropped = expand(ignore, "--ignore") if ignore else set()
    return [rules[c] for c in sorted(chosen - dropped)]


# ---------------------------------------------------------------------------
# Suppression
# ---------------------------------------------------------------------------


def noqa_map(source: str) -> dict[int, set[str] | None]:
    """Per-line suppressions: ``None`` means all codes, a set means those.

    Only real trailing ``# noqa`` *comments* are recognised (the same
    contract flake8 uses) — the source is tokenised so a noqa mentioned
    inside a string or docstring does not count.  A bare ``# noqa``
    silences every rule on its line.  Unparsable source falls back to
    raw line scanning.
    """
    out: dict[int, set[str] | None] = {}

    def record(line_no: int, text: str) -> None:
        m = _NOQA_RE.search(text)
        if not m:
            return
        codes = m.group("codes")
        if codes is None:
            out[line_no] = None
        else:
            parsed = {c.strip().upper() for c in codes.split(",")}
            existing = out.get(line_no)
            out[line_no] = parsed if existing is None else parsed | existing

    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                record(tok.start[0], tok.string)
        return out
    except (tokenize.TokenError, IndentationError, SyntaxError):
        out.clear()
        for i, line in enumerate(source.splitlines(), start=1):
            if "#" in line:
                record(i, line)
        return out


def _apply_noqa(
    findings: list[Finding], suppressions: dict[int, set[str] | None]
) -> tuple[list[Finding], list[Finding]]:
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    _missing = object()
    for f in findings:
        codes = suppressions.get(f.line, _missing)
        if codes is _missing:
            kept.append(f)
        elif codes is None or f.code in codes:  # type: ignore[operator]
            suppressed.append(f)
        else:
            kept.append(f)
    return kept, suppressed


# ---------------------------------------------------------------------------
# Checking
# ---------------------------------------------------------------------------


def _link_parents(tree: ast.AST) -> None:
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._lint_parent = node  # type: ignore[attr-defined]


@dataclass
class FileResult:
    """The outcome of linting one file."""

    path: str
    findings: list[Finding]
    suppressed: list[Finding]


def check_source(
    source: str,
    path: str,
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    project_root: str | Path | None = None,
) -> FileResult:
    """Lint one source string as if it lived at ``path``.

    Args:
        source: Python source text.
        path: Real or virtual path; its package-relative form drives
            rule scoping.
        select: Optional code prefixes to run exclusively.
        ignore: Optional code prefixes to skip.
        project_root: Repository root for rules that cross-check other
            files (e.g. the register map); ``None`` disables those
            lookups and the rules fall back to their built-in defaults.

    Raises:
        LintError: On syntax errors in ``source`` or bad selectors.
    """
    posix = Path(path).as_posix()
    try:
        tree = ast.parse(source, filename=posix)
    except SyntaxError as exc:
        raise LintError(f"cannot parse {posix}: {exc}") from exc
    _link_parents(tree)
    ctx = LintContext(
        path=posix,
        module_path=module_relpath(posix),
        source=source,
        tree=tree,
        imports=ImportMap(tree),
        project_root=Path(project_root) if project_root is not None else None,
    )
    for rule_cls in select_rules(select, ignore):
        if rule_cls.applies_to(ctx.module_path):
            rule_cls(ctx).run()
    ctx.findings.sort()
    kept, suppressed = _apply_noqa(ctx.findings, noqa_map(source))
    return FileResult(path=posix, findings=kept, suppressed=suppressed)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files.

    Raises:
        LintError: For a path that does not exist.
    """
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            found = sorted(
                f for f in p.rglob("*.py")
                if not _SKIP_DIRS.intersection(f.parts)
            )
            yield from found
        elif p.is_file():
            yield p
        else:
            raise LintError(f"no such file or directory: {p}")


@dataclass
class CheckResult:
    """The outcome of a whole ``repro check`` run."""

    findings: list[Finding]
    suppressed: list[Finding]
    files_checked: int

    @property
    def counts_by_code(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.code] = out.get(f.code, 0) + 1
        return dict(sorted(out.items()))


def check_paths(
    paths: Iterable[str | Path],
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    project_root: str | Path | None = None,
    jobs: int = 1,
) -> CheckResult:
    """Lint every Python file under ``paths`` (per-file rules only).

    ``project_root`` defaults to the common parent that contains the
    first path — good enough for ``repro check src/`` from a checkout.
    Delegates to the analysis driver (:mod:`repro.lint.driver`), which
    also provides the whole-program ``--flow`` mode and the summary
    cache; this entry point keeps the historical contract — per-file
    rules, no cache I/O — while gaining ``jobs`` parallelism.
    """
    # Deferred import: the driver imports the engine.
    from repro.lint.driver import analyze_paths

    return analyze_paths(
        paths,
        select=select,
        ignore=ignore,
        project_root=project_root,
        jobs=jobs,
        flow=False,
        cache=False,
    )


def _guess_project_root(anchor: Path) -> Path:
    """Walk up from a file to the checkout root (marked by pyproject.toml)."""
    cur = anchor.resolve()
    for candidate in [cur, *cur.parents]:
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return anchor.resolve().parent
