"""Command-line interface: ``python -m repro`` / ``repro``.

Subcommands:

* ``list`` — show available chips, scenarios, and governors.
* ``run`` — simulate one governor on one scenario and print the summary.
* ``train`` — train the RL policy on a scenario and save a checkpoint.
* ``compare`` — the headline comparison (RL vs. baselines) on one scenario.
* ``batch`` — run a governors x seeds grid through the vectorised batch
  backend in one process; ``rl-policy`` jobs sharing a configuration
  train lock-step (see ``docs/batch.md``).
* ``fleet`` — run a scenarios x governors x seeds grid across worker
  processes (see ``docs/fleet.md``).
* ``latency`` — the software-vs-hardware decision-latency table
  (``--format json`` adds the typical/best-case speedups plus the
  paper's claims for programmatic comparison).
* ``serve`` — the long-running policy-decision service: boot a trained
  checkpoint and answer JSONL decision/simulation requests with
  backpressure and graceful drain (see ``docs/serving.md``).
* ``decide`` — one-shot serve client: observations in, decisions out.
* ``trace`` — run instrumented and write a Chrome ``trace_event`` file
  (plus RL convergence instants) loadable in Perfetto.
* ``profile`` — characterise a scenario or a trace CSV, and print the
  per-phase engine time breakdown.
* ``report`` — run selected experiments and write a markdown report.
* ``check`` — run the repo's invariant-aware static analysis
  (``repro.lint``) over source paths; the CI lint gate
  (see ``docs/static-analysis.md``).
* ``perf`` — the performance ledger: ``perf list`` shows recorded runs,
  ``perf compare <baseline-ledger>`` classifies metric shifts against a
  reference ledger, and ``perf gate`` is the CI regression gate
  (see the "Performance ledger" section of ``docs/observability.md``).

``run --governor checkpoint:<dir>`` evaluates a saved policy checkpoint
instead of a named governor; the same spelling works in ``fleet
--governors``.  ``compare``/``report``/``fleet`` accept ``--jobs N``
(0 = CPU count) to fan simulation jobs out over worker processes.

Every subcommand takes ``--log-level debug|info|warning|error``
(stderr diagnostics through the ``repro`` logger hierarchy), and
``run``/``compare``/``fleet`` take ``--trace FILE`` / ``--metrics FILE``
to capture observability output (see ``docs/observability.md``).
``run``/``compare``/``fleet`` also take ``--ledger [FILE]`` to append
the run's metrics to the performance ledger (bare ``--ledger`` uses
``$REPRO_PERF_LEDGER`` or ``.repro/perf-ledger.jsonl``).
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
import time
from contextlib import contextmanager

from repro.analysis.sweep import run_baseline, sweep
from repro.analysis.tables import format_table
from repro.core.checkpoint import load_policies, save_policies
from repro.core.trainer import train_policy
from repro.errors import ReproError
from repro.governors import available, create
from repro.hw.latency import compare_latency
from repro.sim.engine import Simulator
from repro.soc.presets import PRESETS
from repro.workload.scenarios import SCENARIOS, get_scenario

log = logging.getLogger("repro.cli")

_LOG_LEVELS = ("debug", "info", "warning", "error")


class _StderrHandler(logging.Handler):
    """Resolves ``sys.stderr`` at emit time, so output redirection
    (tests, shells) after configuration still works."""

    def emit(self, record: logging.LogRecord) -> None:
        print(self.format(record), file=sys.stderr)


def _configure_logging(level_name: str) -> None:
    """Point the ``repro`` logger hierarchy at stderr at the chosen level.

    Idempotent: repeated ``main()`` calls (tests) re-use the handler and
    only adjust the level.
    """
    root = logging.getLogger("repro")
    root.setLevel(getattr(logging, level_name.upper()))
    if not root.handlers:
        handler = _StderrHandler()
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        root.addHandler(handler)
    root.propagate = False


@contextmanager
def _obs_session(trace_path: str | None, metrics_path: str | None,
                 trace: bool = True, force: bool = False):
    """An observability capture when any output path asks for one.

    Yields ``None`` (and stays zero-overhead) when neither ``--trace``
    nor ``--metrics`` was given and ``force`` is off (``--ledger`` runs
    force a metrics capture so decision-latency percentiles land in the
    ledger).
    """
    if not (trace_path or metrics_path or force):
        yield None
        return
    from repro import obs

    with obs.capture(trace=trace) as session:
        yield session


def _ledger_path(args: argparse.Namespace) -> str | None:
    """The ``--ledger`` value, with bare ``--ledger`` (empty string)
    mapped to ``None`` so :func:`repro.perf.resolve_ledger_path` applies
    the env-var/default resolution."""
    return getattr(args, "ledger", None) or None


def _ledger_requested(args: argparse.Namespace) -> bool:
    """Whether ``--ledger`` was given at all (bare or with a path)."""
    return getattr(args, "ledger", None) is not None


def _record_result(
    kind: str,
    name: str,
    result,
    config: dict,
    args: argparse.Namespace,
    session=None,
    run_id: str | None = None,
) -> None:
    """Append one simulation result to the performance ledger."""
    from repro import perf

    metrics = {
        "energy_j": result.total_energy_j,
        "mean_qos": result.qos.mean_qos,
        "deadline_miss_rate": result.qos.deadline_miss_rate,
        "energy_per_qos_j": result.energy_per_qos_j,
    }
    if session is not None:
        metrics.update(perf.metrics_from_snapshot(session.metrics.snapshot()))
    record = perf.record_run(
        kind, name, metrics, config,
        run_id=run_id, path=_ledger_path(args),
    )
    print(
        f"ledger: recorded {record.kind}:{record.name} "
        f"({len(record.metrics)} metrics, run {record.run_id}) "
        f"to {perf.resolve_ledger_path(_ledger_path(args))}"
    )


def _write_obs(session, trace_path: str | None,
               metrics_path: str | None) -> None:
    """Write the session's Chrome trace / Prometheus text outputs."""
    if session is None:
        return
    from repro import obs

    if trace_path:
        obs.write_chrome_trace(trace_path, session.tracer, session.metrics)
        print(
            f"chrome trace written to {trace_path} "
            f"({len(session.tracer.spans)} spans, "
            f"{len(session.tracer.instants)} instants)"
        )
    if metrics_path:
        with open(metrics_path, "w") as fh:
            fh.write(obs.prometheus_text(session.metrics))
        print(f"metrics written to {metrics_path}")


def _cmd_list(args: argparse.Namespace) -> int:
    print("chips:     ", ", ".join(sorted(PRESETS)))
    print("scenarios:")
    for name in sorted(SCENARIOS):
        print(f"  {name:<16s} {SCENARIOS[name].description}")
    print("governors: ", ", ".join(available() + ["rl-policy"]))
    return 0


def _resolve_chip(args: argparse.Namespace):
    """Build the chip from --chip-file when given, else the preset."""
    if getattr(args, "chip_file", None):
        from repro.soc.devicetree import chip_from_json

        return chip_from_json(args.chip_file)
    return PRESETS[args.chip]()


def _cmd_run(args: argparse.Namespace) -> int:
    chip = _resolve_chip(args)
    scenario = get_scenario(args.scenario)
    log.info(
        "run: chip=%s scenario=%s governor=%s duration=%.1fs seed=%d",
        args.chip_file or args.chip, args.scenario, args.governor,
        args.duration, args.seed,
    )
    with _obs_session(
        args.trace, args.metrics, force=_ledger_requested(args)
    ) as session:
        if args.governor.startswith("checkpoint:"):
            policies = load_policies(
                args.governor.removeprefix("checkpoint:"), chip=chip
            )
            trace = scenario.trace(args.duration, seed=args.seed)
            result = Simulator(chip, trace, policies).run()
        else:
            result = run_baseline(
                chip, scenario, args.governor,
                duration_s=args.duration, seed=args.seed,
            )
    log.info("run finished: energy=%.3f J mean_qos=%.3f",
             result.total_energy_j, result.qos.mean_qos)
    print(result.summary())
    _write_obs(session, args.trace, args.metrics)
    if _ledger_requested(args):
        _record_result(
            "run", args.scenario, result,
            {
                "chip": args.chip_file or args.chip,
                "governor": args.governor,
                "seed": args.seed,
                "duration_s": args.duration,
            },
            args, session=session,
        )
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    chip = _resolve_chip(args)
    scenario = get_scenario(args.scenario)
    recorder = None
    if args.learn_log:
        from repro.obs import LearnRecorder

        recorder = LearnRecorder(args.learn_log)
    training = train_policy(
        chip,
        scenario,
        episodes=args.episodes,
        episode_duration_s=args.duration,
        recorder=recorder,
    )
    for record in training.history:
        print(
            f"episode {record.episode:3d}: "
            f"E/QoS = {record.energy_per_qos_j * 1e3:8.3f} mJ/unit  "
            f"QoS = {record.mean_qos:.3f}"
        )
    path = save_policies(training.policies, args.save or args.out)
    print(f"checkpoint saved to {path}")
    if recorder is not None:
        print(
            f"learning ledger: {recorder.written} record(s) appended to "
            f"{recorder.path}"
        )
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.batch import BatchEngine
    from repro.fleet.spec import JobSpec

    specs = []
    for governor in args.governors.split(","):
        for k in range(args.seeds):
            specs.append(JobSpec(
                scenario=args.scenario,
                governor=governor.strip(),
                seed=args.seed + k,
                chip=args.chip,
                duration_s=args.duration,
                train_episodes=args.episodes,
                train_episode_s=args.episode_duration,
                train_base_seed=args.train_seed + 1000 * k,
            ))
    log.info(
        "batch: chip=%s scenario=%s governors=%s seeds=%d serial=%s",
        args.chip, args.scenario, args.governors, args.seeds, args.serial,
    )
    engine = BatchEngine(specs, force_serial=args.serial)
    plan = engine.plan()
    started = time.perf_counter()
    results = engine.run()
    elapsed = time.perf_counter() - started
    rows = [
        (
            spec.governor,
            spec.seed,
            result.total_energy_j,
            result.qos.mean_qos,
            result.energy_per_qos_j * 1e3,
            "fast" if fast else "serial",
        )
        for spec, result, fast in zip(specs, results, plan)
    ]
    print(format_table(
        ["governor", "seed", "energy J", "mean QoS", "E/QoS mJ", "path"],
        rows,
        title=f"{args.chip} / {args.scenario}",
    ))
    print(
        f"{len(specs)} jobs in {elapsed:.2f}s "
        f"({sum(plan)} vectorised, {len(specs) - sum(plan)} serial)"
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    chip = _resolve_chip(args)
    log.info(
        "compare: chip=%s scenario=%s governors=%s episodes=%d jobs=%d",
        args.chip, args.scenario, args.governors, args.episodes, args.jobs,
    )
    with _obs_session(args.trace, args.metrics) as session:
        result = sweep(
            chip,
            [args.scenario],
            args.governors.split(","),
            include_rl=True,
            duration_s=args.duration,
            train_episodes=args.episodes,
            jobs=args.jobs,
        )
    rows = [
        (r.governor, r.energy_j, r.mean_qos, r.energy_per_qos_j * 1e3)
        for r in result.rows
    ]
    print(
        format_table(
            ["governor", "energy [J]", "QoS", "E/QoS [mJ/unit]"],
            rows,
            title=f"scenario: {args.scenario}",
        )
    )
    _write_obs(session, args.trace, args.metrics)
    if _ledger_requested(args):
        from repro import perf

        run_id = perf.new_run_id()
        for r in result.rows:
            perf.record_run(
                "compare", r.scenario,
                {
                    "energy_j": r.energy_j,
                    "mean_qos": r.mean_qos,
                    "deadline_miss_rate": r.deadline_miss_rate,
                    "energy_per_qos_j": r.energy_per_qos_j,
                },
                {
                    "chip": args.chip,
                    "governor": r.governor,
                    "duration_s": args.duration,
                },
                run_id=run_id, path=_ledger_path(args),
            )
        print(
            f"ledger: recorded {len(result.rows)} compare rows "
            f"(run {run_id}) to "
            f"{perf.resolve_ledger_path(_ledger_path(args))}"
        )
    return 0


def _cmd_latency(args: argparse.Namespace) -> int:
    chip = PRESETS[args.chip]()
    rows = []
    for cluster in chip:
        for opp in cluster.spec.opp_table:
            cmp = compare_latency(opp.freq_hz, label=f"{cluster.spec.name}@{opp.freq_mhz:.0f}MHz")
            rows.append(cmp)
    if args.format == "json":
        from repro.experiments.latency import (
            PAPER_BEST_CASE_SPEEDUP,
            PAPER_TYPICAL_SPEEDUP,
            e4_decision_latency,
        )

        e4 = e4_decision_latency(chip=chip)
        payload = {
            "chip": args.chip,
            "rows": [
                {
                    "label": r.label,
                    "software_s": r.software_s,
                    "hardware_s": r.hardware_s,
                    "speedup": r.speedup,
                }
                for r in rows
            ],
            "typical_speedup": e4.typical.speedup,
            "best_case_speedup": e4.best_case.speedup,
            "paper": {
                "typical_speedup": PAPER_TYPICAL_SPEEDUP,
                "best_case_speedup": PAPER_BEST_CASE_SPEEDUP,
            },
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(
        format_table(
            ["CPU operating point", "SW [us]", "HW [us]", "speedup"],
            [
                (r.label, r.software_s * 1e6, r.hardware_s * 1e6, r.speedup)
                for r in rows
            ],
            title="decision latency, software vs hardware policy",
        )
    )
    return 0


def _serve_config(args: argparse.Namespace):
    from repro.serve import ServeConfig

    return ServeConfig(
        workers=args.workers,
        queue_size=args.queue_size,
        default_deadline_s=args.deadline,
        drain_timeout_s=args.drain_timeout,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    """The policy-decision daemon: JSONL requests in, JSONL replies out.

    Replies and only replies go to stdout (completion order, correlated
    by ``request_id``); status and stats go to stderr so the reply
    stream stays machine-parseable.
    """
    import asyncio

    from repro.serve import PolicyServer, serve_jsonl

    ops_log = None
    if args.ops_log:
        from repro.obs import OpsLogger

        ops_log = OpsLogger(args.ops_log)
    server = PolicyServer.from_checkpoint(
        args.checkpoint, chip=args.chip, config=_serve_config(args),
        ops_log=ops_log, drift_reference=args.drift_reference,
    )
    stream = open(args.requests) if args.requests else sys.stdin

    def write_reply(mapping: dict) -> None:
        print(json.dumps(mapping), flush=True)

    try:
        with _obs_session(None, args.metrics, trace=False,
                          force=_ledger_requested(args)) as session:
            async def _run() -> int:
                await server.start()
                return await serve_jsonl(server, stream.readline, write_reply)

            submitted = asyncio.run(_run())
    finally:
        if args.requests:
            stream.close()
    stats = server.stats
    print(
        f"serve: {submitted} submitted, {stats.served} served "
        f"({stats.served_decisions} decisions, "
        f"{stats.served_simulations} simulations), "
        f"{stats.rejected} rejected",
        file=sys.stderr,
    )
    if server.drift is not None:
        drift = server.drift
        print(
            f"drift: {drift.disagreements}/{drift.decisions} decision(s) "
            f"disagreed with the reference checkpoint",
            file=sys.stderr,
        )
    if ops_log is not None:
        print(
            f"ops log: {ops_log.written} record(s) appended to "
            f"{ops_log.path}",
            file=sys.stderr,
        )
    if session is not None and args.metrics:
        from repro import obs

        with open(args.metrics, "w") as fh:
            fh.write(obs.prometheus_text(session.metrics))
        print(f"metrics written to {args.metrics}", file=sys.stderr)
    if _ledger_requested(args) and session is not None:
        from repro import perf

        record = perf.record_run(
            "serve", "jsonl",
            perf.metrics_from_snapshot(session.metrics.snapshot()),
            {
                "chip": args.chip,
                "workers": args.workers,
                "queue_size": args.queue_size,
            },
            path=_ledger_path(args),
        )
        print(
            f"ledger: recorded serve:jsonl ({len(record.metrics)} metrics, "
            f"run {record.run_id}) to "
            f"{perf.resolve_ledger_path(_ledger_path(args))}",
            file=sys.stderr,
        )
    return 0


def _cmd_decide(args: argparse.Namespace) -> int:
    """One-shot client: answer request mappings from a flag or a file.

    Every request gets a trace_id stamped client-side (unless it
    already carries one), the replies echo it in their JSON, and a
    stderr line summarises the correlation ids so the run can be joined
    against server-side ops logs and merged traces.
    """
    import asyncio
    from dataclasses import replace as _replace

    from repro.obs import new_trace_id
    from repro.serve import (
        PolicyServer,
        reply_to_mapping,
        request_from_mapping,
        serve_once,
    )

    server = PolicyServer.from_checkpoint(
        args.checkpoint, chip=args.chip, config=_serve_config(args)
    )
    payloads = []
    if args.observation:
        payloads.append(
            {"kind": "decision", "observation": json.loads(args.observation)}
        )
    if args.requests:
        with open(args.requests) as fh:
            payloads.extend(
                json.loads(line) for line in fh if line.strip()
            )
    if not payloads:
        raise ReproError(
            "nothing to decide: pass --observation JSON and/or --requests FILE"
        )
    requests = [
        _replace(r, trace_id=r.trace_id or new_trace_id())
        for r in (request_from_mapping(p, server.chip) for p in payloads)
    ]
    replies = asyncio.run(serve_once(server, requests))
    for reply in replies:
        print(json.dumps(reply_to_mapping(reply)))
    for reply in replies:
        mapping = reply_to_mapping(reply)
        print(
            f"decide: {mapping['kind']} trace_id={mapping['trace_id']} "
            f"request_id={mapping['request_id'] or '-'}",
            file=sys.stderr,
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.core.trainer import evaluate_policy

    if args.merge:
        merged = obs.merge_trace_files(args.merge, out=args.out)
        lanes = obs.trace_lanes(merged)
        print(
            f"merged {len(args.merge)} trace(s) "
            f"({len(merged['traceEvents'])} events, "
            f"{len(lanes)} lane(s): pids {lanes}) into {args.out}"
        )
        print("open in https://ui.perfetto.dev or chrome://tracing")
        return 0
    if args.scenario is None:
        raise ReproError("a scenario is required unless --merge is given")

    chip = _resolve_chip(args)
    scenario = get_scenario(args.scenario)
    log.info(
        "trace: scenario=%s governor=%s duration=%.1fs -> %s",
        args.scenario, args.governor, args.duration, args.out,
    )
    with obs.capture() as session:
        if args.governor == "rl-policy":
            training = train_policy(
                chip,
                scenario,
                episodes=args.episodes,
                episode_duration_s=args.duration,
            )
            result = evaluate_policy(
                chip, training.policies,
                scenario.trace(args.duration, seed=args.seed),
            )
        elif args.governor.startswith("checkpoint:"):
            policies = load_policies(
                args.governor.removeprefix("checkpoint:"), chip=chip
            )
            result = evaluate_policy(
                chip, policies, scenario.trace(args.duration, seed=args.seed)
            )
        else:
            result = run_baseline(
                chip, scenario, args.governor,
                duration_s=args.duration, seed=args.seed,
            )
    tracer = session.tracer
    if args.format == "chrome":
        obs.write_chrome_trace(args.out, tracer, session.metrics)
    else:
        obs.write_jsonl(args.out, tracer, session.metrics)
    print(result.summary())
    print()
    print(
        f"{len(tracer.spans)} spans, {len(tracer.instants)} instants "
        f"({len(tracer.span_names())} span names) written to {args.out}"
    )
    if args.format == "chrome":
        print("open in https://ui.perfetto.dev or chrome://tracing")
    if args.metrics:
        with open(args.metrics, "w") as fh:
            fh.write(obs.prometheus_text(session.metrics))
        print(f"metrics written to {args.metrics}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.workload.characterize import profile
    from repro.workload.trace import Trace

    if args.from_trace:
        # Offline re-profiling: phase breakdown straight from a saved
        # trace file (Chrome or JSONL), no simulation run.
        spans = obs.load_spans(args.from_trace)
        print(
            obs.format_breakdown(
                obs.phase_breakdown(spans),
                title=f"engine phase breakdown ({args.from_trace})",
            )
        )
        return 0

    if args.trace:
        trace = Trace.from_csv(args.trace)
    else:
        trace = get_scenario(args.scenario).trace(args.duration, seed=args.seed)
    print(profile(trace).summary())

    chip = _resolve_chip(args)
    governor_name = args.governor
    create(governor_name)  # fail fast on unknown names
    with obs.capture() as session:
        Simulator(chip, trace, lambda cluster: create(governor_name)).run()
    print()
    print(
        obs.format_breakdown(
            obs.phase_breakdown(session.tracer.spans),
            title=(
                f"engine phase breakdown ({governor_name}, "
                f"{trace.duration_s:.1f} s simulated)"
            ),
        )
    )
    if args.trace_out:
        obs.write_chrome_trace(args.trace_out, session.tracer, session.metrics)
        print(f"chrome trace written to {args.trace_out}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import ReportConfig, generate_report

    config = ReportConfig(
        experiments=args.experiments.split(","),
        duration_s=args.duration,
        train_episodes=args.episodes,
        jobs=args.jobs,
    )
    generate_report(config, path=args.out)
    print(f"report written to {args.out}")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.fleet import (
        FleetFinished,
        FleetProgress,
        FleetSpec,
        failure_table,
        fleet_summary,
        format_event,
        format_progress_line,
        result_table,
        run_fleet,
    )

    if args.spec:
        with open(args.spec) as fh:
            try:
                mapping = json.load(fh)
            except json.JSONDecodeError as exc:
                raise ReproError(f"invalid JSON in {args.spec}: {exc}") from exc
        spec = FleetSpec.from_mapping(mapping)
    else:
        try:
            seeds = tuple(int(s) for s in args.seeds.split(","))
        except ValueError as exc:
            raise ReproError(
                f"--seeds must be comma-separated integers: {args.seeds!r}"
            ) from exc
        spec = FleetSpec(
            scenarios=tuple(args.scenarios.split(",")),
            governors=tuple(args.governors.split(",")),
            seeds=seeds,
            chips=tuple(args.chip.split(",")),
            include_rl=args.include_rl,
            duration_s=args.duration,
            train_episodes=args.episodes,
            timeout_s=args.timeout,
            retries=args.retries,
        )
    if args.metrics:
        spec = replace(spec, collect_metrics=True)
    if args.trace_dir:
        spec = replace(spec, trace_dir=args.trace_dir)
    if args.learn_log:
        spec = replace(spec, learn_log_dir=args.learn_log)
    log.info("fleet: %d-job grid, jobs=%d", len(spec.expand()), args.jobs)

    progress_mode = "none" if args.quiet else args.progress

    def progress(event) -> None:
        if progress_mode == "none":
            return
        if progress_mode == "live":
            if isinstance(event, FleetProgress):
                line = format_progress_line(event)
                print(f"\r{line}", end="", file=sys.stderr, flush=True)
            elif isinstance(event, FleetFinished):
                print(file=sys.stderr)
            return
        line = format_event(event)
        if line:
            print(line, file=sys.stderr)

    cache = None
    if args.cache:
        from repro.cache import RunCache

        cache = RunCache(args.cache_dir)
    with _obs_session(args.trace, None) as session:
        result = run_fleet(spec, jobs=args.jobs, on_event=progress,
                           cache=cache)
    print(result_table(result.successes))
    failures = failure_table(result.failures)
    if failures:
        print()
        print(failures)
    print()
    print(fleet_summary(result))
    if args.metrics:
        from repro.fleet import merge_job_metrics
        from repro.obs import prometheus_text

        merged = merge_job_metrics(result.successes)
        with open(args.metrics, "w") as fh:
            fh.write(prometheus_text(merged))
        print(f"merged fleet metrics written to {args.metrics}")
    if args.trace_dir:
        from repro.fleet import trace_paths

        paths = trace_paths(result.successes)
        print(
            f"{len(paths)} per-job trace(s) in {args.trace_dir}; "
            f"stitch with: repro trace --merge {args.trace_dir}/*.json "
            f"--out merged.json"
        )
    if args.learn_log:
        print(
            f"per-job learning ledgers in {args.learn_log}; read back "
            f"with: repro learn report --learn-log {args.learn_log}/<job>.jsonl"
        )
    if _ledger_requested(args):
        from repro import perf

        run_id = perf.new_run_id()
        for s in result.successes:
            metrics = {
                "energy_j": s.energy_j,
                "mean_qos": s.mean_qos,
                "deadline_miss_rate": s.deadline_miss_rate,
                "energy_per_qos_j": s.energy_per_qos_j,
                "wall_s": s.wall_s,
                "sim_throughput_per_s": s.sim_throughput,
            }
            if s.metrics is not None:
                metrics.update(perf.metrics_from_snapshot(s.metrics))
            perf.record_run(
                "fleet", s.spec.scenario, metrics,
                {
                    "chip": s.spec.chip,
                    "governor": s.spec.governor,
                    "seed": s.spec.seed,
                    "duration_s": s.spec.duration_s,
                },
                run_id=run_id, path=_ledger_path(args),
            )
        perf.record_run(
            "fleet", "grid",
            {
                "jobs_total": float(len(result.successes) + len(result.failures)),
                "jobs_failed": float(len(result.failures)),
                "cache_hits": float(result.cache_hits),
                "cache_misses": float(result.cache_misses),
                "wall_s": result.wall_s,
            },
            {
                "scenarios": ",".join(spec.scenarios),
                "governors": ",".join(spec.governor_axis),
                "seeds": ",".join(str(s) for s in spec.seeds),
                "chips": ",".join(spec.chips),
            },
            run_id=run_id, path=_ledger_path(args),
        )
        print(
            f"ledger: recorded {len(result.successes)} fleet rows + "
            f"grid summary (run {run_id}) to "
            f"{perf.resolve_ledger_path(_ledger_path(args))}"
        )
    _write_obs(session, args.trace, None)
    if args.out:
        rows = [
            {
                **s.spec.to_mapping(),
                "energy_j": s.energy_j,
                "mean_qos": s.mean_qos,
                "deadline_miss_rate": s.deadline_miss_rate,
                "energy_per_qos_j": s.energy_per_qos_j,
                "wall_s": s.wall_s,
                "attempts": s.attempts,
                "cached": s.cached,
            }
            for s in result.successes
        ]
        failed = [
            {
                **f.spec.to_mapping(),
                "error_type": f.error_type,
                "error": f.error,
                "attempts": f.attempts,
                "timed_out": f.timed_out,
            }
            for f in result.failures
        ]
        with open(args.out, "w") as fh:
            json.dump(
                {
                    "rows": rows,
                    "failures": failed,
                    "workers": result.workers,
                    "wall_s": result.wall_s,
                    "cache_hits": result.cache_hits,
                },
                fh,
                indent=2,
            )
        print(f"results written to {args.out}")
    return 0 if result.successes else 1


_DEFAULT_BASELINE = "lint-baseline.json"


def _find_baseline(explicit: str | None, no_baseline: bool) -> str | None:
    """The baseline file to gate against, or ``None``.

    An explicit ``--baseline`` always wins (and must exist);  otherwise
    a committed ``lint-baseline.json`` in the working directory is
    picked up automatically, so plain ``repro check src/`` is the CI
    gate.  ``--no-baseline`` shows the raw findings.
    """
    if no_baseline:
        return None
    if explicit is not None:
        return explicit
    from pathlib import Path

    return _DEFAULT_BASELINE if Path(_DEFAULT_BASELINE).is_file() else None


def _cmd_check(args: argparse.Namespace) -> int:
    from repro import lint

    if args.list_rules:
        print(lint.rule_catalogue())
        return 0
    paths = args.paths or ["src"]
    result = lint.analyze_paths(
        paths,
        select=args.select.split(",") if args.select else None,
        ignore=args.ignore.split(",") if args.ignore else None,
        jobs=args.jobs,
        flow=args.flow,
        cache=not args.no_lintcache,
        cache_dir=args.lintcache_dir,
    )
    findings = result.findings
    accepted = 0
    stale = 0
    if args.write_baseline:
        out = args.baseline or _DEFAULT_BASELINE
        lint.Baseline.from_findings(findings).save(out)
        print(
            f"baseline with {len(findings)} finding"
            f"{'s' if len(findings) != 1 else ''} written to {out}"
        )
        return 0
    baseline_path = _find_baseline(args.baseline, args.no_baseline)
    if baseline_path is not None:
        split = lint.filter_findings(
            findings, lint.Baseline.load(baseline_path)
        )
        findings = split.new
        accepted = len(split.accepted)
        stale = len(split.stale)
    statistics = None
    if args.statistics:
        statistics = lint.build_statistics(
            findings,
            files_checked=result.files_checked,
            cache_hits=result.cache_hits,
            cache_misses=result.cache_misses,
            flow=result.flow,
        )
    report = lint.render(
        args.format,
        findings,
        files_checked=result.files_checked,
        suppressed=len(result.suppressed),
        accepted=accepted,
        stale=stale,
        statistics=statistics,
    )
    if report:
        print(report)
    if stale and args.format == "text":
        print(
            f"note: {stale} stale baseline "
            + ("entries no longer match" if stale != 1 else "entry no longer matches")
            + " any finding; refresh with --write-baseline",
            file=sys.stderr,
        )
    return 1 if findings else 0


def _cmd_graph(args: argparse.Namespace) -> int:
    from repro import lint
    from repro.lint.flow import CallGraph, ImportGraph

    result = lint.analyze_paths(
        args.paths or ["src"],
        jobs=args.jobs,
        flow=False,
        cache=not args.no_lintcache,
        cache_dir=args.lintcache_dir,
    )
    project = result.project
    assert project is not None  # analyze_paths always assembles one
    graph = (
        ImportGraph(project)
        if args.graph_command == "imports"
        else CallGraph(project)
    )
    print(graph.to_json() if args.format == "json" else graph.to_dot())
    return 0


def _polarity_overrides(args: argparse.Namespace) -> dict[str, str] | None:
    overrides: dict[str, str] = {}
    if getattr(args, "higher_better", None):
        for name in args.higher_better.split(","):
            overrides[name] = "higher"
    if getattr(args, "lower_better", None):
        for name in args.lower_better.split(","):
            overrides[name] = "lower"
    return overrides or None


def _render_comparison(comparison, args: argparse.Namespace) -> None:
    from repro import perf

    if args.format == "json":
        print(perf.render_json(comparison))
    elif args.format == "github":
        print(perf.render_github(comparison))
    else:
        print(
            perf.render_text(
                comparison, verbose=getattr(args, "verbose", False)
            )
        )


def _cmd_cache_list(args: argparse.Namespace) -> int:
    from repro.cache import RunCache

    cache = RunCache(args.cache_dir)
    entries = cache.list_entries()
    rows = [
        (
            e.key[:12],
            e.job_id,
            e.engine_version,
            time.strftime("%Y-%m-%dT%H:%M:%S", time.localtime(e.created_s)),
            e.size_bytes,
        )
        for e in entries
    ]
    print(
        format_table(
            ["key", "job", "engine", "created", "bytes"],
            rows,
            title=f"run cache at {cache.root} ({len(entries)} entr"
                  f"{'y' if len(entries) == 1 else 'ies'})",
        )
    )
    return 0


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    from repro.cache import RunCache
    from repro.sim.engine import ENGINE_VERSION

    stats = RunCache(args.cache_dir).stats()
    print(f"cache dir:      {stats.root}")
    print(f"entries:        {stats.entries}")
    print(f"total bytes:    {stats.total_bytes}")
    print(f"engine version: {ENGINE_VERSION}")
    return 0


def _cmd_cache_clear(args: argparse.Namespace) -> int:
    from repro.cache import RunCache

    cache = RunCache(args.cache_dir)
    removed = cache.clear()
    print(f"removed {removed} entr{'y' if removed == 1 else 'ies'} "
          f"from {cache.root}")
    return 0


def _cmd_perf_list(args: argparse.Namespace) -> int:
    from repro import perf

    records = perf.read_ledger(perf.resolve_ledger_path(_ledger_path(args)))
    if args.limit and len(records) > args.limit:
        records = records[-args.limit:]
    rows = [
        (r.run_id, r.kind, r.name, r.git_sha, len(r.metrics), r.key())
        for r in records
    ]
    print(
        format_table(
            ["run", "kind", "name", "sha", "#metrics", "key"],
            rows,
            title=f"performance ledger ({len(records)} record(s) shown)",
        )
    )
    return 0


def _cmd_perf_compare(args: argparse.Namespace) -> int:
    from repro import perf

    baseline = perf.read_ledger(args.baseline_ref)
    current = perf.read_ledger(perf.resolve_ledger_path(_ledger_path(args)))
    comparison = perf.compare_records(
        baseline, current,
        threshold=args.threshold,
        confidence=args.confidence,
        polarity_overrides=_polarity_overrides(args),
    )
    _render_comparison(comparison, args)
    return 0 if comparison.ok else 1


def _cmd_perf_gate(args: argparse.Namespace) -> int:
    from repro import perf

    current_path = perf.resolve_ledger_path(_ledger_path(args))
    if args.baseline is not None:
        baseline = perf.read_ledger(args.baseline)
        current = perf.read_ledger(current_path)
    else:
        # Self-gating: the ledger's newest run per config key is tested
        # against every earlier record of that key.
        baseline, current = perf.split_latest(perf.read_ledger(current_path))
        if not baseline and not current:
            print(
                "perf gate: nothing to compare (every config key has "
                "records from a single run only) — pass"
            )
            return 0
    comparison = perf.compare_records(
        baseline, current,
        threshold=args.threshold,
        confidence=args.confidence,
        polarity_overrides=_polarity_overrides(args),
    )
    _render_comparison(comparison, args)
    result = perf.gate(comparison, warn_only=args.warn_only)
    if result.comparison.regressions and args.warn_only:
        print(
            f"perf gate: {len(result.comparison.regressions)} "
            "regression(s) (warn-only, not failing)",
            file=sys.stderr,
        )
    return result.exit_code


def _cmd_ops_tail(args: argparse.Namespace) -> int:
    """Print the last N ops-log records, one JSON object per line."""
    from repro.obs import tail_ops_log

    for record in tail_ops_log(args.ops_log, n=args.lines):
        print(json.dumps(record, sort_keys=True))
    return 0


def _cmd_ops_summary(args: argparse.Namespace) -> int:
    """Aggregate an ops log: outcomes, rates, latency percentiles."""
    from repro.obs import format_ops_summary, read_ops_log, summarize_ops

    summary = summarize_ops(read_ops_log(args.ops_log))
    if args.format == "json":
        print(json.dumps(summary, sort_keys=True))
    else:
        print(format_ops_summary(summary))
    return 0


def _cmd_slo_gate(args: argparse.Namespace) -> int:
    """Evaluate SLOs over an ops log; non-zero exit on budget burn."""
    from repro.obs import (
        DEFAULT_SLOS,
        SLO_RENDERERS,
        evaluate_slos,
        load_slo_config,
        read_ops_log,
        slo_gate,
    )

    slos = load_slo_config(args.config) if args.config else DEFAULT_SLOS
    report = evaluate_slos(read_ops_log(args.ops_log), slos)
    print(SLO_RENDERERS[args.format](report))
    result = slo_gate(report, warn_only=args.warn_only)
    if result.report.failures and args.warn_only:
        print(
            f"slo gate: {len(result.report.failures)} "
            "violation(s) (warn-only, not failing)",
            file=sys.stderr,
        )
    return result.exit_code


def _load_learn_spec(args: argparse.Namespace):
    from repro.obs import DEFAULT_CONVERGENCE, load_convergence_spec

    return load_convergence_spec(args.spec) if args.spec else DEFAULT_CONVERGENCE


def _cmd_learn_report(args: argparse.Namespace) -> int:
    """Summarise a learning ledger + run the convergence detectors."""
    from repro.obs import (
        LEARN_RENDERERS,
        evaluate_learning,
        format_learn_summary,
        read_learn_log,
        summarize_learning,
    )

    records = read_learn_log(args.learn_log)
    report = evaluate_learning(records, _load_learn_spec(args))
    if args.format == "json":
        payload = {
            "summary": summarize_learning(records),
            "report": json.loads(LEARN_RENDERERS["json"](report)),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(format_learn_summary(summarize_learning(records)))
    print()
    print(LEARN_RENDERERS[args.format](report))
    return 0


def _cmd_learn_gate(args: argparse.Namespace) -> int:
    """Convergence gate over a learning ledger; non-zero exit on failure."""
    from repro.obs import (
        LEARN_RENDERERS,
        evaluate_learning,
        learn_gate,
        read_learn_log,
    )

    report = evaluate_learning(read_learn_log(args.learn_log),
                               _load_learn_spec(args))
    print(LEARN_RENDERERS[args.format](report))
    result = learn_gate(report, warn_only=args.warn_only)
    if result.report.failures and args.warn_only:
        print(
            f"learn gate: {len(result.report.failures)} "
            "failing detector(s) (warn-only, not failing)",
            file=sys.stderr,
        )
    return result.exit_code


def _cmd_policy_show(args: argparse.Namespace) -> int:
    """Render a checkpoint's learned behaviour, per cluster."""
    from repro.core.checkpoint import load_policies
    from repro.core.introspect import (
        decision_surface,
        policy_summary,
        sanity_report,
        visitation_heatmap,
    )

    policies = load_policies(args.checkpoint)
    if args.format == "json":
        payload = {
            name: policy_summary(policy)
            for name, policy in sorted(policies.items())
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    for name, policy in sorted(policies.items()):
        surface = decision_surface(policy)
        print(f"== cluster {name} ==")
        print(sanity_report(policy))
        print()
        print(visitation_heatmap(surface))
        print()
        print(surface.render_slice(slack_bin=policy.config.slack_bins - 1))
        print()
    return 0


def _cmd_policy_diff(args: argparse.Namespace) -> int:
    """Compare two checkpoints; non-zero exit when they disagree."""
    from repro.core.introspect import diff_checkpoints, render_policy_diff

    diff = diff_checkpoints(args.checkpoint_a, args.checkpoint_b)
    if args.format == "json":
        print(json.dumps(diff.as_mapping(), indent=2, sort_keys=True))
    else:
        print(render_policy_diff(diff))
    return 0 if diff.identical else 1


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RL power management for mobile MPSoCs (DAC 2020 LBR reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--log-level", default="warning", choices=_LOG_LEVELS,
        help="stderr diagnostic verbosity (default: warning)",
    )

    sub.add_parser(
        "list", parents=[common], help="list chips, scenarios, governors"
    ).set_defaults(func=_cmd_list)

    run_p = sub.add_parser("run", parents=[common],
                           help="run one governor on one scenario")
    run_p.add_argument("--chip", default="exynos5422", choices=sorted(PRESETS))
    run_p.add_argument("--chip-file", default=None,
                       help="chip JSON (device-tree schema), overrides --chip")
    run_p.add_argument("--scenario", default="gaming", choices=sorted(SCENARIOS))
    run_p.add_argument("--governor", default="ondemand")
    run_p.add_argument("--duration", type=float, default=30.0)
    run_p.add_argument("--seed", type=int, default=100)
    run_p.add_argument("--trace", default=None, metavar="FILE",
                       help="write a Chrome trace_event JSON of the run")
    run_p.add_argument("--metrics", default=None, metavar="FILE",
                       help="write a Prometheus-format metrics snapshot")
    run_p.add_argument("--ledger", nargs="?", const="", default=None,
                       metavar="FILE",
                       help="append the run to the performance ledger "
                            "(bare flag: $REPRO_PERF_LEDGER or "
                            ".repro/perf-ledger.jsonl)")
    run_p.set_defaults(func=_cmd_run)

    train_p = sub.add_parser("train", parents=[common],
                             help="train the RL policy, save a checkpoint")
    train_p.add_argument("--chip", default="exynos5422", choices=sorted(PRESETS))
    train_p.add_argument("--chip-file", default=None,
                         help="chip JSON (device-tree schema), overrides --chip")
    train_p.add_argument("--scenario", default="gaming", choices=sorted(SCENARIOS))
    train_p.add_argument("--episodes", type=int, default=15)
    train_p.add_argument("--duration", type=float, default=20.0)
    train_p.add_argument("--out", default="rl-checkpoint")
    train_p.add_argument("--save", default=None, metavar="PATH",
                         help="checkpoint directory (overrides --out); the "
                              "manifest stamps the engine version, and "
                              "'repro serve' refuses stale stamps")
    train_p.add_argument("--learn-log", default=None, metavar="FILE",
                         help="append one learning-ledger record per episode "
                              "(read back with 'repro learn report' and "
                              "'repro learn gate'); training results are "
                              "bit-identical with or without it")
    train_p.set_defaults(func=_cmd_train)

    batch_p = sub.add_parser(
        "batch", parents=[common],
        help="run a governors x seeds grid through the vectorised "
             "batch backend (lock-step RL training for rl-policy jobs)",
    )
    batch_p.add_argument("--chip", default="exynos5422",
                         choices=sorted(PRESETS))
    batch_p.add_argument("--scenario", default="gaming",
                         choices=sorted(SCENARIOS))
    batch_p.add_argument("--governors", default="rl-policy",
                         help="comma-separated governor names; rl-policy "
                              "jobs sharing a config train lock-step")
    batch_p.add_argument("--seeds", type=int, default=8,
                         help="rollouts per governor (seed, seed+1, ...)")
    batch_p.add_argument("--seed", type=int, default=100,
                         help="first evaluation seed")
    batch_p.add_argument("--train-seed", type=int, default=0,
                         help="first training seed; rollout k trains from "
                              "train-seed + 1000*k")
    batch_p.add_argument("--episodes", type=int, default=8)
    batch_p.add_argument("--episode-duration", type=float, default=None,
                         help="training episode length (default: --duration)")
    batch_p.add_argument("--duration", type=float, default=20.0)
    batch_p.add_argument("--serial", action="store_true",
                         help="force the reference simulator for every job "
                              "(the bit-identity oracle)")
    batch_p.set_defaults(func=_cmd_batch)

    cmp_p = sub.add_parser("compare", parents=[common],
                           help="RL policy vs baseline governors")
    cmp_p.add_argument("--chip", default="exynos5422", choices=sorted(PRESETS))
    cmp_p.add_argument("--scenario", default="gaming", choices=sorted(SCENARIOS))
    cmp_p.add_argument(
        "--governors", default="performance,powersave,ondemand,conservative"
    )
    cmp_p.add_argument("--duration", type=float, default=20.0)
    cmp_p.add_argument("--episodes", type=int, default=8)
    cmp_p.add_argument("--jobs", type=int, default=1,
                       help="worker processes (0 = CPU count)")
    cmp_p.add_argument("--trace", default=None, metavar="FILE",
                       help="write a Chrome trace_event JSON of the sweep "
                            "(in-process jobs only)")
    cmp_p.add_argument("--metrics", default=None, metavar="FILE",
                       help="write a Prometheus-format metrics snapshot")
    cmp_p.add_argument("--ledger", nargs="?", const="", default=None,
                       metavar="FILE",
                       help="append one ledger record per comparison row")
    cmp_p.set_defaults(func=_cmd_compare)

    fleet_p = sub.add_parser(
        "fleet", parents=[common],
        help="run a scenarios x governors x seeds grid in parallel",
    )
    fleet_p.add_argument("--chip", default="exynos5422",
                         help="comma-separated chip presets")
    fleet_p.add_argument("--scenarios", default="gaming,web_browsing",
                         help="comma-separated scenario names")
    fleet_p.add_argument(
        "--governors",
        default="performance,powersave,userspace,ondemand,conservative,interactive",
        help="comma-separated governors (also rl-policy / checkpoint:<dir>)",
    )
    fleet_p.add_argument("--seeds", default="100,200",
                         help="comma-separated evaluation seeds")
    fleet_p.add_argument("--include-rl", action="store_true",
                         help="train + evaluate the RL policy per scenario")
    fleet_p.add_argument("--duration", type=float, default=20.0)
    fleet_p.add_argument("--episodes", type=int, default=12,
                         help="RL training episodes (rl-policy jobs)")
    fleet_p.add_argument("--jobs", type=int, default=0,
                         help="worker processes (0 = CPU count)")
    fleet_p.add_argument("--timeout", type=float, default=None,
                         help="per-job wall-clock timeout [s]")
    fleet_p.add_argument("--retries", type=int, default=0,
                         help="extra attempts per failed job")
    fleet_p.add_argument("--spec", default=None,
                         help="fleet spec JSON file (overrides grid flags)")
    fleet_p.add_argument("--out", default=None,
                         help="write results as JSON to this path")
    fleet_p.add_argument("--progress", default="plain",
                         choices=("none", "plain", "live"),
                         help="stderr progress stream: one line per event "
                              "(plain), an in-place bar (live), or nothing")
    fleet_p.add_argument("--quiet", action="store_true",
                         help="alias for --progress none")
    fleet_p.add_argument("--trace", default=None, metavar="FILE",
                         help="write a parent-process Chrome trace "
                              "(full engine spans with --jobs 1)")
    fleet_p.add_argument("--metrics", default=None, metavar="FILE",
                         help="collect per-job metric snapshots and write "
                              "the grid-wide merge as Prometheus text")
    fleet_p.add_argument("--trace-dir", default=None, metavar="DIR",
                         help="write one pid-tagged Chrome trace per job "
                              "into DIR (merge with: repro trace --merge)")
    fleet_p.add_argument("--learn-log", default=None, metavar="DIR",
                         help="write one pid-tagged learning ledger per "
                              "rl-policy job into DIR (read back with "
                              "'repro learn report')")
    fleet_p.add_argument("--ledger", nargs="?", const="", default=None,
                         metavar="FILE",
                         help="append per-job rows + the grid summary to "
                              "the performance ledger")
    fleet_p.add_argument("--cache", action=argparse.BooleanOptionalAction,
                         default=False,
                         help="serve repeat jobs from the content-addressed "
                              "run cache and store fresh results "
                              "(--no-cache: off, the default)")
    fleet_p.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="run-cache directory (default: "
                              "$REPRO_CACHE_DIR or .repro/cache)")
    fleet_p.set_defaults(func=_cmd_fleet)

    lat_p = sub.add_parser("latency", parents=[common],
                           help="SW vs HW decision latency table")
    lat_p.add_argument("--chip", default="exynos5422", choices=sorted(PRESETS))
    lat_p.add_argument("--format", default="text", choices=("text", "json"),
                       help="json adds the typical/best-case speedups and "
                            "the paper's claims for programmatic comparison")
    lat_p.set_defaults(func=_cmd_latency)

    serve_common = argparse.ArgumentParser(add_help=False)
    serve_common.add_argument("--checkpoint", required=True, metavar="DIR",
                              help="policy checkpoint directory "
                                   "(from 'repro train --save')")
    serve_common.add_argument("--chip", default="exynos5422",
                              choices=sorted(PRESETS))
    serve_common.add_argument("--workers", type=int, default=2,
                              help="concurrent request handlers")
    serve_common.add_argument("--queue-size", type=int, default=64,
                              help="queue bound; a full queue rejects with "
                                   "'overloaded' instead of buffering")
    serve_common.add_argument("--deadline", type=float, default=None,
                              metavar="S",
                              help="default per-request deadline [s]")
    serve_common.add_argument("--drain-timeout", type=float, default=30.0,
                              metavar="S",
                              help="max wait for queued work at shutdown")

    serve_p = sub.add_parser(
        "serve", parents=[common, serve_common],
        help="policy-decision service: JSONL requests in, replies out",
    )
    serve_p.add_argument("--requests", default=None, metavar="FILE",
                         help="read JSONL requests from FILE instead of "
                              "stdin (EOF drains and shuts down)")
    serve_p.add_argument("--metrics", default=None, metavar="FILE",
                         help="write a Prometheus-format metrics snapshot")
    serve_p.add_argument("--ledger", nargs="?", const="", default=None,
                         metavar="FILE",
                         help="append serve latency percentiles to the "
                              "performance ledger")
    serve_p.add_argument("--ops-log", default=None, metavar="FILE",
                         help="append one structured JSONL record per "
                              "request outcome (read back with 'repro ops' "
                              "and 'repro slo gate')")
    serve_p.add_argument("--drift-reference", default=None, metavar="DIR",
                         help="reference checkpoint to shadow-score every "
                              "decision against; disagreements surface in "
                              "stats, metrics, and the ops log (kind=drift)")
    serve_p.set_defaults(func=_cmd_serve)

    dec_p = sub.add_parser(
        "decide", parents=[common, serve_common],
        help="one-shot client: observation(s) in, decision(s) out",
    )
    dec_p.add_argument("--observation", default=None, metavar="JSON",
                       help="observation fields as a JSON object; "
                            "unspecified fields default from the chip")
    dec_p.add_argument("--requests", default=None, metavar="FILE",
                       help="JSONL request file (same format as 'serve')")
    dec_p.set_defaults(func=_cmd_decide)

    trace_p = sub.add_parser(
        "trace", parents=[common],
        help="run instrumented, write a Chrome trace_event file",
    )
    trace_p.add_argument("scenario", nargs="?", default=None,
                         choices=sorted(SCENARIOS))
    trace_p.add_argument("--merge", nargs="+", default=None,
                         metavar="TRACE",
                         help="merge per-worker Chrome traces (e.g. a "
                              "fleet --trace-dir output) into --out on a "
                              "common timeline instead of running")
    trace_p.add_argument("--chip", default="exynos5422", choices=sorted(PRESETS))
    trace_p.add_argument("--chip-file", default=None,
                         help="chip JSON (device-tree schema), overrides --chip")
    trace_p.add_argument("--governor", default="rl-policy",
                         help="governor name, rl-policy, or checkpoint:<dir>")
    trace_p.add_argument("--duration", type=float, default=10.0)
    trace_p.add_argument("--seed", type=int, default=100)
    trace_p.add_argument("--episodes", type=int, default=5,
                         help="RL training episodes (rl-policy only)")
    trace_p.add_argument("--out", default="trace.json",
                         help="output trace path")
    trace_p.add_argument("--format", default="chrome",
                         choices=("chrome", "jsonl"),
                         help="trace file format")
    trace_p.add_argument("--metrics", default=None, metavar="FILE",
                         help="also write a Prometheus-format snapshot")
    trace_p.set_defaults(func=_cmd_trace)

    prof_p = sub.add_parser(
        "profile", parents=[common],
        help="characterise a scenario or trace CSV, with engine phase timings",
    )
    prof_p.add_argument("--chip", default="exynos5422", choices=sorted(PRESETS))
    prof_p.add_argument("--scenario", default="gaming", choices=sorted(SCENARIOS))
    prof_p.add_argument("--trace", default=None, help="trace CSV path (overrides --scenario)")
    prof_p.add_argument("--from-trace", default=None, metavar="FILE",
                        help="re-profile a saved trace file (Chrome JSON "
                             "or JSONL, e.g. from the ledgered run's "
                             "trace output) instead of running")
    prof_p.add_argument("--duration", type=float, default=30.0)
    prof_p.add_argument("--seed", type=int, default=0)
    prof_p.add_argument("--governor", default="ondemand",
                        help="governor driving the instrumented run")
    prof_p.add_argument("--trace-out", default=None, metavar="FILE",
                        help="write the instrumented run's Chrome trace here")
    prof_p.set_defaults(func=_cmd_profile)

    rep_p = sub.add_parser("report", parents=[common],
                           help="run experiments, write a markdown report")
    rep_p.add_argument("--experiments", default="e1,e3,e4,e7",
                       help="comma-separated ids (e1..e7,a1..a6,x2)")
    rep_p.add_argument("--duration", type=float, default=20.0)
    rep_p.add_argument("--episodes", type=int, default=20)
    rep_p.add_argument("--jobs", type=int, default=1,
                       help="worker processes for sweep-based experiments")
    rep_p.add_argument("--out", default="REPORT.md")
    rep_p.set_defaults(func=_cmd_report)

    check_p = sub.add_parser(
        "check", parents=[common],
        help="run the invariant-aware static analysis (lint gate)",
    )
    check_p.add_argument("paths", nargs="*",
                         help="files or directories (default: src)")
    check_p.add_argument("--select", default=None, metavar="CODES",
                         help="comma-separated code prefixes to run "
                              "exclusively (e.g. RPL0,RPL101)")
    check_p.add_argument("--ignore", default=None, metavar="CODES",
                         help="comma-separated code prefixes to skip")
    check_p.add_argument("--format", default="text",
                         choices=("text", "json", "github"),
                         help="report format (github = Actions annotations)")
    check_p.add_argument("--baseline", default=None, metavar="FILE",
                         help="baseline of accepted findings (default: "
                              "lint-baseline.json when present)")
    check_p.add_argument("--no-baseline", action="store_true",
                         help="ignore any baseline; report raw findings")
    check_p.add_argument("--write-baseline", action="store_true",
                         help="accept all current findings into the "
                              "baseline file and exit 0")
    check_p.add_argument("--list-rules", action="store_true",
                         help="print the rule catalogue and exit")
    check_p.add_argument("--flow", action=argparse.BooleanOptionalAction,
                         default=True,
                         help="run the whole-program RPL9xx rules "
                              "(default: on; --no-flow for per-file only)")
    check_p.add_argument("--jobs", type=int, default=1,
                         help="worker processes for per-file analysis")
    check_p.add_argument("--statistics", action="store_true",
                         help="append per-rule/per-file counts and "
                              "cache traffic to the report")
    check_p.add_argument("--no-lintcache", action="store_true",
                         help="do not read or write the lint summary cache")
    check_p.add_argument("--lintcache-dir", default=None, metavar="DIR",
                         help="lint-cache directory (default: "
                              "$REPRO_LINTCACHE_DIR or .repro/lintcache)")
    check_p.set_defaults(func=_cmd_check)

    graph_p = sub.add_parser(
        "graph", parents=[common],
        help="render the whole-program import or call graph",
    )
    graph_sub = graph_p.add_subparsers(dest="graph_command", required=True)
    for kind, blurb in (
        ("imports", "module import graph (dashed edges = deferred)"),
        ("calls", "name-resolved function call graph"),
    ):
        kind_p = graph_sub.add_parser(kind, parents=[common], help=blurb)
        kind_p.add_argument("paths", nargs="*",
                            help="files or directories (default: src)")
        kind_p.add_argument("--format", default="dot",
                            choices=("dot", "json"),
                            help="output format (default: dot)")
        kind_p.add_argument("--jobs", type=int, default=1,
                            help="worker processes for per-file analysis")
        kind_p.add_argument("--no-lintcache", action="store_true",
                            help="do not read or write the lint summary "
                                 "cache")
        kind_p.add_argument("--lintcache-dir", default=None, metavar="DIR",
                            help="lint-cache directory (default: "
                                 "$REPRO_LINTCACHE_DIR or .repro/lintcache)")
        kind_p.set_defaults(func=_cmd_graph)

    cache_p = sub.add_parser(
        "cache", parents=[common],
        help="content-addressed run cache: list, stats, clear",
    )
    cache_sub = cache_p.add_subparsers(dest="cache_command", required=True)

    cache_common = argparse.ArgumentParser(add_help=False)
    cache_common.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="run-cache directory (default: $REPRO_CACHE_DIR or "
             ".repro/cache)",
    )

    cache_sub.add_parser(
        "list", parents=[common, cache_common],
        help="show stored entries (key, job, engine version, age)",
    ).set_defaults(func=_cmd_cache_list)
    cache_sub.add_parser(
        "stats", parents=[common, cache_common],
        help="entry count, total bytes, current engine version",
    ).set_defaults(func=_cmd_cache_stats)
    cache_sub.add_parser(
        "clear", parents=[common, cache_common],
        help="delete every cached entry",
    ).set_defaults(func=_cmd_cache_clear)

    perf_p = sub.add_parser(
        "perf", parents=[common],
        help="performance ledger: list runs, compare, regression gate",
    )
    perf_sub = perf_p.add_subparsers(dest="perf_command", required=True)

    perf_common = argparse.ArgumentParser(add_help=False)
    perf_common.add_argument(
        "--ledger", default=None, metavar="FILE",
        help="ledger file (default: $REPRO_PERF_LEDGER or "
             ".repro/perf-ledger.jsonl)",
    )

    stat_common = argparse.ArgumentParser(add_help=False)
    stat_common.add_argument(
        "--threshold", type=float, default=0.10,
        help="relative median shift treated as noise (default: 0.10)",
    )
    stat_common.add_argument(
        "--confidence", type=float, default=0.95,
        help="bootstrap CI level for n >= 5 samples (default: 0.95)",
    )
    stat_common.add_argument(
        "--format", default="text", choices=("text", "json", "github"),
        help="report format (github = Actions annotations)",
    )
    stat_common.add_argument(
        "--verbose", action="store_true",
        help="also list unchanged/added/removed metrics (text format)",
    )
    stat_common.add_argument(
        "--higher-better", default=None, metavar="METRICS",
        help="comma-separated metrics where bigger is better "
             "(overrides name-based polarity)",
    )
    stat_common.add_argument(
        "--lower-better", default=None, metavar="METRICS",
        help="comma-separated metrics where smaller is better",
    )

    perf_list_p = perf_sub.add_parser(
        "list", parents=[common, perf_common],
        help="show recorded runs",
    )
    perf_list_p.add_argument("--limit", type=int, default=50,
                             help="show at most the last N records")
    perf_list_p.set_defaults(func=_cmd_perf_list)

    perf_cmp_p = perf_sub.add_parser(
        "compare", parents=[common, perf_common, stat_common],
        help="classify metric shifts against a baseline ledger",
    )
    perf_cmp_p.add_argument("baseline_ref", metavar="BASELINE",
                            help="baseline ledger file to compare against")
    perf_cmp_p.set_defaults(func=_cmd_perf_compare)

    perf_gate_p = perf_sub.add_parser(
        "gate", parents=[common, perf_common, stat_common],
        help="CI regression gate (exit 1 on a regression)",
    )
    perf_gate_p.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline ledger; omitted = gate the ledger's newest run "
             "against its own history per config key",
    )
    perf_gate_p.add_argument(
        "--warn-only", action="store_true",
        help="report regressions but exit 0 (CI bring-up mode)",
    )
    perf_gate_p.set_defaults(func=_cmd_perf_gate)

    ops_p = sub.add_parser(
        "ops", parents=[common],
        help="read structured ops logs written by 'repro serve --ops-log'",
    )
    ops_sub = ops_p.add_subparsers(dest="ops_command", required=True)
    ops_tail_p = ops_sub.add_parser(
        "tail", parents=[common],
        help="print the last N records as JSON lines",
    )
    ops_tail_p.add_argument("ops_log", metavar="FILE",
                            help="ops log (JSONL) to read")
    ops_tail_p.add_argument("-n", "--lines", type=int, default=10,
                            help="number of records to print (default: 10)")
    ops_tail_p.set_defaults(func=_cmd_ops_tail)
    ops_sum_p = ops_sub.add_parser(
        "summary", parents=[common],
        help="aggregate outcomes, rates, and latency percentiles",
    )
    ops_sum_p.add_argument("ops_log", metavar="FILE",
                           help="ops log (JSONL) to read")
    ops_sum_p.add_argument("--format", default="text",
                           choices=("text", "json"))
    ops_sum_p.set_defaults(func=_cmd_ops_summary)

    slo_p = sub.add_parser(
        "slo", parents=[common],
        help="service-level objectives over ops logs",
    )
    slo_sub = slo_p.add_subparsers(dest="slo_command", required=True)
    slo_gate_p = slo_sub.add_parser(
        "gate", parents=[common],
        help="evaluate SLO error-budget burn; non-zero exit on violation",
    )
    slo_gate_p.add_argument("--ops-log", required=True, metavar="FILE",
                            help="ops log (JSONL) to evaluate")
    slo_gate_p.add_argument("--config", default=None, metavar="FILE",
                            help="SLO definitions JSON (default: the "
                                 "built-in decision SLOs)")
    slo_gate_p.add_argument("--format", default="text",
                            choices=("text", "json", "github"),
                            help="github emits workflow error annotations")
    slo_gate_p.add_argument("--warn-only", action="store_true",
                            help="report violations but exit 0 "
                                 "(CI bring-up mode)")
    slo_gate_p.set_defaults(func=_cmd_slo_gate)

    policy_p = sub.add_parser(
        "policy", parents=[common],
        help="introspect saved policy checkpoints: show, diff",
    )
    policy_sub = policy_p.add_subparsers(dest="policy_command", required=True)
    policy_show_p = policy_sub.add_parser(
        "show", parents=[common],
        help="greedy-action tables, visitation heatmap, sanity readout",
    )
    policy_show_p.add_argument("checkpoint", metavar="DIR",
                               help="checkpoint directory "
                                    "(from 'repro train --save')")
    policy_show_p.add_argument("--format", default="text",
                               choices=("text", "json"))
    policy_show_p.set_defaults(func=_cmd_policy_show)
    policy_diff_p = policy_sub.add_parser(
        "diff", parents=[common],
        help="per-state action disagreement between two checkpoints "
             "(exit 1 when they differ, like diff(1))",
    )
    policy_diff_p.add_argument("checkpoint_a", metavar="DIR_A",
                               help="baseline checkpoint directory")
    policy_diff_p.add_argument("checkpoint_b", metavar="DIR_B",
                               help="candidate checkpoint directory")
    policy_diff_p.add_argument("--format", default="text",
                               choices=("text", "json"))
    policy_diff_p.set_defaults(func=_cmd_policy_diff)

    learn_p = sub.add_parser(
        "learn", parents=[common],
        help="read learning ledgers written by '--learn-log'",
    )
    learn_sub = learn_p.add_subparsers(dest="learn_command", required=True)
    learn_common = argparse.ArgumentParser(add_help=False)
    learn_common.add_argument("--learn-log", required=True, metavar="FILE",
                              help="learning ledger (JSONL) to read")
    learn_common.add_argument("--spec", default=None, metavar="FILE",
                              help="convergence spec JSON (default: the "
                                   "built-in detector bounds)")
    learn_common.add_argument("--format", default="text",
                              choices=("text", "json", "github"),
                              help="github emits workflow error annotations")
    learn_report_p = learn_sub.add_parser(
        "report", parents=[common, learn_common],
        help="training summary + convergence detector verdicts",
    )
    learn_report_p.set_defaults(func=_cmd_learn_report)
    learn_gate_p = learn_sub.add_parser(
        "gate", parents=[common, learn_common],
        help="convergence/divergence gate; non-zero exit on failure",
    )
    learn_gate_p.add_argument("--warn-only", action="store_true",
                              help="report failures but exit 0 "
                                   "(CI bring-up mode)")
    learn_gate_p.set_defaults(func=_cmd_learn_gate)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(getattr(args, "log_level", "warning"))
    try:
        return args.func(args)
    except ReproError as exc:
        log.debug("command failed", exc_info=True)
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
