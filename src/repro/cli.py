"""Command-line interface: ``python -m repro`` / ``repro``.

Subcommands:

* ``list`` — show available chips, scenarios, and governors.
* ``run`` — simulate one governor on one scenario and print the summary.
* ``train`` — train the RL policy on a scenario and save a checkpoint.
* ``compare`` — the headline comparison (RL vs. baselines) on one scenario.
* ``fleet`` — run a scenarios x governors x seeds grid across worker
  processes (see ``docs/fleet.md``).
* ``latency`` — the software-vs-hardware decision-latency table.
* ``profile`` — characterise a scenario or a trace CSV.
* ``report`` — run selected experiments and write a markdown report.

``run --governor checkpoint:<dir>`` evaluates a saved policy checkpoint
instead of a named governor; the same spelling works in ``fleet
--governors``.  ``compare``/``report``/``fleet`` accept ``--jobs N``
(0 = CPU count) to fan simulation jobs out over worker processes.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.sweep import run_baseline, sweep
from repro.analysis.tables import format_table
from repro.core.checkpoint import load_policies, save_policies
from repro.core.trainer import train_policy
from repro.errors import ReproError
from repro.governors import available
from repro.hw.latency import compare_latency
from repro.sim.engine import Simulator
from repro.soc.presets import PRESETS
from repro.workload.scenarios import SCENARIOS, get_scenario


def _cmd_list(args: argparse.Namespace) -> int:
    print("chips:     ", ", ".join(sorted(PRESETS)))
    print("scenarios:")
    for name in sorted(SCENARIOS):
        print(f"  {name:<16s} {SCENARIOS[name].description}")
    print("governors: ", ", ".join(available() + ["rl-policy"]))
    return 0


def _resolve_chip(args: argparse.Namespace):
    """Build the chip from --chip-file when given, else the preset."""
    if getattr(args, "chip_file", None):
        from repro.soc.devicetree import chip_from_json

        return chip_from_json(args.chip_file)
    return PRESETS[args.chip]()


def _cmd_run(args: argparse.Namespace) -> int:
    chip = _resolve_chip(args)
    scenario = get_scenario(args.scenario)
    if args.governor.startswith("checkpoint:"):
        policies = load_policies(args.governor.removeprefix("checkpoint:"), chip=chip)
        trace = scenario.trace(args.duration, seed=args.seed)
        result = Simulator(chip, trace, policies).run()
    else:
        result = run_baseline(
            chip, scenario, args.governor, duration_s=args.duration, seed=args.seed
        )
    print(result.summary())
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    chip = _resolve_chip(args)
    scenario = get_scenario(args.scenario)
    training = train_policy(
        chip,
        scenario,
        episodes=args.episodes,
        episode_duration_s=args.duration,
    )
    for record in training.history:
        print(
            f"episode {record.episode:3d}: "
            f"E/QoS = {record.energy_per_qos_j * 1e3:8.3f} mJ/unit  "
            f"QoS = {record.mean_qos:.3f}"
        )
    path = save_policies(training.policies, args.out)
    print(f"checkpoint saved to {path}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    chip = _resolve_chip(args)
    result = sweep(
        chip,
        [args.scenario],
        args.governors.split(","),
        include_rl=True,
        duration_s=args.duration,
        train_episodes=args.episodes,
        jobs=args.jobs,
    )
    rows = [
        (r.governor, r.energy_j, r.mean_qos, r.energy_per_qos_j * 1e3)
        for r in result.rows
    ]
    print(
        format_table(
            ["governor", "energy [J]", "QoS", "E/QoS [mJ/unit]"],
            rows,
            title=f"scenario: {args.scenario}",
        )
    )
    return 0


def _cmd_latency(args: argparse.Namespace) -> int:
    chip = PRESETS[args.chip]()
    rows = []
    for cluster in chip:
        for opp in cluster.spec.opp_table:
            cmp = compare_latency(opp.freq_hz, label=f"{cluster.spec.name}@{opp.freq_mhz:.0f}MHz")
            rows.append(
                (cmp.label, cmp.software_s * 1e6, cmp.hardware_s * 1e6, cmp.speedup)
            )
    print(
        format_table(
            ["CPU operating point", "SW [us]", "HW [us]", "speedup"],
            rows,
            title="decision latency, software vs hardware policy",
        )
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.workload.characterize import profile
    from repro.workload.trace import Trace

    if args.trace:
        trace = Trace.from_csv(args.trace)
    else:
        trace = get_scenario(args.scenario).trace(args.duration, seed=args.seed)
    print(profile(trace).summary())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import ReportConfig, generate_report

    config = ReportConfig(
        experiments=args.experiments.split(","),
        duration_s=args.duration,
        train_episodes=args.episodes,
        jobs=args.jobs,
    )
    generate_report(config, path=args.out)
    print(f"report written to {args.out}")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet import (
        FleetSpec,
        failure_table,
        fleet_summary,
        format_event,
        result_table,
        run_fleet,
    )

    if args.spec:
        with open(args.spec) as fh:
            try:
                mapping = json.load(fh)
            except json.JSONDecodeError as exc:
                raise ReproError(f"invalid JSON in {args.spec}: {exc}") from exc
        spec = FleetSpec.from_mapping(mapping)
    else:
        try:
            seeds = tuple(int(s) for s in args.seeds.split(","))
        except ValueError as exc:
            raise ReproError(
                f"--seeds must be comma-separated integers: {args.seeds!r}"
            ) from exc
        spec = FleetSpec(
            scenarios=tuple(args.scenarios.split(",")),
            governors=tuple(args.governors.split(",")),
            seeds=seeds,
            chips=tuple(args.chip.split(",")),
            include_rl=args.include_rl,
            duration_s=args.duration,
            train_episodes=args.episodes,
            timeout_s=args.timeout,
            retries=args.retries,
        )

    def progress(event) -> None:
        if args.quiet:
            return
        line = format_event(event)
        if line:
            print(line, file=sys.stderr)

    result = run_fleet(spec, jobs=args.jobs, on_event=progress)
    print(result_table(result.successes))
    failures = failure_table(result.failures)
    if failures:
        print()
        print(failures)
    print()
    print(fleet_summary(result))
    if args.out:
        rows = [
            {
                **s.spec.to_mapping(),
                "energy_j": s.energy_j,
                "mean_qos": s.mean_qos,
                "deadline_miss_rate": s.deadline_miss_rate,
                "energy_per_qos_j": s.energy_per_qos_j,
                "wall_s": s.wall_s,
                "attempts": s.attempts,
            }
            for s in result.successes
        ]
        failed = [
            {
                **f.spec.to_mapping(),
                "error_type": f.error_type,
                "error": f.error,
                "attempts": f.attempts,
                "timed_out": f.timed_out,
            }
            for f in result.failures
        ]
        with open(args.out, "w") as fh:
            json.dump(
                {
                    "rows": rows,
                    "failures": failed,
                    "workers": result.workers,
                    "wall_s": result.wall_s,
                },
                fh,
                indent=2,
            )
        print(f"results written to {args.out}")
    return 0 if result.successes else 1


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RL power management for mobile MPSoCs (DAC 2020 LBR reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list chips, scenarios, governors").set_defaults(
        func=_cmd_list
    )

    run_p = sub.add_parser("run", help="run one governor on one scenario")
    run_p.add_argument("--chip", default="exynos5422", choices=sorted(PRESETS))
    run_p.add_argument("--chip-file", default=None,
                       help="chip JSON (device-tree schema), overrides --chip")
    run_p.add_argument("--scenario", default="gaming", choices=sorted(SCENARIOS))
    run_p.add_argument("--governor", default="ondemand")
    run_p.add_argument("--duration", type=float, default=30.0)
    run_p.add_argument("--seed", type=int, default=100)
    run_p.set_defaults(func=_cmd_run)

    train_p = sub.add_parser("train", help="train the RL policy, save a checkpoint")
    train_p.add_argument("--chip", default="exynos5422", choices=sorted(PRESETS))
    train_p.add_argument("--chip-file", default=None,
                         help="chip JSON (device-tree schema), overrides --chip")
    train_p.add_argument("--scenario", default="gaming", choices=sorted(SCENARIOS))
    train_p.add_argument("--episodes", type=int, default=15)
    train_p.add_argument("--duration", type=float, default=20.0)
    train_p.add_argument("--out", default="rl-checkpoint")
    train_p.set_defaults(func=_cmd_train)

    cmp_p = sub.add_parser("compare", help="RL policy vs baseline governors")
    cmp_p.add_argument("--chip", default="exynos5422", choices=sorted(PRESETS))
    cmp_p.add_argument("--scenario", default="gaming", choices=sorted(SCENARIOS))
    cmp_p.add_argument(
        "--governors", default="performance,powersave,ondemand,conservative"
    )
    cmp_p.add_argument("--duration", type=float, default=20.0)
    cmp_p.add_argument("--episodes", type=int, default=8)
    cmp_p.add_argument("--jobs", type=int, default=1,
                       help="worker processes (0 = CPU count)")
    cmp_p.set_defaults(func=_cmd_compare)

    fleet_p = sub.add_parser(
        "fleet", help="run a scenarios x governors x seeds grid in parallel"
    )
    fleet_p.add_argument("--chip", default="exynos5422",
                         help="comma-separated chip presets")
    fleet_p.add_argument("--scenarios", default="gaming,web_browsing",
                         help="comma-separated scenario names")
    fleet_p.add_argument(
        "--governors",
        default="performance,powersave,userspace,ondemand,conservative,interactive",
        help="comma-separated governors (also rl-policy / checkpoint:<dir>)",
    )
    fleet_p.add_argument("--seeds", default="100,200",
                         help="comma-separated evaluation seeds")
    fleet_p.add_argument("--include-rl", action="store_true",
                         help="train + evaluate the RL policy per scenario")
    fleet_p.add_argument("--duration", type=float, default=20.0)
    fleet_p.add_argument("--episodes", type=int, default=12,
                         help="RL training episodes (rl-policy jobs)")
    fleet_p.add_argument("--jobs", type=int, default=0,
                         help="worker processes (0 = CPU count)")
    fleet_p.add_argument("--timeout", type=float, default=None,
                         help="per-job wall-clock timeout [s]")
    fleet_p.add_argument("--retries", type=int, default=0,
                         help="extra attempts per failed job")
    fleet_p.add_argument("--spec", default=None,
                         help="fleet spec JSON file (overrides grid flags)")
    fleet_p.add_argument("--out", default=None,
                         help="write results as JSON to this path")
    fleet_p.add_argument("--quiet", action="store_true",
                         help="suppress per-job progress lines")
    fleet_p.set_defaults(func=_cmd_fleet)

    lat_p = sub.add_parser("latency", help="SW vs HW decision latency table")
    lat_p.add_argument("--chip", default="exynos5422", choices=sorted(PRESETS))
    lat_p.set_defaults(func=_cmd_latency)

    prof_p = sub.add_parser("profile", help="characterise a scenario or trace CSV")
    prof_p.add_argument("--scenario", default="gaming", choices=sorted(SCENARIOS))
    prof_p.add_argument("--trace", default=None, help="trace CSV path (overrides --scenario)")
    prof_p.add_argument("--duration", type=float, default=30.0)
    prof_p.add_argument("--seed", type=int, default=0)
    prof_p.set_defaults(func=_cmd_profile)

    rep_p = sub.add_parser("report", help="run experiments, write a markdown report")
    rep_p.add_argument("--experiments", default="e1,e3,e4,e7",
                       help="comma-separated ids (e1..e7,a1..a6,x2)")
    rep_p.add_argument("--duration", type=float, default=20.0)
    rep_p.add_argument("--episodes", type=int, default=20)
    rep_p.add_argument("--jobs", type=int, default=1,
                       help="worker processes for sweep-based experiments")
    rep_p.add_argument("--out", default="REPORT.md")
    rep_p.set_defaults(func=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
