"""Batched multi-rollout simulation backend.

:class:`BatchEngine` runs many (scenario, seed, governor) rollouts in
one process, vectorising the chip/power/QoS models for table-free
governors while remaining **bit-identical** to the reference
:class:`repro.sim.engine.Simulator` — see :mod:`repro.batch.engine` for
how, and :mod:`repro.batch.plans` for which rollouts qualify.

``rl-policy`` jobs have their own lock-step fast path
(:mod:`repro.batch.rl`): groups of structurally-matching RL training
jobs advance through every interval together, batching the featurise →
TD-update → select hot loop across rollouts under the same bit-identity
contract.
"""

from repro.batch.engine import BatchEngine, run_batch, run_fixed_opp
from repro.batch.plans import (
    TABLE_FREE_GOVERNORS,
    fixed_opp_index,
    is_rl_vectorisable,
    is_vectorisable,
    rl_group_key,
)
from repro.batch.rl import (
    RLTrainJob,
    evaluate_policies_batch,
    train_policy_batch,
)

__all__ = [
    "BatchEngine",
    "RLTrainJob",
    "TABLE_FREE_GOVERNORS",
    "evaluate_policies_batch",
    "fixed_opp_index",
    "is_rl_vectorisable",
    "is_vectorisable",
    "rl_group_key",
    "run_batch",
    "run_fixed_opp",
    "train_policy_batch",
]
