"""Batched multi-rollout simulation backend.

:class:`BatchEngine` runs many (scenario, seed, governor) rollouts in
one process, vectorising the chip/power/QoS models for table-free
governors while remaining **bit-identical** to the reference
:class:`repro.sim.engine.Simulator` — see :mod:`repro.batch.engine` for
how, and :mod:`repro.batch.plans` for which rollouts qualify.
"""

from repro.batch.engine import BatchEngine, run_batch, run_fixed_opp
from repro.batch.plans import (
    TABLE_FREE_GOVERNORS,
    fixed_opp_index,
    is_vectorisable,
)

__all__ = [
    "BatchEngine",
    "TABLE_FREE_GOVERNORS",
    "fixed_opp_index",
    "is_vectorisable",
    "run_batch",
    "run_fixed_opp",
]
