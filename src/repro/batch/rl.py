"""Lock-step multi-rollout RL training — the batch backend's RL fast path.

:func:`train_policy_batch` runs N independent Q-learning training jobs
*lock-step*: every job advances through the same interval together, and
everything per-interval that the serial
:func:`repro.core.trainer.train_policy` recomputes per rollout — state
featurisation, the TD update, epsilon-greedy selection, power and energy
integration — is evaluated once across all N lanes with NumPy.  Only the
genuinely sequential per-lane machinery (work arrival, scheduling, EDF
draining) stays in Python, exactly as in :mod:`repro.batch.engine`'s
table-free fast path.

The contract is **bit identity** with the serial trainer (engine
contract :data:`repro.sim.engine.ENGINE_VERSION`): trained Q-tables,
epsilon trajectories, cumulative rewards, TD statistics, episode history
records, and evaluation results all compare equal with ``==`` on every
float.  Three mechanisms carry that guarantee:

* **Population Q-table.**  Each cluster's N per-lane Q-tables become row
  blocks of one ``(N * n_states, n_actions)`` table; each lane's agent
  keeps a NumPy *view* of its block, so checkpointing, coverage, and
  greedy snapshots read through unchanged.  Because blocks are disjoint,
  :meth:`repro.rl.qtable.QTable.td_update_many` always takes its
  single-segment fast path, and the batched update is the serial
  per-lane update order verbatim.

* **RNG-order contract.**  Each lane keeps its own exploration
  generator.  :meth:`repro.rl.exploration.EpsilonGreedy.plan_draws`
  pre-consumes one episode's draws in exactly the order
  :meth:`~repro.rl.exploration.EpsilonGreedy.select` would — a greedy
  step costs one uniform draw, an explore step that draw plus one
  ``integers`` draw — so the generator and the schedule counter end the
  episode in the precise state serial training leaves them.

* **Serial accumulation order.**  Core and cluster power sums, energy
  integration, and Welford TD statistics are computed as sequences of
  elementwise operations in the serial engine's left-associated order
  (never ``np.sum``, whose pairwise rounding differs).

Episode boundaries run the *real* per-lane ``chip.reset()`` and
``policy.reset(cluster)`` calls, so episode counters, TD-window resets,
and reward normalisation are materialised on the policy objects, and the
trainer's own bookkeeping helpers produce the ledger and history records.

Jobs the lock step cannot express — subclassed policies (SARSA acts
before updating; double-Q flips a coin per update), non-default power
model types, offline lanes during training, or an active observability
session (which must see real engine spans) — fall back to
:func:`repro.core.trainer.train_policy` /
:func:`repro.core.trainer.evaluate_policy`, so the API is always exact.
"""

from __future__ import annotations

import math
from contextlib import ExitStack
from typing import TYPE_CHECKING, Hashable, Sequence

import numpy as np

from repro.core.policy import RLPowerManagementPolicy
from repro.core.state import StateFeaturizer
from repro.core.trainer import (
    EpisodeRecord,
    TrainingResult,
    _emit_episode_obs,
    _episode_record,
    _greedy_snapshot,
    _policy_churn,
    _record_episode,
    evaluate_policy,
    make_policies,
    train_policy,
)
from dataclasses import dataclass, field

from repro.core.config import PolicyConfig
from repro.errors import SimulationError
from repro.obs import OBS
from repro.power.dynamic import DynamicPowerModel
from repro.power.leakage import LeakagePowerModel
from repro.power.model import PowerModel
from repro.qos.metrics import evaluate_jobs
from repro.rl.qlearning import QLearningAgent
from repro.rl.qtable import QTable
from repro.sim.result import SimulationResult
from repro.sim.scheduler import HMPScheduler
from repro.soc.chip import Chip
from repro.workload.scenarios import Scenario
from repro.workload.task import Job
from repro.workload.trace import Trace

if TYPE_CHECKING:
    from repro.obs.learn import LearnRecorder

_GRACE_FACTOR = 2.0
"""The reference engine's default lateness grace factor."""


@dataclass
class RLTrainJob:
    """One RL training job, mirroring :func:`train_policy`'s signature.

    ``policies`` is materialised (via :func:`make_policies`) by
    :func:`train_policy_batch` when omitted, so the same instance both
    describes the job and, afterwards, owns the trained policies.
    """

    chip: Chip
    scenario: Scenario
    episodes: int = 12
    episode_duration_s: float = 30.0
    base_seed: int = 0
    config: PolicyConfig | None = None
    interval_s: float = 0.01
    power_model: PowerModel | None = None
    policies: dict[str, RLPowerManagementPolicy] | None = None
    recorder: "LearnRecorder | None" = None
    episode_offset: int = 0


def _plain_power_model(model: PowerModel | None) -> bool:
    """Whether the model is the exact arithmetic the lock step replicates."""
    model = model or PowerModel()
    return (
        type(model) is PowerModel
        and type(model.dynamic) is DynamicPowerModel
        and type(model.leakage) is LeakagePowerModel
    )


def _lockstep_supported(
    chip: Chip,
    policies: dict[str, RLPowerManagementPolicy],
    power_model: PowerModel | None,
    online: bool,
) -> bool:
    """Whether one lane's (chip, policies, model) fits the lock step.

    Exact-type checks are deliberate: subclasses override the decide
    order (SARSA acts before updating) or the TD rule (double-Q draws a
    coin per update), and a subclassed power model may price intervals
    differently.
    """
    if not _plain_power_model(power_model):
        return False
    if set(policies) != set(chip.cluster_names):
        return False
    for cluster in chip:
        p = policies[cluster.spec.name]
        if type(p) is not RLPowerManagementPolicy:
            return False
        if p.online != online:
            return False
        if p.agent is not None and type(p.agent) is not QLearningAgent:
            return False
        if p.featurizer is not None and (
            p.featurizer.n_opps != len(cluster.spec.opp_table)
        ):
            # Re-binding would raise inside reset(); route through the
            # serial path so the canonical PolicyError surfaces.
            return False
    return True


def _structure_key(
    chip: Chip, policies: dict[str, RLPowerManagementPolicy]
) -> Hashable:
    """What must match for lanes to share one lock-step runner.

    Per-lane *values* (seeds, learning rates, schedules, electrical
    parameters) may differ freely; the *shape* — cluster layout, OPP
    table sizes, state geometry, action count — must not, because lanes
    share binner edges, LUT widths, and one population Q-table per
    cluster.
    """
    key: list[Hashable] = []
    for cluster in chip:
        cfg = policies[cluster.spec.name].config
        key.append((
            cluster.spec.name,
            cluster.spec.n_cores,
            len(cluster.spec.opp_table),
            cfg.util_bins, cfg.trend_bins, cfg.opp_bins, cfg.slack_bins,
            cfg.n_actions,
        ))
    return tuple(key)


def _distinct_objects(
    chips: Sequence[Chip],
    policies_by_lane: Sequence[dict[str, RLPowerManagementPolicy]],
) -> bool:
    """Lanes must not share chips or policy objects — the lock step
    mutates each lane's independently."""
    seen: set[int] = set()
    for chip, policies in zip(chips, policies_by_lane):
        for obj in (chip, *policies.values()):
            if id(obj) in seen:
                return False
            seen.add(id(obj))
    return True


def _queue_slack(queue: list[Job], now_s: float) -> float:
    """Normalised queue urgency — the serial engine's expression verbatim."""
    slack = 1.0
    for job in queue:
        nominal = job.unit.slack_s
        if nominal <= 0:
            return 0.0
        slack = min(slack, max(0.0, (job.unit.deadline_s - now_s) / nominal))
    return slack


def _edf_key(job: Job) -> tuple[float, int]:
    return (job.unit.deadline_s, job.unit.uid)


class _Lane:
    """One job's sequential per-episode state (trace, queues, jobs)."""

    __slots__ = ("units", "arrive_until", "cutoff", "queues", "all_jobs",
                 "unit_idx")

    def __init__(self, trace: Trace, edges: np.ndarray,
                 cluster_names: list[str]) -> None:
        self.units = trace.units
        releases = np.array([u.release_s for u in self.units])
        # The serial engine admits units with ``release_s < t1`` per
        # step; searchsorted(side="left") against the same t1 floats is
        # exactly that strict-inequality cutoff.
        self.arrive_until = np.searchsorted(releases, edges, side="left")
        self.cutoff = {
            u.uid: u.deadline_s + _GRACE_FACTOR * u.slack_s
            for u in self.units
        }
        self.queues: dict[str, list[Job]] = {n: [] for n in cluster_names}
        self.all_jobs: list[Job] = []
        self.unit_idx = 0


class _ClusterVec:
    """Vectorised state of one cluster across all N lanes.

    Static per-lane parameters (OPP LUTs, electrical constants, bin
    edges, action deltas) are packed once at construction; per-episode
    state is rebuilt by :meth:`begin_episode` from the freshly reset
    policy objects and written back by :meth:`end_episode`.
    """

    def __init__(
        self,
        name: str,
        chips: Sequence[Chip],
        policies_by_lane: Sequence[dict[str, RLPowerManagementPolicy]],
    ) -> None:
        n = len(chips)
        self.name = name
        self.clusters = [chip.cluster(name) for chip in chips]
        specs = [c.spec for c in self.clusters]
        self.n_cores = specs[0].n_cores
        self.n_opps = len(specs[0].opp_table)
        self.max_index = specs[0].opp_table.max_index
        policies = [lane[name] for lane in policies_by_lane]
        cfg0 = policies[0].config
        if any(
            s.n_cores != self.n_cores or len(s.opp_table) != self.n_opps
            for s in specs
        ) or any(
            (p.config.util_bins, p.config.trend_bins, p.config.opp_bins,
             p.config.slack_bins, p.config.n_actions)
            != (cfg0.util_bins, cfg0.trend_bins, cfg0.opp_bins,
                cfg0.slack_bins, cfg0.n_actions)
            for p in policies
        ):
            raise SimulationError(
                f"lock-step lanes disagree on cluster {name!r} structure"
            )

        self.freq_lut = np.array(
            [[opp.freq_hz for opp in s.opp_table] for s in specs]
        )
        self.volt_lut = np.array(
            [[opp.voltage_v for opp in s.opp_table] for s in specs]
        )
        self.max_freq = np.array([s.opp_table.max_freq_hz for s in specs])
        self.capacity = np.array([s.core.capacity for s in specs])
        self.ceff = np.array([s.core.ceff_f for s in specs])
        self.leak_a = np.array([s.core.leak_a_per_v for s in specs])

        self.util_bins = cfg0.util_bins
        self.trend_bins = cfg0.trend_bins
        self.opp_bins = cfg0.opp_bins
        self.slack_bins = cfg0.slack_bins
        # Interior bin edges are shared: equal bin counts over the fixed
        # feature ranges give identical uniform edges on every lane, and
        # np.searchsorted(side="right") is bisect_right element for
        # element.  A disabled feature (1 bin) has no binner: digit 0.
        feats = [p.featurizer for p in policies]
        self.util_edges = (
            None if feats[0]._util_binner is None
            else np.array(feats[0]._util_binner.edges)
        )
        self.trend_edges = (
            None if feats[0]._trend_binner is None
            else np.array(feats[0]._trend_binner.edges)
        )
        self.slack_edges = (
            None if feats[0]._slack_binner is None
            else np.array(feats[0]._slack_binner.edges)
        )
        self.pred_alpha = np.array(
            [p.config.predictor_alpha for p in policies]
        )
        self.phase_thr = np.array(
            [p.config.phase_change_threshold for p in policies]
        )
        self.deltas = np.array(
            [p.config.action_deltas for p in policies], dtype=np.intp
        )

        self.agents: list[QLearningAgent] = [p.agent for p in policies]
        self.explorers = [a.explorer for a in self.agents]
        self.n_states = self.agents[0].n_states
        if any(a.n_states != self.n_states for a in self.agents):
            raise SimulationError(
                f"lock-step lanes disagree on cluster {name!r} state count"
            )
        self.alpha = np.array([a.alpha for a in self.agents])
        self.gamma = np.array([a.gamma for a in self.agents])
        self.offsets = np.arange(n, dtype=np.intp) * self.n_states
        self.lane_idx = np.arange(n, dtype=np.intp)
        # Population table: lane k owns rows [k*S, (k+1)*S); each agent
        # keeps a view of its block, so snapshots, checkpoints, and
        # coverage introspection read through while updates run batched.
        self.pop = QTable(n * self.n_states, self.agents[0].n_actions)
        for k, agent in enumerate(self.agents):
            block = slice(k * self.n_states, (k + 1) * self.n_states)
            self.pop.values[block] = agent.table.values
            agent.table.values = self.pop.values[block]

    def detach(self) -> None:
        """Give every agent back a standalone values array."""
        for agent in self.agents:
            agent.table.values = agent.table.values.copy()

    def begin_episode(
        self,
        policies: Sequence[RLPowerManagementPolicy],
        online: bool,
        n_steps: int,
    ) -> None:
        """Load per-episode vectors from the freshly reset policies."""
        n = len(policies)
        self.energy_scale = np.array(
            [p.reward_config.energy_scale_j for p in policies]
        )
        self.lambda_qos = np.array(
            [p.reward_config.lambda_qos for p in policies]
        )
        self.slack_thr = np.array(
            [p.reward_config.slack_threshold for p in policies]
        )
        self.miss_penalty = np.array(
            [p.reward_config.miss_penalty for p in policies]
        )
        # Predictor state (featurizer.reset() just cleared the serial
        # one; ``level`` is only meaningful from step 0's observe on).
        self.level = np.zeros(n)
        self.prev_level = np.zeros(n)
        self.phase_changes = np.zeros(n, dtype=np.int64)
        # DVFS state: chip.reset() returned every cluster to OPP 0.
        self.cur_opp = np.zeros(n, dtype=np.intp)
        self.freq_now = self.freq_lut[:, 0].copy()
        self.volt_now = self.volt_lut[:, 0].copy()
        # Learning state.
        self.cum = np.array([p.cumulative_reward for p in policies])
        self.prev_flat = np.zeros(n, dtype=np.intp)
        self.prev_action = np.zeros(n, dtype=np.intp)
        self.abs_sum = np.zeros(n)
        self.total = np.zeros(n)
        self.max_abs = np.zeros(n)
        self.last = np.zeros(n)
        self.wmean = np.zeros(n)
        self.m2 = np.zeros(n)
        # Previous-interval observation fields (the initial observation:
        # idle cores, relaxed queue, no energy, no misses).
        self.util_max = np.zeros(n)
        self.energy_prev = np.zeros(n)
        self.slack_prev = np.ones(n)
        self.misses_prev = np.zeros(n, dtype=np.int64)
        # Core accounting for the episode-end write-back.
        self.busy = np.zeros((n, self.n_cores))
        self.peak = np.zeros((n, self.n_cores))
        self.util_arr = np.zeros((n, self.n_cores))
        self.idle_arr = np.ones((n, self.n_cores), dtype=bool)
        self.cursor_buf = np.zeros((n, self.n_cores))
        if online:
            # Pre-consume each lane's episode of draws in select() order.
            explore = np.empty((n_steps, n), dtype=bool)
            rand = np.empty((n_steps, n), dtype=np.intp)
            for k, explorer in enumerate(self.explorers):
                exp_k, rand_k, _ = explorer.plan_draws(n_steps)
                explore[:, k] = exp_k
                rand[:, k] = rand_k
            self.explore = explore
            self.rand = rand

    # -- per-interval phases --------------------------------------------

    def decide(self, step: int, online: bool, switches: np.ndarray) -> None:
        """Featurise, update the previous decision, select an action.

        Reproduces :meth:`RLPowerManagementPolicy.decide` per lane from
        the previous interval's observation fields: the TD update lands
        *before* the greedy argmax (an update to the very row being
        argmaxed is visible, exactly as serially), and exploration
        consumes the pre-planned draws.
        """
        # StateFeaturizer.digits: predictor.observe(absolute_load) first.
        load = self.util_max * (self.freq_now / self.max_freq)
        if step == 0:
            self.level = load
        else:
            err = load - self.level
            snap = np.abs(err) > self.phase_thr
            self.prev_level = self.level
            self.phase_changes += snap
            self.level = np.where(
                snap, load, self.level + self.pred_alpha * err
            )
        trend = (
            self.level - self.prev_level
            if step >= 1
            else np.zeros(load.shape)
        )
        if self.util_edges is None:
            util_bin = np.zeros(load.shape, dtype=np.intp)
        else:
            util_bin = np.minimum(
                np.searchsorted(self.util_edges, self.level, side="right"),
                self.util_bins - 1,
            )
        if self.trend_edges is None:
            trend_bin = np.zeros(load.shape, dtype=np.intp)
        else:
            trend_bin = np.minimum(
                np.searchsorted(self.trend_edges, trend, side="right"),
                self.trend_bins - 1,
            )
        opp_bin = np.minimum(
            self.cur_opp * self.opp_bins // max(1, self.n_opps),
            self.opp_bins - 1,
        )
        if self.slack_edges is None:
            slack_bin = np.zeros(load.shape, dtype=np.intp)
        else:
            slack_bin = np.minimum(
                np.searchsorted(
                    self.slack_edges, self.slack_prev, side="right"
                ),
                self.slack_bins - 1,
            )
        state = (
            (util_bin * self.trend_bins + trend_bin) * self.opp_bins + opp_bin
        ) * self.slack_bins + slack_bin
        flat = self.offsets + state

        if online and step > 0:
            energy_term = self.energy_prev / self.energy_scale
            urgent = self.slack_prev < self.slack_thr
            urgency = np.where(
                urgent,
                (self.slack_thr - self.slack_prev)
                / np.where(urgent, self.slack_thr, 1.0),
                0.0,
            )
            qos_term = self.miss_penalty * self.misses_prev + urgency
            reward = -energy_term - self.lambda_qos * qos_term
            self.cum = self.cum + reward
            # Lane row blocks are disjoint by construction (distinct
            # offsets), so the collision scan can be skipped outright.
            td = self.pop.td_update_many(
                self.prev_flat, self.prev_action, reward, flat,
                self.alpha, self.gamma, assume_distinct=True,
            )
            # TDErrorStats.push, vectorised; the sign test (not abs())
            # keeps a -0.0 error's magnitude bit-identical, and the
            # shared scalar count is exactly ``step`` on every lane.
            mag = np.where(td >= 0.0, td, -td)
            self.abs_sum += mag
            self.total += td
            self.max_abs = np.where(mag > self.max_abs, mag, self.max_abs)
            self.last = td
            delta = td - self.wmean
            self.wmean = self.wmean + delta / step
            self.m2 = self.m2 + delta * (td - self.wmean)

        greedy = np.argmax(self.pop.values[flat], axis=1)
        if online:
            action = np.where(self.explore[step], self.rand[step], greedy)
        else:
            action = greedy
        self.prev_flat = flat
        self.prev_action = action

        new_opp = np.clip(
            self.cur_opp + self.deltas[self.lane_idx, action],
            0, self.max_index,
        )
        switches += new_opp != self.cur_opp
        self.cur_opp = new_opp
        self.freq_now = self.freq_lut[self.lane_idx, new_opp]
        self.volt_now = self.volt_lut[self.lane_idx, new_opp]

    def drain(
        self, lanes: Sequence[_Lane], t0: float, t1: float, dt: float
    ) -> None:
        """EDF-drain every lane's queue; track the obs the policy reads.

        The per-job arithmetic is the serial ``_drain_cluster`` loop
        (via the batch engine's proven optimised form); on top of it the
        RL path also records the observation fields the policy consumes
        next interval — late completions, abandoned jobs, and
        post-filter queue slack.
        """
        self.cursor_buf.fill(0.0)
        n_cores = self.n_cores
        for k, lane in enumerate(lanes):
            queue = lane.queues[self.name]
            if not queue:
                self.misses_prev[k] = 0
                self.slack_prev[k] = 1.0
                continue
            rate = self.capacity[k] * self.freq_now[k]
            cursors = [0.0] * n_cores
            late = 0
            if len(queue) > 1:
                queue.sort(key=_edf_key)
            if rate > 0:
                for job in queue:
                    rem = job.remaining
                    par = job.unit.min_parallelism
                    if par >= n_cores:
                        par = n_cores
                    if par == 1:
                        # min-cursor core, earliest index on ties (the
                        # serial stable sort's first element).
                        i = 0
                        low = cursors[0]
                        for j in range(1, n_cores):
                            if cursors[j] < low:
                                i = j
                                low = cursors[j]
                        a = (dt - low) * rate
                        if a <= 0:
                            continue
                        # w = min(rem, sum([a])); share = w*(a/a) = w.
                        w = rem if rem <= a else a
                        finish = low + w / rate
                        cursors[i] = finish
                        job.remaining = rem - w
                        if job.remaining <= 0:
                            job.completed_at_s = t0 + finish
                            if job.completed_at_s > job.unit.deadline_s:
                                late += 1
                    else:
                        order = sorted(
                            range(n_cores), key=cursors.__getitem__
                        )[:par]
                        avail = [(dt - cursors[i]) * rate for i in order]
                        total_avail = sum(avail)
                        if total_avail <= 0:
                            continue
                        w = rem if rem <= total_avail else total_avail
                        finish = 0.0
                        for i, a in zip(order, avail):
                            share = w * (a / total_avail)
                            cursors[i] += share / rate
                            if share > 0:
                                finish = max(finish, cursors[i])
                        job.remaining = rem - w
                        if job.remaining <= 0:
                            job.completed_at_s = t0 + finish
                            if job.completed_at_s > job.unit.deadline_s:
                                late += 1
            # Done jobs leave; hopelessly late jobs are abandoned and
            # counted (the engine's drain filter + abandon pass, fused).
            keep: list[Job] = []
            extra = 0
            for job in queue:
                if job.remaining > 0:
                    if t1 <= lane.cutoff[job.unit.uid]:
                        keep.append(job)
                    else:
                        extra += 1
            lane.queues[self.name] = keep
            self.misses_prev[k] = late + extra
            self.slack_prev[k] = _queue_slack(keep, t1)
            self.cursor_buf[k] = cursors

    def power(
        self, dt: float, idle_activity: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """One interval's cluster power plus the obs fields it feeds.

        Each elementwise expression mirrors one scalar expression of
        :meth:`repro.power.model.PowerModel.cluster_power` at the
        current per-lane OPP.  Per-core terms are computed as one
        (lane, core) matrix — elementwise, so bit-equal to the scalar
        expressions — while the cross-core accumulation stays a sequence
        of column adds in the serial left-associated ``+=`` order.
        """
        avail = self.freq_now * dt
        used = np.minimum(
            self.cursor_buf * self.freq_now[:, None], avail[:, None]
        )
        util = used / avail[:, None]
        v = self.volt_now
        f = self.freq_now
        leak_base = self.leak_a * v * v
        # ``* 1.0`` (idle scale) is exact whatever the association; the
        # dynamic product keeps the serial left-associated order
        # (((activity * ceff) * v) * v) * f — float mul is not
        # associative, and the contract is bit identity.
        activity = util + (1.0 - util) * idle_activity[:, None] * 1.0
        dyn_terms = (
            activity * self.ceff[:, None] * v[:, None] * v[:, None]
            * f[:, None]
        )
        leak_terms = leak_base[:, None] * (util + (1.0 - util) * 1.0)
        dyn_c = np.zeros(v.shape)
        leak_c = np.zeros(v.shape)
        for c in range(self.n_cores):
            dyn_c = dyn_c + dyn_terms[:, c]
            leak_c = leak_c + leak_terms[:, c]
        self.busy += used
        self.idle_arr = used == 0
        self.peak = np.maximum(self.peak, util)
        self.util_arr = util
        self.util_max = util.max(axis=1)
        # Serially ``p.total_w * dt + 0.0`` with cluster uncore 0 — the
        # ``+ 0.0`` terms are exact no-ops on these non-negative floats.
        self.energy_prev = (dyn_c + leak_c) * dt
        return dyn_c, leak_c

    def end_episode(
        self,
        policies: Sequence[RLPowerManagementPolicy],
        online: bool,
        n_steps: int,
    ) -> None:
        """Materialise per-lane end-of-episode state on the real objects."""
        for k, p in enumerate(policies):
            p.cumulative_reward = float(self.cum[k])
            p._prev_state = int(self.prev_flat[k] - self.offsets[k])
            p._prev_action = int(self.prev_action[k])
            pred = p.featurizer.predictor
            pred._level = float(self.level[k])
            pred._prev_level = (
                float(self.prev_level[k]) if n_steps > 1 else None
            )
            pred.phase_changes = int(self.phase_changes[k])
            if online and n_steps > 1:
                agent = self.agents[k]
                stats = agent.td_stats
                stats.count = n_steps - 1
                stats.abs_sum = float(self.abs_sum[k])
                stats.total = float(self.total[k])
                stats.max_abs = float(self.max_abs[k])
                stats.last = float(self.last[k])
                stats.welford_mean = float(self.wmean[k])
                stats.m2 = float(self.m2[k])
                agent.updates += n_steps - 1
            cluster = self.clusters[k]
            cluster.set_opp_index(int(self.cur_opp[k]))
            for c, core in enumerate(cluster.cores):
                core.utilization = float(self.util_arr[k, c])
                core.busy_cycles = float(self.busy[k, c])
                core.idle = bool(self.idle_arr[k, c])
                core._peak_utilization = float(self.peak[k, c])


class _LockstepRunner:
    """Advances N (chip, policies) lanes through episodes together."""

    def __init__(
        self,
        chips: Sequence[Chip],
        policies_by_lane: Sequence[dict[str, RLPowerManagementPolicy]],
        power_models: Sequence[PowerModel | None],
        interval_s: float,
    ) -> None:
        if interval_s <= 0:
            raise SimulationError(f"interval must be positive: {interval_s}")
        self.n = len(chips)
        names = chips[0].cluster_names
        if any(chip.cluster_names != names for chip in chips):
            raise SimulationError(
                "lock-step lanes disagree on cluster names"
            )
        self.chips = list(chips)
        self.policies_by_lane = list(policies_by_lane)
        self.dt = interval_s
        self.scheduler = HMPScheduler()
        self.cluster_names = names
        # Pre-bind exactly what the first reset() would build, so the
        # population tables exist before the first episode.  The objects
        # are identical to reset()'s (construction consumes no RNG), and
        # reset() then sees a bound policy and skips its create branch.
        for chip, policies in zip(self.chips, self.policies_by_lane):
            for cluster in chip:
                p = policies[cluster.spec.name]
                if p.featurizer is None:
                    p.featurizer = StateFeaturizer(
                        p.config, len(cluster.spec.opp_table)
                    )
                    p.agent = p._make_agent(p.featurizer.n_states)
        self.vecs = [
            _ClusterVec(name, self.chips, self.policies_by_lane)
            for name in names
        ]
        models = [pm or PowerModel() for pm in power_models]
        self.uncore_w = np.array([m.uncore_w for m in models])
        self.idle_activity = np.array(
            [m.dynamic.idle_activity for m in models]
        )

    def detach(self) -> None:
        for vec in self.vecs:
            vec.detach()

    def run_episode(
        self, traces: Sequence[Trace], online: bool
    ) -> list[SimulationResult]:
        """One lock-step episode across all lanes; one result per lane."""
        dt = self.dt
        steps = [max(1, math.ceil(tr.duration_s / dt)) for tr in traces]
        n_steps = steps[0]
        if any(s != n_steps for s in steps):
            raise SimulationError(
                "lock-step lanes disagree on step count: "
                f"{sorted(set(steps))}"
            )

        # Real per-lane resets — episode counters, TD windows, reward
        # normalisation, featurizer clears — the serial run()'s preamble.
        for chip, policies in zip(self.chips, self.policies_by_lane):
            chip.reset()
            for cluster in chip:
                policies[cluster.spec.name].reset(cluster)
        for vec in self.vecs:
            vec.begin_episode(
                [lane[vec.name] for lane in self.policies_by_lane],
                online, n_steps,
            )

        edges = np.array([step * dt + dt for step in range(n_steps)])
        lanes = [_Lane(tr, edges, self.cluster_names) for tr in traces]
        dyn_j = np.zeros(self.n)
        leak_j = np.zeros(self.n)
        uncore_j = np.zeros(self.n)
        switches = np.zeros(self.n, dtype=np.int64)

        for step in range(n_steps):
            t0 = step * dt
            t1 = t0 + dt
            # 1. Decisions per cluster in chip order (decide + update).
            for vec in self.vecs:
                vec.decide(step, online, switches)
            # 3. Release arrivals and place them (sequential per lane;
            # backlog recomputed per unit, as in the engine).
            for k, lane in enumerate(lanes):
                until = int(lane.arrive_until[step])
                while lane.unit_idx < until:
                    unit = lane.units[lane.unit_idx]
                    backlog = {
                        name: sum(j.remaining for j in q)
                        for name, q in lane.queues.items()
                    }
                    target = self.scheduler.assign(
                        unit, self.chips[k], backlog, t0
                    )
                    if target not in lane.queues:
                        raise SimulationError(
                            f"scheduler placed unit {unit.uid} on unknown "
                            f"cluster {target!r}"
                        )
                    job = Job(unit)
                    lane.queues[target].append(job)
                    lane.all_jobs.append(job)
                    lane.unit_idx += 1
            # 4+5. Drain and abandon per cluster.
            for vec in self.vecs:
                vec.drain(lanes, t0, t1, dt)
            # 6. Power and energy, all lanes at once: clusters accumulate
            # in chip order, intervals integrate sequentially.
            chip_dyn = np.zeros(self.n)
            chip_leak = np.zeros(self.n)
            for vec in self.vecs:
                dyn_c, leak_c = vec.power(dt, self.idle_activity)
                chip_dyn = chip_dyn + dyn_c
                chip_leak = chip_leak + leak_c
            dyn_j += chip_dyn * dt
            leak_j += chip_leak * dt
            uncore_j += self.uncore_w * dt
            # 7. The observation fields the next decide() consumes were
            # stored by drain() and power() above.

        for vec in self.vecs:
            vec.end_episode(
                [lane[vec.name] for lane in self.policies_by_lane],
                online, n_steps,
            )

        results: list[SimulationResult] = []
        for k, (lane, policies, trace) in enumerate(
            zip(lanes, self.policies_by_lane, traces)
        ):
            # Units the horizon never released count as dropped work.
            for leftover in lane.units[lane.unit_idx:]:
                lane.all_jobs.append(Job(leftover))
            qos = evaluate_jobs(lane.all_jobs, grace_factor=_GRACE_FACTOR)
            total_j = float(dyn_j[k]) + float(leak_j[k]) + float(uncore_j[k])
            results.append(SimulationResult(
                governor="+".join(
                    sorted({p.name for p in policies.values()})
                ),
                trace_name=trace.name,
                duration_s=n_steps * dt,
                total_energy_j=total_j,
                dynamic_energy_j=float(dyn_j[k]),
                leakage_energy_j=float(leak_j[k]),
                uncore_energy_j=float(uncore_j[k]),
                qos=qos,
                intervals=n_steps,
                opp_switches=int(switches[k]),
            ))
        return results


def train_policy_batch(
    jobs: Sequence[RLTrainJob], force_serial: bool = False
) -> list[TrainingResult]:
    """Train many RL jobs, lock-step vectorised where possible.

    Jobs whose (chip structure, state geometry, interval, episode plan)
    match are trained together through one lock-step pass; everything
    else — unsupported policy or power-model types, singleton groups
    (the lock step only pays off across lanes), jobs sharing chip or
    policy objects, or any run under an active observability session —
    goes through the serial :func:`train_policy`.  Results are
    bit-identical either way and returned in job order.

    Args:
        jobs: The training jobs; each job's ``policies`` is materialised
            in place when omitted.
        force_serial: Run everything serially (the bit-identity oracle).
    """
    jobs = list(jobs)
    for job in jobs:
        job.policies = job.policies or make_policies(job.chip, job.config)

    groups: dict[Hashable, list[int]] = {}
    if not force_serial and not OBS.enabled:
        for i, job in enumerate(jobs):
            if job.episodes < 1:
                continue  # the serial path raises the canonical error
            if not _lockstep_supported(
                job.chip, job.policies, job.power_model, online=True
            ):
                continue
            key = (
                _structure_key(job.chip, job.policies),
                job.interval_s, job.episodes, job.episode_duration_s,
            )
            groups.setdefault(key, []).append(i)

    results: list[TrainingResult | None] = [None] * len(jobs)
    grouped: set[int] = set()
    for indices in groups.values():
        members = [jobs[i] for i in indices]
        if len(indices) >= 2 and _distinct_objects(
            [j.chip for j in members], [j.policies for j in members]
        ):
            for i, res in zip(indices, _train_group(members)):
                results[i] = res
            grouped.update(indices)
    for i, job in enumerate(jobs):
        if i in grouped:
            continue
        results[i] = train_policy(
            job.chip,
            job.scenario,
            episodes=job.episodes,
            episode_duration_s=job.episode_duration_s,
            base_seed=job.base_seed,
            config=job.config,
            interval_s=job.interval_s,
            power_model=job.power_model,
            policies=job.policies,
            recorder=job.recorder,
            episode_offset=job.episode_offset,
        )
    return results


def _train_group(jobs: Sequence[RLTrainJob]) -> list[TrainingResult]:
    """Train one structurally-uniform group lock-step.

    The per-lane bookkeeping — history records, ledger rows, churn
    snapshots — is the serial :func:`train_policy` loop body verbatim,
    including taking the pre-training greedy snapshot *before* the
    runner binds fresh agents (a fresh lane therefore reports 0.0 churn
    after its first episode, exactly as serially).
    """
    prev_greedy = [
        _greedy_snapshot(job.policies) if job.recorder is not None else None
        for job in jobs
    ]
    runner = _LockstepRunner(
        [job.chip for job in jobs],
        [job.policies for job in jobs],
        [job.power_model for job in jobs],
        jobs[0].interval_s,
    )
    histories: list[list[EpisodeRecord]] = [[] for _ in jobs]
    reward_before = [
        sum(p.cumulative_reward for p in job.policies.values())
        for job in jobs
    ]
    try:
        for episode in range(jobs[0].episodes):
            traces = [
                job.scenario.trace(
                    job.episode_duration_s, seed=job.base_seed + episode
                )
                for job in jobs
            ]
            episode_results = runner.run_episode(traces, online=True)
            for k, job in enumerate(jobs):
                record = _episode_record(
                    episode, episode_results[k], job.policies,
                    reward_before[k],
                )
                reward_before[k] += record.reward
                histories[k].append(record)
                _emit_episode_obs(record)
                if job.recorder is not None and prev_greedy[k] is not None:
                    greedy = _greedy_snapshot(job.policies)
                    _record_episode(
                        job.recorder, record, job.policies,
                        job.scenario.name,
                        churn=_policy_churn(prev_greedy[k], greedy),
                        episode_offset=job.episode_offset,
                    )
                    prev_greedy[k] = greedy
    finally:
        runner.detach()
    return [
        TrainingResult(policies=job.policies, history=history)
        for job, history in zip(jobs, histories)
    ]


def evaluate_policies_batch(
    chips: Sequence[Chip],
    policies_by_lane: Sequence[dict[str, RLPowerManagementPolicy]],
    traces: Sequence[Trace],
    interval_s: float = 0.01,
    power_models: Sequence[PowerModel | None] | None = None,
) -> list[SimulationResult]:
    """Evaluate many trained lanes greedily, lock-step where possible.

    The batched counterpart of
    :func:`repro.core.trainer.evaluate_policy`: every lane's policies
    are frozen (online flags restored afterwards) and run greedily over
    its trace.  Structurally-uniform lanes share one lock-step pass;
    anything else falls back to the serial evaluator, bit-identically.

    Raises:
        SimulationError: On mismatched input lengths.
    """
    n = len(chips)
    models = (
        list(power_models) if power_models is not None else [None] * n
    )
    if not (len(policies_by_lane) == len(traces) == len(models) == n):
        raise SimulationError(
            "evaluate_policies_batch needs one policies dict, trace, and "
            f"power model per chip: {len(policies_by_lane)} policies/"
            f"{len(traces)} traces/{len(models)} models for {n} chips"
        )
    from repro.fleet.worker import frozen_policies

    with ExitStack() as stack:
        for policies in policies_by_lane:
            stack.enter_context(frozen_policies(policies))
        fast = (
            n >= 2
            and not OBS.enabled
            and all(
                _lockstep_supported(chip, pol, pm, online=False)
                for chip, pol, pm in zip(chips, policies_by_lane, models)
            )
            and len({
                _structure_key(chip, pol)
                for chip, pol in zip(chips, policies_by_lane)
            }) == 1
            and _distinct_objects(chips, policies_by_lane)
            and len({
                max(1, math.ceil(tr.duration_s / interval_s))
                for tr in traces
            }) == 1
        )
        if fast:
            runner = _LockstepRunner(
                chips, policies_by_lane, models, interval_s
            )
            try:
                return runner.run_episode(list(traces), online=False)
            finally:
                runner.detach()
        return [
            evaluate_policy(
                chip, pol, tr, interval_s=interval_s, power_model=pm
            )
            for chip, pol, tr, pm in zip(
                chips, policies_by_lane, traces, models
            )
        ]
