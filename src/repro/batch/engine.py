"""The vectorised multi-rollout backend.

:class:`BatchEngine` runs many (scenario, seed, governor) rollouts in
one process.  Rollouts whose governor is table-free (see
:mod:`repro.batch.plans`) take the *fast path*: the per-interval loop
keeps only what is genuinely sequential — work arrival, scheduling, and
EDF draining, whose state feeds forward interval to interval — while
everything the serial engine recomputes per interval around that core
is hoisted out:

* governor dispatch and decision clamping collapse to one precomputed
  OPP index per cluster,
* observation construction (18 fields x clusters x intervals) is
  skipped entirely — nothing reads it,
* per-core utilisation, power, and energy integration move *after* the
  loop, NumPy-vectorised over the interval axis from a recorded
  per-interval core-cursor matrix.

The contract is **bit identity** with :class:`repro.sim.engine.Simulator`
(version :data:`repro.sim.engine.ENGINE_VERSION`): every floating-point
operation that contributes to the result is performed in the same order
with the same operands.  That is why the post-loop power vectorisation
accumulates cores and clusters as a *sequence of elementwise adds* (the
serial engine's left-associated ``+=`` order) and why energy integration
sums interval products in a plain Python loop — ``np.sum`` uses pairwise
summation, which is faster but rounds differently.  The drain keeps the
serial engine's exact arithmetic; its single-core branch exploits that
``a / a == 1.0`` exactly, so the serial ``share = w * (a / total)``
degenerates to ``w`` with no float op at all.

``rl-policy`` jobs get their own fast path: training is sequential
*within* a rollout but independent *across* rollouts, so groups of RL
jobs sharing a chip preset, state geometry, and episode plan (see
:func:`repro.batch.plans.rl_group_key`) train lock-step through
:func:`repro.batch.rl.train_policy_batch` — one NumPy op per interval
across all rollouts — and then evaluate greedily through
:func:`repro.batch.rl.evaluate_policies_batch`, under the same
bit-identity contract.  A group needs at least two members: lock-step
overhead only pays for itself across lanes.

Rollouts neither fast path can express — reactive governors, singleton
RL jobs, full-system substrates, metric/trace collection, or any run
under an active observability session (which must see real engine
spans) — fall back to the reference simulator, so ``run_batch`` accepts
arbitrary job lists and is *always* exact.
"""

from __future__ import annotations

import math
from typing import Hashable, Sequence

import numpy as np

from repro.batch.plans import (
    fixed_opp_index,
    is_rl_vectorisable,
    is_vectorisable,
    rl_group_key,
)
from repro.errors import SimulationError
from repro.fleet.spec import JobSpec
from repro.obs import OBS
from repro.power.model import PowerModel
from repro.qos.metrics import evaluate_jobs
from repro.sim.result import SimulationResult
from repro.sim.scheduler import HMPScheduler
from repro.soc.chip import Chip
from repro.workload.scenarios import get_scenario
from repro.workload.task import Job, WorkUnit
from repro.workload.trace import Trace

_GRACE_FACTOR = 2.0
"""The reference engine's default lateness grace factor."""


def _edf_key(job: Job) -> tuple[float, int]:
    return (job.unit.deadline_s, job.unit.uid)


class _ClusterPlan:
    """Per-cluster constants of one fixed-OPP rollout."""

    __slots__ = (
        "name", "n_cores", "freq_hz", "voltage_v", "rate", "ceff_f",
        "leak_a_per_v", "cursor_log",
    )

    def __init__(self, name: str, n_cores: int, freq_hz: float,
                 voltage_v: float, capacity: float, ceff_f: float,
                 leak_a_per_v: float, n_steps: int) -> None:
        self.name = name
        self.n_cores = n_cores
        self.freq_hz = freq_hz
        self.voltage_v = voltage_v
        self.rate = capacity * freq_hz
        self.ceff_f = ceff_f
        self.leak_a_per_v = leak_a_per_v
        # Seconds-of-interval consumed per (interval, core); rows of
        # intervals whose queue was empty stay zero.
        self.cursor_log = np.zeros((n_steps, n_cores))


def run_fixed_opp(
    spec: JobSpec,
    chip: Chip,
    trace: Trace,
    power_model: PowerModel | None = None,
) -> SimulationResult:
    """One table-free rollout, bit-identical to the serial engine.

    Args:
        spec: The job; its governor must be table-free
            (:func:`repro.batch.plans.is_vectorisable`).
        chip: A freshly built chip (never mutated here — only its static
            specs are read).
        trace: The evaluation trace.
        power_model: Defaults to the engine default :class:`PowerModel`.

    Raises:
        SimulationError: If the spec's governor has no fixed-OPP plan.
    """
    model = power_model or PowerModel()
    dt = spec.interval_s
    n_steps = max(1, math.ceil(trace.duration_s / dt))
    scheduler = HMPScheduler()

    plans: list[_ClusterPlan] = []
    opp_switches = 0
    for cluster in chip:
        index = fixed_opp_index(spec.governor, cluster.spec.opp_table)
        if index is None:
            raise SimulationError(
                f"governor {spec.governor!r} has no fixed-OPP plan; "
                "use the serial engine"
            )
        # The serial engine counts one OPP switch when the first
        # interval's decision moves the cluster off its reset index (0).
        if index != 0:
            opp_switches += 1
        opp = cluster.spec.opp_table[index]
        plans.append(
            _ClusterPlan(
                name=cluster.spec.name,
                n_cores=cluster.n_cores,
                freq_hz=opp.freq_hz,
                voltage_v=opp.voltage_v,
                capacity=cluster.spec.core.capacity,
                ceff_f=cluster.spec.core.ceff_f,
                leak_a_per_v=cluster.spec.core.leak_a_per_v,
                n_steps=n_steps,
            )
        )

    units: Sequence[WorkUnit] = trace.units
    # Arrival schedule, precomputed: the serial engine admits units with
    # ``release_s < t1`` each interval; searchsorted(side="left") on the
    # (sorted) release times against the same ``t1 = step*dt + dt``
    # floats yields exactly that strict-inequality cutoff per step.
    releases = np.array([u.release_s for u in units])
    t1_edges = [step * dt + dt for step in range(n_steps)]
    arrive_until = np.searchsorted(releases, np.array(t1_edges), side="left")
    # Abandon cutoffs, one float per unit, same expression as the engine.
    cutoff_by_uid = {
        u.uid: u.deadline_s + _GRACE_FACTOR * u.slack_s for u in units
    }

    queues: dict[str, list[Job]] = {plan.name: [] for plan in plans}
    all_jobs: list[Job] = []
    unit_idx = 0

    for step in range(n_steps):
        t0 = step * dt
        t1 = t0 + dt

        # Arrivals (backlog recomputed per unit, as in the engine).
        k = int(arrive_until[step])
        while unit_idx < k:
            unit = units[unit_idx]
            backlog = {
                name: sum(j.remaining for j in q)
                for name, q in queues.items()
            }
            target = scheduler.assign(unit, chip, backlog, t0)
            if target not in queues:
                raise SimulationError(
                    f"scheduler placed unit {unit.uid} on unknown cluster "
                    f"{target!r}"
                )
            job = Job(unit)
            queues[target].append(job)
            all_jobs.append(job)
            unit_idx += 1

        # Drain each cluster EDF-first; record the core cursors so the
        # post-loop power pass can reconstruct per-core utilisation.
        for plan in plans:
            queue = queues[plan.name]
            if not queue:
                continue
            n_cores = plan.n_cores
            rate = plan.rate
            cursors = [0.0] * n_cores
            if len(queue) > 1:
                queue.sort(key=_edf_key)
            if rate > 0:
                for job in queue:
                    rem = job.remaining
                    par = job.unit.min_parallelism
                    if par >= n_cores:
                        par = n_cores
                    if par == 1:
                        # min-cursor core, earliest index on ties (the
                        # serial stable sort's first element).
                        i = 0
                        low = cursors[0]
                        for j in range(1, n_cores):
                            if cursors[j] < low:
                                i = j
                                low = cursors[j]
                        a = (dt - low) * rate
                        if a <= 0:
                            continue
                        # w = min(rem, sum([a])); share = w*(a/a) = w.
                        w = rem if rem <= a else a
                        finish = low + w / rate
                        cursors[i] = finish
                        job.remaining = rem - w
                        if job.remaining <= 0:
                            job.completed_at_s = t0 + finish
                    else:
                        order = sorted(
                            range(n_cores), key=cursors.__getitem__
                        )[:par]
                        avail = [(dt - cursors[i]) * rate for i in order]
                        total_avail = sum(avail)
                        if total_avail <= 0:
                            continue
                        w = rem if rem <= total_avail else total_avail
                        finish = 0.0
                        for i, a in zip(order, avail):
                            share = w * (a / total_avail)
                            cursors[i] += share / rate
                            if share > 0:
                                finish = max(finish, cursors[i])
                        job.remaining = rem - w
                        if job.remaining <= 0:
                            job.completed_at_s = t0 + finish
            # Done jobs leave; hopelessly late jobs are abandoned
            # (the engine's drain filter + abandon pass, fused).
            queues[plan.name] = [
                j for j in queue
                if j.remaining > 0 and t1 <= cutoff_by_uid[j.unit.uid]
            ]
            plan.cursor_log[step] = cursors

    # Units the horizon never released count as dropped work.
    for leftover in units[unit_idx:]:
        all_jobs.append(Job(leftover))
    qos = evaluate_jobs(all_jobs, grace_factor=_GRACE_FACTOR)

    # Power and energy, vectorised over the interval axis.  Every
    # elementwise expression mirrors one scalar expression of the serial
    # per-interval path, and reductions across cores/clusters are
    # explicit sequential adds so the accumulation order (and therefore
    # the rounding) is the serial engine's.
    idle_activity = model.dynamic.idle_activity
    chip_dyn = np.zeros(n_steps)
    chip_leak = np.zeros(n_steps)
    for plan in plans:
        freq = plan.freq_hz
        v = plan.voltage_v
        available = freq * dt
        leak_base = plan.leak_a_per_v * v * v
        cluster_dyn = np.zeros(n_steps)
        cluster_leak = np.zeros(n_steps)
        for core in range(plan.n_cores):
            if available > 0:
                used = np.minimum(plan.cursor_log[:, core] * freq, available)
                util = used / available
            else:
                util = np.zeros(n_steps)
            activity = util + (1.0 - util) * idle_activity * 1.0
            cluster_dyn = cluster_dyn + activity * plan.ceff_f * v * v * freq
            cluster_leak = cluster_leak + leak_base * (
                util + (1.0 - util) * 1.0
            )
        chip_dyn = chip_dyn + cluster_dyn
        chip_leak = chip_leak + cluster_leak

    # Energy integration: the meter adds one interval product at a time,
    # so accumulate sequentially (np.sum's pairwise order differs).
    dynamic_j = 0.0
    for x in (chip_dyn * dt).tolist():
        dynamic_j += x
    leakage_j = 0.0
    for x in (chip_leak * dt).tolist():
        leakage_j += x
    uncore_j = 0.0
    uncore_step = model.uncore_w * dt
    for _ in range(n_steps):
        uncore_j += uncore_step
    total_j = dynamic_j + leakage_j + uncore_j

    return SimulationResult(
        governor=spec.governor,
        trace_name=trace.name,
        duration_s=n_steps * dt,
        total_energy_j=total_j,
        dynamic_energy_j=dynamic_j,
        leakage_energy_j=leakage_j,
        uncore_energy_j=uncore_j,
        qos=qos,
        intervals=n_steps,
        opp_switches=opp_switches,
    )


class BatchEngine:
    """Runs a list of job specs in one process, fast path where possible.

    Args:
        specs: The rollouts to run.  Any mix of governors is accepted;
            per spec the engine picks the vectorised fast path
            (table-free governors) or the reference simulator.
        force_serial: Run everything through the reference simulator
            (the bit-identity oracle used by tests and benchmarks).
    """

    def __init__(
        self, specs: Sequence[JobSpec], force_serial: bool = False
    ) -> None:
        self.specs = list(specs)
        self.force_serial = force_serial

    def plan(self) -> list[bool]:
        """Per spec, whether a fast path will run it."""
        if self.force_serial:
            return [False] * len(self.specs)
        # An active observability session must see real engine spans
        # and counters, which only the serial engine emits.
        if OBS.enabled:
            return [False] * len(self.specs)
        fast = [is_vectorisable(spec) for spec in self.specs]
        for indices in self._rl_groups().values():
            # Lock-step training only pays for itself across lanes; a
            # singleton RL job runs the (identical) serial trainer.
            if len(indices) >= 2:
                for i in indices:
                    fast[i] = True
        return fast

    def _rl_groups(self) -> dict[Hashable, list[int]]:
        """Spec indices of lock-step-eligible RL jobs, grouped."""
        groups: dict[Hashable, list[int]] = {}
        for i, spec in enumerate(self.specs):
            if is_rl_vectorisable(spec):
                groups.setdefault(rl_group_key(spec), []).append(i)
        return groups

    def run(self) -> list[SimulationResult]:
        """All rollouts, in spec order."""
        plan = self.plan()
        results: list[SimulationResult | None] = [None] * len(self.specs)
        if any(plan):
            for indices in self._rl_groups().values():
                if len(indices) >= 2:
                    grouped = _run_rl_group([self.specs[i] for i in indices])
                    for i, result in zip(indices, grouped):
                        results[i] = result
        for i, (spec, fast) in enumerate(zip(self.specs, plan)):
            if results[i] is not None:
                continue
            if fast:
                from repro.fleet.worker import _build_chip

                chip = _build_chip(spec)
                trace = get_scenario(spec.scenario).trace(
                    spec.duration_s, seed=spec.seed
                )
                results[i] = run_fixed_opp(spec, chip, trace)
            else:
                from repro.fleet.worker import simulate_spec

                results[i] = simulate_spec(spec)
        return results


def _run_rl_group(specs: Sequence[JobSpec]) -> list[SimulationResult]:
    """Train one RL group lock-step, then evaluate each lane greedily.

    Reproduces :func:`repro.fleet.worker.simulate_spec` per spec — fresh
    chip, per-job learning ledger, one power model shared between a
    job's training and its evaluation — with the training and evaluation
    loops batched across the group.
    """
    from repro.batch.rl import (
        RLTrainJob,
        evaluate_policies_batch,
        train_policy_batch,
    )
    from repro.fleet.worker import _build_chip, _job_learn_recorder

    jobs = [
        RLTrainJob(
            chip=_build_chip(spec),
            scenario=get_scenario(spec.scenario),
            episodes=spec.train_episodes,
            episode_duration_s=spec.train_episode_s or spec.duration_s,
            base_seed=spec.train_base_seed,
            config=spec.policy_config,
            interval_s=spec.interval_s,
            power_model=PowerModel(),
            recorder=_job_learn_recorder(spec),
        )
        for spec in specs
    ]
    train_policy_batch(jobs)
    traces = [
        get_scenario(spec.scenario).trace(spec.duration_s, seed=spec.seed)
        for spec in specs
    ]
    return evaluate_policies_batch(
        [job.chip for job in jobs],
        [job.policies for job in jobs],
        traces,
        interval_s=specs[0].interval_s,
        power_models=[job.power_model for job in jobs],
    )


def run_batch(
    specs: Sequence[JobSpec], force_serial: bool = False
) -> list[SimulationResult]:
    """Convenience wrapper: ``BatchEngine(specs).run()``."""
    return BatchEngine(specs, force_serial=force_serial).run()
