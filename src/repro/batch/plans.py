"""Decision plans: which rollouts the batch backend can vectorise.

A governor is *table-free* when its decision sequence is known before
the rollout starts.  The three classic fixed-OPP kernel governors
qualify — ``performance`` pins the top operating point, ``powersave``
the bottom, ``userspace`` a fixed index (the middle of the table under
its default construction) — because their ``decide`` methods ignore the
observation entirely.  For those, the whole
decide → observe → decide feedback loop collapses to a constant, and
the per-interval engine machinery (governor dispatch, observation
construction, per-interval power evaluation) can be replaced by the
vectorised fast path in :mod:`repro.batch.engine`.

Everything else — reactive governors like ``ondemand``, the online
Q-learning policy, checkpoints — is genuinely sequential: interval
``t``'s decision depends on interval ``t-1``'s observation, so those
rollouts run through the reference :class:`repro.sim.engine.Simulator`
unchanged.

RL training jobs are sequential *within* a rollout but embarrassingly
parallel *across* rollouts, which is a different kind of vectorisable:
:func:`is_rl_vectorisable` and :func:`rl_group_key` identify groups of
``rl-policy`` jobs that share one chip preset, state geometry, and
episode plan, so :mod:`repro.batch.rl` can train them lock-step — one
NumPy op per interval across all rollouts — instead of one serial
training loop per job.
"""

from __future__ import annotations

from typing import Callable, Hashable

from repro.core.config import PolicyConfig
from repro.fleet.spec import JobSpec
from repro.soc.opp import OPPTable

#: Fixed-OPP index per table-free governor, given the cluster's OPP
#: table.  Each entry mirrors the governor's ``decide`` exactly:
#: ``performance`` returns ``n_opps - 1`` (== ``max_index``),
#: ``powersave`` returns 0, and a default-constructed ``userspace``
#: resolves to ``max_index // 2`` at reset.
_FIXED_OPP_PLANS: dict[str, Callable[[OPPTable], int]] = {
    "performance": lambda table: table.max_index,
    "powersave": lambda table: 0,
    "userspace": lambda table: table.max_index // 2,
}

TABLE_FREE_GOVERNORS = frozenset(_FIXED_OPP_PLANS)
"""Governor names whose decisions are observation-independent."""


def fixed_opp_index(governor: str, table: OPPTable) -> int | None:
    """The constant OPP index ``governor`` would hold, or ``None``.

    ``None`` means the governor is not table-free (its decisions depend
    on observations) and the rollout must run sequentially.
    """
    plan = _FIXED_OPP_PLANS.get(governor)
    if plan is None:
        return None
    return table.clamp_index(plan(table))


def is_vectorisable(spec: JobSpec) -> bool:
    """Whether the batch fast path can run this job.

    Requires a table-free governor and the plain simulation substrate —
    no full-system extras (thermals/idle/transition costs change the
    per-interval coupling), no per-execution artefacts (metric
    snapshots, trace files), and no non-serialisable escape hatches.
    """
    return (
        spec.governor in TABLE_FREE_GOVERNORS
        and not spec.full_system
        and not spec.collect_metrics
        and spec.trace_dir is None
        and spec.chip_obj is None
        and spec.policy_config is None
    )


def is_rl_vectorisable(spec: JobSpec) -> bool:
    """Whether the lock-step RL trainer can run this job.

    Requires a plain ``rl-policy`` job on a named chip preset with the
    plain simulation substrate.  Unlike :func:`is_vectorisable` this
    *allows* a ``policy_config`` (per-job hyperparameters vectorise
    fine) and a ``learn_log_dir`` (the ledger recorder only reads
    learner state between episodes); ``full_system`` RL learns inside
    the full-system simulator and must stay serial, and per-execution
    artefacts (metric snapshots, trace files) need real engine spans.
    """
    return (
        spec.is_rl
        and not spec.full_system
        and not spec.collect_metrics
        and spec.trace_dir is None
        and spec.chip_obj is None
        and spec.train_episodes >= 1
    )


def rl_group_key(spec: JobSpec) -> Hashable:
    """What must match for RL jobs to share one lock-step pass.

    Lanes in a group share interval edges, episode boundaries, and one
    population Q-table per cluster, so everything that shapes those —
    chip preset, timing, episode plan, and the policy's state/action
    geometry — is part of the key.  Seeds and learning-rate style
    hyperparameters deliberately are not: they vary per lane.
    """
    cfg = spec.policy_config or PolicyConfig()
    return (
        spec.chip,
        spec.interval_s,
        spec.duration_s,
        spec.train_episodes,
        spec.train_episode_s or spec.duration_s,
        cfg.util_bins, cfg.trend_bins, cfg.opp_bins, cfg.slack_bins,
        cfg.n_actions,
    )
