"""Quality-of-service metrics.

QoS follows the definition the authors' group uses: a work unit that
meets its user-visible deadline delivers full quality; lateness degrades
quality smoothly (a slightly late frame is jank, a very late frame is a
drop).  Scenario QoS is the mean per-unit QoS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import ConfigurationError
from repro.workload.task import Job


def soft_qos(lateness_s: float, grace_s: float) -> float:
    """Per-unit QoS as a function of deadline lateness.

    On-time (lateness <= 0) units score 1.0.  Late units degrade linearly
    to 0.0 over the grace window; beyond it the unit counts as dropped.

    Args:
        lateness_s: Completion time minus deadline (negative = early).
        grace_s: Width of the linear degradation window, > 0.

    Returns:
        QoS in [0, 1].
    """
    if grace_s <= 0:
        raise ConfigurationError(f"grace window must be positive: {grace_s}")
    if lateness_s <= 0:
        return 1.0
    return max(0.0, 1.0 - lateness_s / grace_s)


@dataclass(frozen=True)
class QoSReport:
    """Aggregated QoS over a set of completed (or abandoned) jobs.

    Attributes:
        n_units: Total number of work units considered.
        n_completed: Units that finished (possibly late).
        n_on_time: Units that met their deadline exactly.
        n_dropped: Units that never completed or scored 0 QoS.
        mean_qos: Mean per-unit QoS in [0, 1]; unfinished units score 0.
        deadline_miss_rate: Fraction of units completing after deadline
            (or never).
        mean_lateness_s: Mean positive lateness over late completed units
            (0.0 if none were late).
    """

    n_units: int
    n_completed: int
    n_on_time: int
    n_dropped: int
    mean_qos: float
    deadline_miss_rate: float
    mean_lateness_s: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.mean_qos <= 1.0:
            raise ConfigurationError(f"mean QoS out of range: {self.mean_qos}")


def evaluate_jobs(jobs: Iterable[Job], grace_factor: float = 2.0) -> QoSReport:
    """Score a collection of jobs.

    Args:
        jobs: Jobs after the simulation ended.  Unfinished jobs count as
            dropped with QoS 0.
        grace_factor: Grace window as a multiple of each unit's own slack
            (deadline minus release), so fast-paced units are judged on a
            proportionally tighter scale.

    Returns:
        A :class:`QoSReport`.
    """
    if grace_factor <= 0:
        raise ConfigurationError(f"grace factor must be positive: {grace_factor}")
    n_units = 0
    n_completed = 0
    n_on_time = 0
    n_dropped = 0
    qos_sum = 0.0
    lateness_sum = 0.0
    n_late = 0
    for job in jobs:
        n_units += 1
        if not job.done:
            n_dropped += 1
            continue
        n_completed += 1
        lateness = job.lateness_s()
        grace = grace_factor * job.unit.slack_s
        q = soft_qos(lateness, grace)
        qos_sum += q
        if lateness <= 0:
            n_on_time += 1
        else:
            n_late += 1
            lateness_sum += lateness
            if q == 0.0:
                n_dropped += 1
    if n_units == 0:
        return QoSReport(0, 0, 0, 0, 1.0, 0.0, 0.0)
    return QoSReport(
        n_units=n_units,
        n_completed=n_completed,
        n_on_time=n_on_time,
        n_dropped=n_dropped,
        mean_qos=qos_sum / n_units,
        deadline_miss_rate=1.0 - n_on_time / n_units,
        mean_lateness_s=lateness_sum / n_late if n_late else 0.0,
    )
