"""QoS substrate: per-unit quality scoring and the energy/QoS metric."""

from repro.qos.classes import (
    BACKGROUND,
    BEST_EFFORT,
    INTERACTIVE,
    QoSClass,
    QoSClassMap,
    default_mobile_classes,
    evaluate_jobs_weighted,
)
from repro.qos.energy_per_qos import (
    energy_per_qos,
    energy_per_qos_j,
    improvement_percent,
)
from repro.qos.metrics import QoSReport, evaluate_jobs, soft_qos

__all__ = [
    "BACKGROUND",
    "BEST_EFFORT",
    "INTERACTIVE",
    "QoSClass",
    "QoSClassMap",
    "QoSReport",
    "default_mobile_classes",
    "energy_per_qos",
    "energy_per_qos_j",
    "evaluate_jobs",
    "evaluate_jobs_weighted",
    "improvement_percent",
    "soft_qos",
]
