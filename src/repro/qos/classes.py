"""QoS classes: not all work units matter equally.

Mobile frameworks distinguish user-visible (interactive) work from
best-effort and background work; a dropped animation frame is jank, a
late sync retry is invisible.  A :class:`QoSClassMap` assigns a weight
per unit *kind*, and :func:`evaluate_jobs_weighted` aggregates QoS with
those weights, so policies are judged primarily on what the user sees.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.qos.metrics import QoSReport, soft_qos
from repro.workload.task import Job


@dataclass(frozen=True)
class QoSClass:
    """One service class.

    Attributes:
        name: Class label.
        weight: Relative importance of this class's units in aggregate
            QoS (> 0).
    """

    name: str
    weight: float

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigurationError(
                f"QoS class {self.name!r} needs a positive weight: {self.weight}"
            )


INTERACTIVE = QoSClass("interactive", weight=4.0)
BEST_EFFORT = QoSClass("best-effort", weight=1.0)
BACKGROUND = QoSClass("background", weight=0.25)


@dataclass
class QoSClassMap:
    """Maps work-unit kinds to service classes.

    Attributes:
        kind_to_class: Explicit kind assignments.
        default: Class for unlisted kinds.
    """

    kind_to_class: dict[str, QoSClass] = field(default_factory=dict)
    default: QoSClass = BEST_EFFORT

    def class_of(self, kind: str) -> QoSClass:
        """The service class of a unit kind."""
        return self.kind_to_class.get(kind, self.default)

    def weight_of(self, kind: str) -> float:
        """The aggregate-QoS weight of a unit kind."""
        return self.class_of(kind).weight


def default_mobile_classes() -> QoSClassMap:
    """A sensible classification of the built-in scenarios' kinds:
    frame-producing phases are interactive, loads are best-effort,
    background ticks are background."""
    interactive_kinds = [
        "scroll", "gameplay", "decode", "preview", "app_settle", "menu",
        "audio_decode", "map_render",
    ]
    background_kinds = ["background", "sync_burst", "read", "home_idle", "gps_fix"]
    mapping: dict[str, QoSClass] = {}
    for kind in interactive_kinds:
        mapping[kind] = INTERACTIVE
    for kind in background_kinds:
        mapping[kind] = BACKGROUND
    return QoSClassMap(kind_to_class=mapping, default=BEST_EFFORT)


def evaluate_jobs_weighted(
    jobs: list[Job],
    classes: QoSClassMap,
    grace_factor: float = 2.0,
) -> QoSReport:
    """Class-weighted QoS aggregation.

    Identical per-unit scoring to :func:`repro.qos.metrics.evaluate_jobs`
    but the mean is weighted by each unit's class weight, so interactive
    jank dominates the score.

    Returns:
        A :class:`~repro.qos.metrics.QoSReport` whose ``mean_qos`` is the
        weighted mean; the count fields remain unweighted.
    """
    if grace_factor <= 0:
        raise ConfigurationError(f"grace factor must be positive: {grace_factor}")
    n_units = 0
    n_completed = 0
    n_on_time = 0
    n_dropped = 0
    weighted_sum = 0.0
    weight_total = 0.0
    lateness_sum = 0.0
    n_late = 0
    for job in jobs:
        weight = classes.weight_of(job.unit.kind)
        n_units += 1
        weight_total += weight
        if not job.done:
            n_dropped += 1
            continue
        n_completed += 1
        lateness = job.lateness_s()
        q = soft_qos(lateness, grace_factor * job.unit.slack_s)
        weighted_sum += weight * q
        if lateness <= 0:
            n_on_time += 1
        else:
            n_late += 1
            lateness_sum += lateness
            if q == 0.0:
                n_dropped += 1
    if n_units == 0:
        return QoSReport(0, 0, 0, 0, 1.0, 0.0, 0.0)
    return QoSReport(
        n_units=n_units,
        n_completed=n_completed,
        n_on_time=n_on_time,
        n_dropped=n_dropped,
        mean_qos=weighted_sum / weight_total if weight_total else 0.0,
        deadline_miss_rate=1.0 - n_on_time / n_units,
        mean_lateness_s=lateness_sum / n_late if n_late else 0.0,
    )
