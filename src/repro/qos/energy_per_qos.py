"""The paper's headline metric: energy per unit QoS.

The abstract's comparison — "the average energy per unit quality of
service (QoS) of the proposed policy is lower than that of the previous
six DVFS governors by 31.66%" — divides consumed energy by delivered
QoS.  We normalise per work unit so traces of different lengths compare:

    energy_per_qos = total_energy_J / (mean_qos * n_units)

A governor that saves energy by dropping frames gets *worse* (its
denominator shrinks), which is exactly the property that makes the
metric meaningful: it prices energy in units of delivered quality.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.qos.metrics import QoSReport


def energy_per_qos_j(total_energy_j: float, report: QoSReport) -> float:
    """Energy per unit of delivered QoS, in joules.

    Args:
        total_energy_j: Energy consumed over the run.
        report: The run's QoS report.

    Returns:
        Joules per QoS-weighted work unit; ``float('inf')`` when no
        quality was delivered at all.

    Raises:
        ConfigurationError: For negative energy or an empty report.
    """
    if total_energy_j < 0:
        raise ConfigurationError(f"energy must be non-negative: {total_energy_j}")
    if report.n_units == 0:
        raise ConfigurationError("cannot compute energy/QoS with zero work units")
    delivered = report.mean_qos * report.n_units
    if delivered == 0:
        return float("inf")
    return total_energy_j / delivered


#: Pre-rename alias; the ``_j`` suffix carries the unit (RPL102).
energy_per_qos = energy_per_qos_j


def improvement_percent(baseline: float, proposed: float) -> float:
    """Relative reduction of ``proposed`` versus ``baseline``, in percent.

    Positive means the proposed value is lower (better).  This is the
    form of the paper's "31.66% lower" claim.
    """
    if baseline <= 0:
        raise ConfigurationError(f"baseline must be positive: {baseline}")
    return 100.0 * (baseline - proposed) / baseline
