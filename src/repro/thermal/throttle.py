"""Thermal throttling: a frequency cap applied above a trip temperature.

Mirrors the behaviour of a simple step-wise thermal governor: when a
cluster's node exceeds the trip point, its OPP index is capped; the cap
relaxes once the node cools below the trip point minus a hysteresis band.
Throttling composes *after* any governor decision, as in the kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.soc.cluster import Cluster
from repro.thermal.rc import ThermalModel


@dataclass
class ThermalThrottle:
    """Step-wise thermal frequency capping.

    Attributes:
        trip_c: Temperature above which throttling engages.
        hysteresis_c: Cooling margin below ``trip_c`` required to release
            one throttle step.
        step_opps: How many OPP indices each throttle step removes.
    """

    trip_c: float = 85.0
    hysteresis_c: float = 5.0
    step_opps: int = 1
    _levels: dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.hysteresis_c < 0:
            raise ConfigurationError(f"hysteresis must be non-negative: {self.hysteresis_c}")
        if self.step_opps < 1:
            raise ConfigurationError(f"step_opps must be >= 1: {self.step_opps}")

    def throttle_level(self, cluster_name: str) -> int:
        """Current number of throttle steps applied to a cluster."""
        return self._levels.get(cluster_name, 0)

    def apply(self, cluster: Cluster, thermal: ThermalModel) -> int:
        """Update the throttle level and cap the cluster's OPP.

        Call once per interval after the governor has set its OPP.

        Returns:
            The (possibly capped) OPP index now in effect.
        """
        name = cluster.spec.name
        temp = thermal.temperature_c(name)
        level = self._levels.get(name, 0)
        if temp > self.trip_c:
            level += 1
        elif temp < self.trip_c - self.hysteresis_c and level > 0:
            level -= 1
        max_level = cluster.spec.opp_table.max_index // self.step_opps
        level = min(level, max_level)
        self._levels[name] = level

        cap = cluster.spec.opp_table.max_index - level * self.step_opps
        if cluster.opp_index > cap:
            cluster.set_opp_index(cap)
        return cluster.opp_index

    def reset(self) -> None:
        """Clear all throttle state."""
        self._levels.clear()
