"""Lumped-RC thermal model.

One thermal node per cluster plus an ambient node.  Each node integrates

    C * dT/dt = P_in - (T - T_amb) / R - sum_j (T - T_j) / R_couple

with a forward-Euler step per simulation interval, which is stable for
the interval lengths (10 ms) and time constants (seconds) involved.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ThermalNodeSpec:
    """RC parameters for one thermal node.

    Attributes:
        name: Node name; matched to cluster names by the simulator.
        r_c_per_w: Thermal resistance to ambient, degC per watt.
        c_j_per_c: Thermal capacitance, joules per degC.
    """

    name: str
    r_c_per_w: float
    c_j_per_c: float

    def __post_init__(self) -> None:
        if self.r_c_per_w <= 0 or self.c_j_per_c <= 0:
            raise ConfigurationError(
                f"thermal R and C must be positive: R={self.r_c_per_w}, "
                f"C={self.c_j_per_c}"
            )


class ThermalModel:
    """Per-node lumped RC network with optional inter-node coupling.

    Args:
        nodes: Node specs, one per heat source (cluster).
        ambient_c: Ambient temperature in Celsius.
        coupling_r_c_per_w: Thermal resistance between every node pair
            (silicon spreading); ``None`` disables coupling.
    """

    def __init__(
        self,
        nodes: list[ThermalNodeSpec],
        ambient_c: float = 25.0,
        coupling_r_c_per_w: float | None = 8.0,
    ):
        if not nodes:
            raise ConfigurationError("thermal model needs at least one node")
        names = [n.name for n in nodes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate thermal node names: {names}")
        self.nodes = list(nodes)
        self.ambient_c = ambient_c
        self.coupling_r = coupling_r_c_per_w
        self._temps: dict[str, float] = {n.name: ambient_c for n in nodes}

    def temperature_c(self, name: str) -> float:
        """Current temperature of a node.

        Raises:
            ConfigurationError: For unknown node names.
        """
        try:
            return self._temps[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown thermal node {name!r}; have {sorted(self._temps)}"
            ) from None

    @property
    def max_temperature_c(self) -> float:
        """Hottest node temperature."""
        return max(self._temps.values())

    def step(self, power_w: dict[str, float], dt_s: float) -> dict[str, float]:
        """Advance the network by ``dt_s`` seconds.

        Args:
            power_w: Heat injected per node name over the step, watts.
                Missing nodes receive zero power; unknown names raise.
            dt_s: Step length in seconds.

        Returns:
            The new temperatures, keyed by node name.
        """
        if dt_s <= 0:
            raise ConfigurationError(f"time step must be positive: {dt_s}")
        unknown = set(power_w) - set(self._temps)
        if unknown:
            raise ConfigurationError(f"power given for unknown nodes: {sorted(unknown)}")
        new_temps: dict[str, float] = {}
        for spec in self.nodes:
            t = self._temps[spec.name]
            p = power_w.get(spec.name, 0.0)
            flow = p - (t - self.ambient_c) / spec.r_c_per_w
            if self.coupling_r is not None:
                for other in self.nodes:
                    if other.name != spec.name:
                        flow -= (t - self._temps[other.name]) / self.coupling_r
            new_temps[spec.name] = t + dt_s * flow / spec.c_j_per_c
        self._temps = new_temps
        return dict(new_temps)

    def reset(self) -> None:
        """Return all nodes to ambient."""
        self._temps = {n.name: self.ambient_c for n in self.nodes}


def default_thermal_model(cluster_names: list[str], ambient_c: float = 25.0) -> ThermalModel:
    """A reasonable phone-form-factor thermal model for the given clusters.

    Big-ish time constants: R = 12 degC/W and C = 0.4 J/degC give a ~5 s
    time constant, matching the multi-second heat-up behaviour of
    passively cooled handsets.
    """
    nodes = [ThermalNodeSpec(name, r_c_per_w=12.0, c_j_per_c=0.4) for name in cluster_names]
    return ThermalModel(nodes, ambient_c=ambient_c)
