"""Thermal substrate: lumped-RC network and throttling."""

from repro.thermal.rc import ThermalModel, ThermalNodeSpec, default_thermal_model
from repro.thermal.throttle import ThermalThrottle

__all__ = [
    "ThermalModel",
    "ThermalNodeSpec",
    "ThermalThrottle",
    "default_thermal_model",
]
