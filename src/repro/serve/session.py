"""Per-client decision state on top of a shared policy snapshot.

A trained policy is not a pure observation→action function: its state
featurisation runs a workload predictor (an EWMA over past load), so a
decision depends on the *sequence* of observations seen so far.  The
server therefore scopes that sequence state into
:class:`DecisionSession` objects — each session owns fresh featurizers
(one per cluster) while sharing the loaded, read-only Q-tables — so
interleaved clients cannot perturb each other's state encoding, and one
session's decision stream is bit-identical to the offline governor fed
the same observations.
"""

from __future__ import annotations

from repro.core.policy import RLPowerManagementPolicy
from repro.core.state import StateFeaturizer
from repro.errors import ServeError
from repro.obs import OBS
from repro.obs.context import trace_args
from repro.serve.drift import DriftMonitor
from repro.sim.telemetry import ClusterObservation
from repro.soc.chip import Chip


def _clone_for_evaluation(
    source: RLPowerManagementPolicy, chip: Chip, name: str
) -> RLPowerManagementPolicy:
    """An evaluation-mode policy sharing ``source``'s learned tables.

    The clone gets a fresh featurizer (its own predictor state) but the
    *same* agent object — greedy evaluation never writes the table, so
    sharing is safe and keeps session creation cheap.

    Raises:
        ServeError: If the source policy has not been trained.
    """
    if source.featurizer is None or source.agent is None:
        raise ServeError(
            f"policy for cluster {name!r} has no trained table to serve"
        )
    clone = type(source)(source.config, online=False)
    clone.featurizer = StateFeaturizer(source.config, source.featurizer.n_opps)
    clone.agent = source.agent
    clone.reset(chip.cluster(name))
    return clone


class DecisionSession:
    """One client's decision stream over the shared policy snapshot.

    Args:
        policies: The loaded per-cluster policies (the snapshot).
        chip: The chip whose clusters the policies are bound to.
        drift: Optional drift monitor; when given, every decision is
            also scored by a per-session shadow clone of the monitor's
            reference policies (for clusters the reference covers) and
            the live/reference disagreement is recorded.  The decision
            *returned* always comes from the live snapshot — shadow
            scoring is observation-only.

    Requests of one session must be submitted in time order; the
    featurizer's predictor is advanced exactly once per decision, the
    same contract the simulation engine honours.
    """

    def __init__(
        self,
        policies: dict[str, RLPowerManagementPolicy],
        chip: Chip,
        drift: DriftMonitor | None = None,
    ) -> None:
        self._policies = {
            name: _clone_for_evaluation(policy, chip, name)
            for name, policy in policies.items()
        }
        self._drift = drift
        self._shadow: dict[str, RLPowerManagementPolicy] = {}
        if drift is not None:
            # The shadow gets its own featurizers so both policies see
            # the same observation sequence from the same start state.
            self._shadow = {
                name: _clone_for_evaluation(policy, chip, name)
                for name, policy in drift.reference.items()
                if name in self._policies
            }
        self.decisions = 0

    @property
    def clusters(self) -> list[str]:
        """Cluster names this session can decide for."""
        return sorted(self._policies)

    def decide(self, obs: ClusterObservation) -> int:
        """The greedy OPP decision for one observation.

        Raises:
            ServeError: For a cluster the snapshot has no policy for.
        """
        policy = self._policies.get(obs.cluster)
        if policy is None:
            raise ServeError(
                f"no policy for cluster {obs.cluster!r}; "
                f"snapshot serves {self.clusters}"
            )
        self.decisions += 1
        action = policy.decide(obs)
        shadow = self._shadow.get(obs.cluster)
        if self._drift is not None and shadow is not None:
            ref_action = shadow.decide(obs)
            # decide() stashes the state it acted from; compare the two
            # policies' greedy state values at their respective encodings.
            q_live = (
                policy.agent.table.max(policy._prev_state)
                if policy.agent is not None and policy._prev_state is not None
                else 0.0
            )
            q_ref = (
                shadow.agent.table.max(shadow._prev_state)
                if shadow.agent is not None and shadow._prev_state is not None
                else 0.0
            )
            self._drift.record(
                obs.cluster, action, ref_action, abs(q_live - q_ref)
            )
        if OBS.enabled and OBS.tracer.enabled:
            # An instant, not a span: decisions also run inside engine
            # spans on executor threads, and the tracer's LIFO stack
            # must never interleave across threads of control.
            OBS.tracer.instant(
                "serve.session.decide", cat="serve",
                cluster=obs.cluster, opp_index=action,
                **trace_args(),
            )
        return action
