"""The asyncio policy server: worker pool, backpressure, deadlines, drain.

:class:`PolicyServer` boots from a trained policy snapshot
(:mod:`repro.core.checkpoint`) and serves the queued request kinds of
:mod:`repro.serve.protocol` from a bounded queue:

* decision requests are answered on the event loop itself — one greedy
  table lookup is microseconds of pure CPU, and keeping it inline is
  what makes the service latency comparable to the paper's
  software-policy decision path;
* simulation requests are shipped to an executor thread around
  :func:`repro.fleet.worker.execute_job`, the same measurement core
  the fleet uses, so a served job is bit-identical to a batch row —
  and, because the job spec carries the request's
  :class:`~repro.obs.context.TraceContext`, the executor-side flight
  recorder tags the whole simulation with the originating trace_id.

``health`` and ``stats`` requests are answered *out-of-band* at
submission, bypassing the bounded queue entirely — an overloaded (or
draining) service must still be able to report how overloaded it is.

Correlation and ops logging: when an observability session is active or
an :class:`~repro.obs.opslog.OpsLogger` is attached, every submitted
request without a client-supplied ``trace_id`` gets one stamped here,
the id is echoed on the reply, every span/instant on the request's
path carries it, and one structured ops record (outcome, latency,
queue wait) is appended per request.  With neither active, the
correlation fields are pure string copies — the zero-overhead contract
holds.

Lifecycle (the cog-style setup → serve → drain → shutdown):

    server = PolicyServer.from_checkpoint("ckpt", chip="exynos5422")
    await server.start()
    reply = await server.request(DecisionRequest(observation=obs))
    await server.shutdown()            # drains queued work first

Backpressure is explicit: a full queue answers ``overloaded``
immediately instead of buffering, an expired deadline answers
``deadline`` instead of serving late, and submissions after shutdown
answer ``shutdown``.  Per-request latency lands in the
``serve.decision_latency_s`` / ``serve.simulation_latency_s``
histograms and the queue depth in the ``serve.queue_depth`` gauge when
an observability session is active (see ``docs/serving.md``).
"""

from __future__ import annotations

import asyncio
import logging
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.policy import RLPowerManagementPolicy
from repro.errors import ReproError, ServeError, ServeOverloaded
from repro.obs import OBS
from repro.obs.context import TraceContext, bind, new_trace_id
from repro.obs.runtime import SlidingWindow, health_indicators
from repro.serve.config import ServeConfig
from repro.serve.protocol import (
    REJECT_DEADLINE,
    REJECT_ERROR,
    REJECT_OVERLOADED,
    REJECT_SHUTDOWN,
    DecisionReply,
    DecisionRequest,
    HealthReply,
    HealthRequest,
    Rejection,
    Reply,
    Request,
    SimulationReply,
    SimulationRequest,
    StatsReply,
    StatsRequest,
)
from repro.serve.drift import DriftMonitor
from repro.serve.queue import InProcessQueue, QueueBackend
from repro.serve.session import DecisionSession
from repro.soc.chip import Chip
from repro.soc.presets import PRESETS

if TYPE_CHECKING:
    from repro.obs.opslog import OpsLogger

log = logging.getLogger("repro.serve")

#: Buckets matched to decision latencies (sub-µs .. ms) — finer than the
#: default decades so p50/p99 read out meaningfully.
DECISION_LATENCY_BUCKETS = (
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
    1e-3, 2e-3, 5e-3, 1e-2, 1e-1, 1.0,
)


@dataclass
class ServerStats:
    """Lifetime request accounting of one server."""

    served_decisions: int = 0
    served_simulations: int = 0
    served_health: int = 0
    served_stats: int = 0
    rejected_overloaded: int = 0
    rejected_deadline: int = 0
    rejected_shutdown: int = 0
    rejected_error: int = 0

    @property
    def served(self) -> int:
        """Queued requests served (out-of-band probes not included)."""
        return self.served_decisions + self.served_simulations

    def as_mapping(self) -> dict[str, int]:
        """The raw counters, for a :class:`~repro.serve.protocol.StatsReply`."""
        return {
            "served_decisions": self.served_decisions,
            "served_simulations": self.served_simulations,
            "served_health": self.served_health,
            "served_stats": self.served_stats,
            "rejected_overloaded": self.rejected_overloaded,
            "rejected_deadline": self.rejected_deadline,
            "rejected_shutdown": self.rejected_shutdown,
            "rejected_error": self.rejected_error,
        }

    @property
    def rejected(self) -> int:
        return (
            self.rejected_overloaded
            + self.rejected_deadline
            + self.rejected_shutdown
            + self.rejected_error
        )


@dataclass
class _Pending:
    """One queued request with its reply future and timing."""

    request: Request
    future: "asyncio.Future[Reply]"
    submitted_at: float
    deadline_at: float | None


class PolicyServer:
    """A long-running policy-decision service over a pluggable queue.

    Args:
        policies: Trained per-cluster policies (the snapshot to serve).
        chip: The chip the policies control; cluster names must match.
        config: Worker/queue/deadline tunables.
        queue: Queue backend; a fresh bounded
            :class:`~repro.serve.queue.InProcessQueue` when omitted.
        ops_log: Structured ops logger; one record per request outcome
            when attached (also activates trace-id stamping).
        drift: Optional :class:`~repro.serve.drift.DriftMonitor`; every
            decision session shadow-scores its decisions against the
            monitor's reference checkpoint.

    Raises:
        ServeError: When the snapshot lacks a policy for one of the
            chip's clusters.
    """

    def __init__(
        self,
        policies: dict[str, RLPowerManagementPolicy],
        chip: Chip,
        config: ServeConfig | None = None,
        queue: QueueBackend | None = None,
        ops_log: "OpsLogger | None" = None,
        drift: DriftMonitor | None = None,
    ) -> None:
        self.config = config or ServeConfig()
        missing = set(chip.cluster_names) - set(policies)
        if missing:
            raise ServeError(f"snapshot lacks policies for {sorted(missing)}")
        self.chip = chip
        self.policies = policies
        self.stats = ServerStats()
        self._queue: QueueBackend = queue if queue is not None else (
            InProcessQueue(self.config.queue_size)
        )
        self._sessions: dict[str, DecisionSession] = {}
        self._workers: list["asyncio.Task[None]"] = []
        self._pending: set["asyncio.Future[Reply]"] = set()
        self._accepting = False
        self._ops = ops_log
        self.drift = drift
        # Health-indicator window over the live metrics registry; only
        # fed (lazily) while an observability session is active.
        self._window = SlidingWindow()

    # -- lifecycle -----------------------------------------------------

    @classmethod
    def from_checkpoint(
        cls,
        directory: str | Path,
        chip: Chip | str = "exynos5422",
        config: ServeConfig | None = None,
        queue: QueueBackend | None = None,
        ops_log: "OpsLogger | None" = None,
        drift_reference: str | Path | None = None,
    ) -> "PolicyServer":
        """Boot a server from a saved checkpoint directory.

        The checkpoint's engine-version stamp is validated by
        :func:`repro.core.checkpoint.load_policies` — a snapshot trained
        under a different engine contract refuses to serve rather than
        silently answering from a stale policy.

        Args:
            directory: The checkpoint to serve.
            chip: Chip (or preset name) the checkpoint controls.
            config: Worker/queue/deadline tunables.
            queue: Queue backend override.
            ops_log: Structured ops logger to attach.
            drift_reference: Optional second checkpoint directory to
                shadow-score every decision against (see
                :mod:`repro.serve.drift`); drift ops records go to the
                same ``ops_log``.

        Raises:
            ServeError: For an unknown chip preset.
            PolicyError: For a missing/corrupt/stale checkpoint.
        """
        from repro.core.checkpoint import load_policies

        if isinstance(chip, str):
            try:
                chip = PRESETS[chip]()
            except KeyError:
                raise ServeError(
                    f"unknown chip preset {chip!r}; available: "
                    f"{sorted(PRESETS)}"
                ) from None
        policies = load_policies(directory, chip=chip)
        drift = (
            DriftMonitor.from_checkpoint(drift_reference, ops_log=ops_log)
            if drift_reference is not None
            else None
        )
        return cls(policies, chip, config=config, queue=queue,
                   ops_log=ops_log, drift=drift)

    async def start(self) -> None:
        """Spawn the worker pool and begin accepting submissions."""
        if self._workers:
            raise ServeError("server already started")
        self._accepting = True
        self._workers = [
            asyncio.create_task(self._worker_loop(i), name=f"serve-worker-{i}")
            for i in range(self.config.workers)
        ]
        log.info(
            "serve: %d worker(s), queue bound %d, %d cluster(s)",
            self.config.workers, self.config.queue_size,
            len(self.chip.cluster_names),
        )

    async def shutdown(self, drain: bool = True) -> None:
        """Stop the server, by default finishing all queued work first.

        New submissions are rejected with ``shutdown`` from the moment
        this is called.  With ``drain`` the queue is given
        ``config.drain_timeout_s`` to empty; anything still unanswered
        afterwards (or immediately, without ``drain``) is resolved with
        a ``shutdown`` rejection so no client is left hanging.
        """
        self._accepting = False
        if drain and self._workers:
            try:
                await asyncio.wait_for(
                    self._queue.join(), timeout=self.config.drain_timeout_s
                )
            except asyncio.TimeoutError:
                log.warning(
                    "serve: drain timed out after %.1f s with %d queued",
                    self.config.drain_timeout_s, self._queue.depth(),
                )
        for worker in self._workers:
            worker.cancel()
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        # Benign await-spanning write: shutdown() runs once, on the owner
        # task, after every worker has been cancelled and awaited — no
        # concurrent mutator of _workers can exist at this point.
        self._workers = []  # noqa: RPL903
        for future in list(self._pending):
            if not future.done():
                future.set_result(
                    Rejection(
                        request_id="",
                        reason=REJECT_SHUTDOWN,
                        detail="server shut down before the request was served",
                    )
                )
        self._pending.clear()
        log.info(
            "serve: shutdown complete (%d served, %d rejected)",
            self.stats.served, self.stats.rejected,
        )

    # -- submission ----------------------------------------------------

    def session(self, session_id: str = "default") -> DecisionSession:
        """The named decision session, created on first use."""
        session = self._sessions.get(session_id)
        if session is None:
            session = DecisionSession(
                self.policies, self.chip, drift=self.drift
            )
            self._sessions[session_id] = session
        return session

    def _correlate(self, request: Request) -> Request:
        """Stamp a fresh trace_id when correlation is active.

        A client-supplied trace_id is always kept verbatim; with neither
        an observability session nor an ops logger attached, the request
        passes through untouched (zero overhead beyond two checks).
        """
        if request.trace_id or not (OBS.enabled or self._ops is not None):
            return request
        return replace(request, trace_id=new_trace_id())

    def submit(self, request: Request) -> "asyncio.Future[Reply]":
        """Enqueue a request; the returned future resolves to its reply.

        Never raises for service-level conditions: overload, shutdown,
        and deadline outcomes arrive as :class:`Rejection` replies.
        ``health``/``stats`` requests resolve immediately — they never
        touch the bounded queue, so they still answer under overload
        and while draining.
        """
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Reply]" = loop.create_future()
        request = self._correlate(request)
        if isinstance(request, HealthRequest):
            future.set_result(self._serve_health(request, loop))
            return future
        if isinstance(request, StatsRequest):
            future.set_result(self._serve_stats(request))
            return future
        if not self._accepting:
            self._reject(future, request, REJECT_SHUTDOWN,
                         "server is not accepting requests")
            return future
        if (
            isinstance(request, SimulationRequest)
            and request.trace_id
            and request.spec.trace_context is None
        ):
            # Forward the correlation identity into the job spec so the
            # executor thread (where contextvars do not follow) re-binds
            # it; deliberately absent from the spec's cache identity.
            request = replace(
                request,
                spec=replace(
                    request.spec,
                    trace_context=TraceContext(
                        trace_id=request.trace_id,
                        request_id=request.request_id,
                    ),
                ),
            )
        deadline_s = request.deadline_s
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        item = _Pending(
            request=request,
            future=future,
            submitted_at=loop.time(),
            deadline_at=(
                loop.time() + deadline_s if deadline_s is not None else None
            ),
        )
        try:
            self._queue.put_nowait(item)
        except ServeOverloaded as exc:
            self._reject(future, request, REJECT_OVERLOADED, str(exc))
            return future
        self._pending.add(future)
        future.add_done_callback(self._pending.discard)
        if OBS.enabled:
            OBS.metrics.counter("serve.requests").inc()
            OBS.metrics.gauge("serve.queue_depth").set(self._queue.depth())
            if OBS.tracer.enabled:
                OBS.tracer.instant(
                    "serve.request.queued", cat="serve",
                    kind=type(request).__name__,
                    trace_id=request.trace_id,
                    request_id=request.request_id,
                    depth=self._queue.depth(),
                )
        return future

    async def request(self, request: Request) -> Reply:
        """Submit and wait for the reply (the one-call client path)."""
        return await self.submit(request)

    # -- out-of-band (queue-bypassing) handlers ------------------------

    def _serve_health(
        self, request: HealthRequest, loop: asyncio.AbstractEventLoop
    ) -> HealthReply:
        """Answer a health probe from live state + the metrics window."""
        indicators: dict[str, float | None] = {}
        if OBS.enabled:
            # Each probe feeds the window, so poll cadence sets the
            # indicator resolution; the window bounds memory either way.
            self._window.observe(OBS.metrics.snapshot(), at_s=loop.time())
            if len(self._window) >= 2:
                indicators = health_indicators(self._window)
        self.stats.served_health += 1
        self._log_ops(request, "ok", 0.0, 0.0, kind="health")
        return HealthReply(
            request_id=request.request_id,
            status="ok" if self._accepting else "stopped",
            queue_depth=self._queue.depth(),
            workers=len(self._workers),
            served=self.stats.served,
            rejected=self.stats.rejected,
            indicators=indicators,
            trace_id=request.trace_id,
        )

    def _serve_stats(self, request: StatsRequest) -> StatsReply:
        """Answer a stats dump from the lifetime counters."""
        self.stats.served_stats += 1
        self._log_ops(request, "ok", 0.0, 0.0, kind="stats")
        stats = self.stats.as_mapping()
        if self.drift is not None:
            stats.update(self.drift.as_mapping())
        return StatsReply(
            request_id=request.request_id,
            stats=stats,
            trace_id=request.trace_id,
        )

    # -- workers -------------------------------------------------------

    async def _worker_loop(self, index: int) -> None:
        while True:
            item = await self._queue.get()
            try:
                await self._handle(item)
            finally:
                self._queue.task_done()
                if OBS.enabled:
                    OBS.metrics.gauge("serve.queue_depth").set(
                        self._queue.depth()
                    )

    async def _handle(self, item: _Pending) -> None:
        loop = asyncio.get_running_loop()
        request = item.request
        queue_wait_s = loop.time() - item.submitted_at
        if OBS.enabled and OBS.tracer.enabled:
            OBS.tracer.instant(
                "serve.request.dequeued", cat="serve",
                kind=type(request).__name__,
                trace_id=request.trace_id,
                request_id=request.request_id,
                queue_wait_s=queue_wait_s,
            )
        if item.deadline_at is not None and loop.time() > item.deadline_at:
            self._reject(
                item.future, request, REJECT_DEADLINE,
                f"deadline of {request.deadline_s or self.config.default_deadline_s} s "
                "expired while queued",
                queue_wait_s=queue_wait_s,
            )
            return
        ctx = (
            TraceContext(
                trace_id=request.trace_id, request_id=request.request_id
            )
            if request.trace_id
            else None
        )
        try:
            # The contextvar binding follows this task through the
            # decision path; the executor path re-binds explicitly from
            # the spec's trace_context inside the worker.
            with bind(ctx):
                if isinstance(request, DecisionRequest):
                    reply = self._serve_decision(request, item, loop)
                elif isinstance(request, SimulationRequest):
                    reply = await self._serve_simulation(request, item, loop)
                else:  # pragma: no cover - OOB kinds never enqueue
                    raise ServeError(
                        f"unroutable queued request {type(request).__name__}"
                    )
        except asyncio.CancelledError:
            raise
        except ReproError as exc:
            self._reject(item.future, request, REJECT_ERROR, str(exc),
                         queue_wait_s=queue_wait_s)
            return
        self._log_ops(
            request, "ok", reply.latency_s, queue_wait_s,
            kind=(
                "decision"
                if isinstance(request, DecisionRequest)
                else "simulation"
            ),
        )
        if OBS.enabled and OBS.tracer.enabled:
            OBS.tracer.instant(
                "serve.request.replied", cat="serve",
                kind=type(request).__name__,
                trace_id=request.trace_id,
                request_id=request.request_id,
                latency_s=reply.latency_s,
            )
        if not item.future.done():
            item.future.set_result(reply)

    def _serve_decision(
        self, request: DecisionRequest, item: _Pending,
        loop: asyncio.AbstractEventLoop,
    ) -> DecisionReply:
        opp_index = self.session(request.session).decide(request.observation)
        latency_s = loop.time() - item.submitted_at
        self.stats.served_decisions += 1
        if OBS.enabled:
            OBS.metrics.histogram(
                "serve.decision_latency_s", DECISION_LATENCY_BUCKETS
            ).observe(latency_s)
            OBS.metrics.counter("serve.decisions").inc()
        return DecisionReply(
            request_id=request.request_id,
            cluster=request.observation.cluster,
            opp_index=opp_index,
            latency_s=latency_s,
            trace_id=request.trace_id,
        )

    async def _serve_simulation(
        self, request: SimulationRequest, item: _Pending,
        loop: asyncio.AbstractEventLoop,
    ) -> SimulationReply:
        # execute_job, not simulate_spec: the full fleet entry re-binds
        # the spec's trace_context in the executor thread and honours
        # collect_metrics/trace_dir, while producing numbers that are
        # bit-identical to a batch fleet row (it wraps the same core).
        from repro.fleet.worker import execute_job

        measurement = await loop.run_in_executor(
            None, execute_job, request.spec
        )
        latency_s = loop.time() - item.submitted_at
        self.stats.served_simulations += 1
        if OBS.enabled:
            OBS.metrics.histogram("serve.simulation_latency_s").observe(
                latency_s
            )
            OBS.metrics.counter("serve.simulations").inc()
        return SimulationReply(
            request_id=request.request_id,
            job_id=request.spec.job_id,
            energy_j=measurement.energy_j,
            mean_qos=measurement.mean_qos,
            deadline_miss_rate=measurement.deadline_miss_rate,
            energy_per_qos_j=measurement.energy_per_qos_j,
            latency_s=latency_s,
            trace_id=request.trace_id,
        )

    def _reject(
        self, future: "asyncio.Future[Reply]", request: Request,
        reason: str, detail: str, queue_wait_s: float = 0.0,
    ) -> None:
        counter = {
            REJECT_OVERLOADED: "rejected_overloaded",
            REJECT_DEADLINE: "rejected_deadline",
            REJECT_SHUTDOWN: "rejected_shutdown",
            REJECT_ERROR: "rejected_error",
        }[reason]
        setattr(self.stats, counter, getattr(self.stats, counter) + 1)
        if OBS.enabled:
            OBS.metrics.counter(f"serve.{counter}").inc()
        self._log_ops(
            request, f"rejected:{reason}", 0.0, queue_wait_s, detail=detail
        )
        if not future.done():
            future.set_result(
                Rejection(
                    request_id=request.request_id,
                    reason=reason,
                    detail=detail,
                    trace_id=request.trace_id,
                )
            )

    def _log_ops(
        self,
        request: Request,
        outcome: str,
        latency_s: float,
        queue_wait_s: float,
        kind: str | None = None,
        detail: str = "",
    ) -> None:
        """Append one structured ops record, when a logger is attached.

        A no-op without one — the record constructor never runs, so the
        unlogged path pays a single attribute check.  The append itself
        is a buffered line write (sub-millisecond); latency-critical
        deployments can point the log at tmpfs.
        """
        if self._ops is None:
            return
        from repro.obs.opslog import ops_record

        if kind is None:
            kind = (
                "decision"
                if isinstance(request, DecisionRequest)
                else "simulation"
            )
        extra: dict[str, str] = {}
        if detail:
            extra["detail"] = detail
        if isinstance(request, DecisionRequest):
            extra["session"] = request.session
            extra["cluster"] = request.observation.cluster
        elif isinstance(request, SimulationRequest):
            extra["job_id"] = request.spec.job_id
        self._ops.log(
            ops_record(
                kind=kind,
                outcome=outcome,
                latency_s=latency_s,
                queue_wait_s=queue_wait_s,
                trace_id=request.trace_id,
                request_id=request.request_id,
                **extra,
            )
        )
