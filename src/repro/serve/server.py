"""The asyncio policy server: worker pool, backpressure, deadlines, drain.

:class:`PolicyServer` boots from a trained policy snapshot
(:mod:`repro.core.checkpoint`) and serves the two request kinds of
:mod:`repro.serve.protocol` from a bounded queue:

* decision requests are answered on the event loop itself — one greedy
  table lookup is microseconds of pure CPU, and keeping it inline is
  what makes the service latency comparable to the paper's
  software-policy decision path;
* simulation requests are shipped to an executor thread around
  :func:`repro.fleet.worker.simulate_spec`, the same measurement core
  the fleet uses, so a served job is bit-identical to a batch row.

Lifecycle (the cog-style setup → serve → drain → shutdown):

    server = PolicyServer.from_checkpoint("ckpt", chip="exynos5422")
    await server.start()
    reply = await server.request(DecisionRequest(observation=obs))
    await server.shutdown()            # drains queued work first

Backpressure is explicit: a full queue answers ``overloaded``
immediately instead of buffering, an expired deadline answers
``deadline`` instead of serving late, and submissions after shutdown
answer ``shutdown``.  Per-request latency lands in the
``serve.decision_latency_s`` / ``serve.simulation_latency_s``
histograms and the queue depth in the ``serve.queue_depth`` gauge when
an observability session is active (see ``docs/serving.md``).
"""

from __future__ import annotations

import asyncio
import logging
from dataclasses import dataclass
from pathlib import Path

from repro.core.policy import RLPowerManagementPolicy
from repro.errors import ReproError, ServeError, ServeOverloaded
from repro.obs import OBS
from repro.serve.config import ServeConfig
from repro.serve.protocol import (
    REJECT_DEADLINE,
    REJECT_ERROR,
    REJECT_OVERLOADED,
    REJECT_SHUTDOWN,
    DecisionReply,
    DecisionRequest,
    Rejection,
    Reply,
    Request,
    SimulationReply,
    SimulationRequest,
)
from repro.serve.queue import InProcessQueue, QueueBackend
from repro.serve.session import DecisionSession
from repro.soc.chip import Chip
from repro.soc.presets import PRESETS

log = logging.getLogger("repro.serve")

#: Buckets matched to decision latencies (sub-µs .. ms) — finer than the
#: default decades so p50/p99 read out meaningfully.
DECISION_LATENCY_BUCKETS = (
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
    1e-3, 2e-3, 5e-3, 1e-2, 1e-1, 1.0,
)


@dataclass
class ServerStats:
    """Lifetime request accounting of one server."""

    served_decisions: int = 0
    served_simulations: int = 0
    rejected_overloaded: int = 0
    rejected_deadline: int = 0
    rejected_shutdown: int = 0
    rejected_error: int = 0

    @property
    def served(self) -> int:
        return self.served_decisions + self.served_simulations

    @property
    def rejected(self) -> int:
        return (
            self.rejected_overloaded
            + self.rejected_deadline
            + self.rejected_shutdown
            + self.rejected_error
        )


@dataclass
class _Pending:
    """One queued request with its reply future and timing."""

    request: Request
    future: "asyncio.Future[Reply]"
    submitted_at: float
    deadline_at: float | None


class PolicyServer:
    """A long-running policy-decision service over a pluggable queue.

    Args:
        policies: Trained per-cluster policies (the snapshot to serve).
        chip: The chip the policies control; cluster names must match.
        config: Worker/queue/deadline tunables.
        queue: Queue backend; a fresh bounded
            :class:`~repro.serve.queue.InProcessQueue` when omitted.

    Raises:
        ServeError: When the snapshot lacks a policy for one of the
            chip's clusters.
    """

    def __init__(
        self,
        policies: dict[str, RLPowerManagementPolicy],
        chip: Chip,
        config: ServeConfig | None = None,
        queue: QueueBackend | None = None,
    ) -> None:
        self.config = config or ServeConfig()
        missing = set(chip.cluster_names) - set(policies)
        if missing:
            raise ServeError(f"snapshot lacks policies for {sorted(missing)}")
        self.chip = chip
        self.policies = policies
        self.stats = ServerStats()
        self._queue: QueueBackend = queue if queue is not None else (
            InProcessQueue(self.config.queue_size)
        )
        self._sessions: dict[str, DecisionSession] = {}
        self._workers: list["asyncio.Task[None]"] = []
        self._pending: set["asyncio.Future[Reply]"] = set()
        self._accepting = False

    # -- lifecycle -----------------------------------------------------

    @classmethod
    def from_checkpoint(
        cls,
        directory: str | Path,
        chip: Chip | str = "exynos5422",
        config: ServeConfig | None = None,
        queue: QueueBackend | None = None,
    ) -> "PolicyServer":
        """Boot a server from a saved checkpoint directory.

        The checkpoint's engine-version stamp is validated by
        :func:`repro.core.checkpoint.load_policies` — a snapshot trained
        under a different engine contract refuses to serve rather than
        silently answering from a stale policy.

        Raises:
            ServeError: For an unknown chip preset.
            PolicyError: For a missing/corrupt/stale checkpoint.
        """
        from repro.core.checkpoint import load_policies

        if isinstance(chip, str):
            try:
                chip = PRESETS[chip]()
            except KeyError:
                raise ServeError(
                    f"unknown chip preset {chip!r}; available: "
                    f"{sorted(PRESETS)}"
                ) from None
        policies = load_policies(directory, chip=chip)
        return cls(policies, chip, config=config, queue=queue)

    async def start(self) -> None:
        """Spawn the worker pool and begin accepting submissions."""
        if self._workers:
            raise ServeError("server already started")
        self._accepting = True
        self._workers = [
            asyncio.create_task(self._worker_loop(i), name=f"serve-worker-{i}")
            for i in range(self.config.workers)
        ]
        log.info(
            "serve: %d worker(s), queue bound %d, %d cluster(s)",
            self.config.workers, self.config.queue_size,
            len(self.chip.cluster_names),
        )

    async def shutdown(self, drain: bool = True) -> None:
        """Stop the server, by default finishing all queued work first.

        New submissions are rejected with ``shutdown`` from the moment
        this is called.  With ``drain`` the queue is given
        ``config.drain_timeout_s`` to empty; anything still unanswered
        afterwards (or immediately, without ``drain``) is resolved with
        a ``shutdown`` rejection so no client is left hanging.
        """
        self._accepting = False
        if drain and self._workers:
            try:
                await asyncio.wait_for(
                    self._queue.join(), timeout=self.config.drain_timeout_s
                )
            except asyncio.TimeoutError:
                log.warning(
                    "serve: drain timed out after %.1f s with %d queued",
                    self.config.drain_timeout_s, self._queue.depth(),
                )
        for worker in self._workers:
            worker.cancel()
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        for future in list(self._pending):
            if not future.done():
                future.set_result(
                    Rejection(
                        request_id="",
                        reason=REJECT_SHUTDOWN,
                        detail="server shut down before the request was served",
                    )
                )
        self._pending.clear()
        log.info(
            "serve: shutdown complete (%d served, %d rejected)",
            self.stats.served, self.stats.rejected,
        )

    # -- submission ----------------------------------------------------

    def session(self, session_id: str = "default") -> DecisionSession:
        """The named decision session, created on first use."""
        session = self._sessions.get(session_id)
        if session is None:
            session = DecisionSession(self.policies, self.chip)
            self._sessions[session_id] = session
        return session

    def submit(self, request: Request) -> "asyncio.Future[Reply]":
        """Enqueue a request; the returned future resolves to its reply.

        Never raises for service-level conditions: overload, shutdown,
        and deadline outcomes arrive as :class:`Rejection` replies.
        """
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Reply]" = loop.create_future()
        if not self._accepting:
            self._reject(future, request, REJECT_SHUTDOWN,
                         "server is not accepting requests")
            return future
        deadline_s = request.deadline_s
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        item = _Pending(
            request=request,
            future=future,
            submitted_at=loop.time(),
            deadline_at=(
                loop.time() + deadline_s if deadline_s is not None else None
            ),
        )
        try:
            self._queue.put_nowait(item)
        except ServeOverloaded as exc:
            self._reject(future, request, REJECT_OVERLOADED, str(exc))
            return future
        self._pending.add(future)
        future.add_done_callback(self._pending.discard)
        if OBS.enabled:
            OBS.metrics.counter("serve.requests").inc()
            OBS.metrics.gauge("serve.queue_depth").set(self._queue.depth())
        return future

    async def request(self, request: Request) -> Reply:
        """Submit and wait for the reply (the one-call client path)."""
        return await self.submit(request)

    # -- workers -------------------------------------------------------

    async def _worker_loop(self, index: int) -> None:
        while True:
            item = await self._queue.get()
            try:
                await self._handle(item)
            finally:
                self._queue.task_done()
                if OBS.enabled:
                    OBS.metrics.gauge("serve.queue_depth").set(
                        self._queue.depth()
                    )

    async def _handle(self, item: _Pending) -> None:
        loop = asyncio.get_running_loop()
        request = item.request
        if item.deadline_at is not None and loop.time() > item.deadline_at:
            self._reject(
                item.future, request, REJECT_DEADLINE,
                f"deadline of {request.deadline_s or self.config.default_deadline_s} s "
                "expired while queued",
            )
            return
        try:
            if isinstance(request, DecisionRequest):
                reply = self._serve_decision(request, item, loop)
            else:
                reply = await self._serve_simulation(request, item, loop)
        except asyncio.CancelledError:
            raise
        except ReproError as exc:
            self._reject(item.future, request, REJECT_ERROR, str(exc))
            return
        if not item.future.done():
            item.future.set_result(reply)

    def _serve_decision(
        self, request: DecisionRequest, item: _Pending,
        loop: asyncio.AbstractEventLoop,
    ) -> DecisionReply:
        opp_index = self.session(request.session).decide(request.observation)
        latency_s = loop.time() - item.submitted_at
        self.stats.served_decisions += 1
        if OBS.enabled:
            OBS.metrics.histogram(
                "serve.decision_latency_s", DECISION_LATENCY_BUCKETS
            ).observe(latency_s)
            OBS.metrics.counter("serve.decisions").inc()
        return DecisionReply(
            request_id=request.request_id,
            cluster=request.observation.cluster,
            opp_index=opp_index,
            latency_s=latency_s,
        )

    async def _serve_simulation(
        self, request: SimulationRequest, item: _Pending,
        loop: asyncio.AbstractEventLoop,
    ) -> SimulationReply:
        from repro.fleet.worker import simulate_spec

        result = await loop.run_in_executor(None, simulate_spec, request.spec)
        latency_s = loop.time() - item.submitted_at
        self.stats.served_simulations += 1
        if OBS.enabled:
            OBS.metrics.histogram("serve.simulation_latency_s").observe(
                latency_s
            )
            OBS.metrics.counter("serve.simulations").inc()
        return SimulationReply(
            request_id=request.request_id,
            job_id=request.spec.job_id,
            energy_j=result.total_energy_j,
            mean_qos=result.qos.mean_qos,
            deadline_miss_rate=result.qos.deadline_miss_rate,
            energy_per_qos_j=result.energy_per_qos_j,
            latency_s=latency_s,
        )

    def _reject(
        self, future: "asyncio.Future[Reply]", request: Request,
        reason: str, detail: str,
    ) -> None:
        counter = {
            REJECT_OVERLOADED: "rejected_overloaded",
            REJECT_DEADLINE: "rejected_deadline",
            REJECT_SHUTDOWN: "rejected_shutdown",
            REJECT_ERROR: "rejected_error",
        }[reason]
        setattr(self.stats, counter, getattr(self.stats, counter) + 1)
        if OBS.enabled:
            OBS.metrics.counter(f"serve.{counter}").inc()
        if not future.done():
            future.set_result(
                Rejection(
                    request_id=request.request_id,
                    reason=reason,
                    detail=detail,
                )
            )
