"""Request/response types of the policy-decision service.

Two request kinds travel through the queue:

* :class:`DecisionRequest` — one observation → one OPP decision, the
  online analogue of a single governor step.
* :class:`SimulationRequest` — a whole simulation job, delegated to the
  fleet measurement core (:func:`repro.fleet.worker.simulate_spec`).

Every request is answered with exactly one reply: a
:class:`DecisionReply`, a :class:`SimulationReply`, or a
:class:`Rejection` (backpressure, deadline, shutdown, or a handler
error).  Rejections are *responses*, not exceptions — a loaded service
saying "no" is a normal outcome the client must handle.

All types round-trip through plain JSON-serialisable mappings
(:func:`request_from_mapping` / :func:`reply_to_mapping`) so a future
remote queue backend can ship them without new serialisation code.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Mapping, Union

from repro.errors import ServeError
from repro.fleet.spec import JobSpec
from repro.sim.telemetry import ClusterObservation, initial_observation
from repro.soc.chip import Chip

#: Reasons a request can be rejected instead of answered.
REJECT_OVERLOADED = "overloaded"
REJECT_DEADLINE = "deadline"
REJECT_SHUTDOWN = "shutdown"
REJECT_ERROR = "error"

_INT_OBS_FIELDS = {
    "opp_index", "n_opps", "queue_jobs", "deadline_misses", "completions"
}


@dataclass(frozen=True)
class DecisionRequest:
    """One observation → action decision.

    Attributes:
        observation: The cluster observation to decide on; its
            ``cluster`` field routes it to the right per-cluster policy.
        session: Decision-session id.  Each session owns its own
            featurizer/predictor state, so interleaved clients do not
            perturb each other's state encoding; requests of one session
            must arrive in time order for bit-identity with the offline
            governor.
        request_id: Client-chosen correlation id, echoed on the reply.
        deadline_s: Seconds (from submission) after which the request
            should be rejected rather than served late; ``None`` falls
            back to the server's default.
    """

    observation: ClusterObservation
    session: str = "default"
    request_id: str = ""
    deadline_s: float | None = None


@dataclass(frozen=True)
class SimulationRequest:
    """A whole simulation job (the batch workload, served online).

    Attributes:
        spec: The fleet job spec to execute; results are bit-identical
            to ``repro fleet`` running the same spec.
        request_id: Client-chosen correlation id, echoed on the reply.
        deadline_s: Same semantics as on :class:`DecisionRequest`.
    """

    spec: JobSpec
    request_id: str = ""
    deadline_s: float | None = None


Request = Union[DecisionRequest, SimulationRequest]


@dataclass(frozen=True)
class DecisionReply:
    """A served decision.

    Attributes:
        request_id: Echo of the request's correlation id.
        cluster: The cluster decided for.
        opp_index: The chosen OPP index (the governor's output).
        latency_s: Submit-to-reply service latency in seconds.
    """

    request_id: str
    cluster: str
    opp_index: int
    latency_s: float


@dataclass(frozen=True)
class SimulationReply:
    """A served simulation job (one sweep-row worth of metrics)."""

    request_id: str
    job_id: str
    energy_j: float
    mean_qos: float
    deadline_miss_rate: float
    energy_per_qos_j: float
    latency_s: float


@dataclass(frozen=True)
class Rejection:
    """A request the service explicitly declined to serve.

    Attributes:
        request_id: Echo of the request's correlation id.
        reason: One of ``overloaded`` (queue bound hit), ``deadline``
            (expired while queued), ``shutdown`` (submitted after drain
            began), or ``error`` (the handler raised).
        detail: Human-readable explanation.
    """

    request_id: str
    reason: str
    detail: str = ""


Reply = Union[DecisionReply, SimulationReply, Rejection]


def observation_from_mapping(
    data: Mapping[str, Any], chip: Chip | None = None
) -> ClusterObservation:
    """Build an observation from a (possibly partial) mapping.

    A ``cluster`` name is always required.  When ``chip`` is given, the
    OPP-table geometry and current operating point seed the defaults, so
    a client may send only the signal fields it cares about
    (``utilization``, ``qos_slack``, ...); without a chip every field
    must be present.

    Raises:
        ServeError: On unknown keys, a missing cluster, or missing
            fields when no chip provides defaults.
    """
    known = {f.name for f in fields(ClusterObservation)}
    unknown = set(data) - known
    if unknown:
        raise ServeError(
            f"unknown observation fields {sorted(unknown)}; "
            f"known: {sorted(known)}"
        )
    if "cluster" not in data:
        raise ServeError("an observation needs a 'cluster' name")
    name = str(data["cluster"])
    if chip is not None:
        if name not in chip.cluster_names:
            raise ServeError(
                f"unknown cluster {name!r}; chip has {list(chip.cluster_names)}"
            )
        cluster = chip.cluster(name)
        base = asdict(
            initial_observation(
                name,
                cluster.opp_index,
                len(cluster.spec.opp_table),
                cluster.freq_hz,
                cluster.spec.opp_table.max_freq_hz,
                0.01,
            )
        )
    else:
        missing = known - set(data) - {"temp_c"}
        if missing:
            raise ServeError(
                f"observation missing fields {sorted(missing)} "
                "(pass a chip for defaults, or send them all)"
            )
        base = {"temp_c": None}
    merged: dict[str, Any] = {**base, **dict(data)}
    for key, value in merged.items():
        if key == "cluster" or value is None:
            continue
        merged[key] = int(value) if key in _INT_OBS_FIELDS else float(value)
    merged["cluster"] = name
    return ClusterObservation(**merged)


def request_from_mapping(
    data: Mapping[str, Any], chip: Chip | None = None
) -> Request:
    """Parse one request mapping (e.g. a JSONL line).

    The ``kind`` key picks the request type: ``"decision"`` (default)
    or ``"simulate"``.

    Raises:
        ServeError: On an unknown kind or a malformed payload.
    """
    kind = str(data.get("kind", "decision"))
    request_id = str(data.get("request_id", ""))
    deadline = data.get("deadline_s")
    deadline_s = float(deadline) if deadline is not None else None
    if deadline_s is not None and deadline_s <= 0:
        raise ServeError(f"deadline must be positive: {deadline_s}")
    if kind == "decision":
        payload = data.get("observation")
        if not isinstance(payload, Mapping):
            raise ServeError("a decision request needs an 'observation' mapping")
        return DecisionRequest(
            observation=observation_from_mapping(payload, chip),
            session=str(data.get("session", "default")),
            request_id=request_id,
            deadline_s=deadline_s,
        )
    if kind == "simulate":
        payload = data.get("spec")
        if not isinstance(payload, Mapping):
            raise ServeError("a simulate request needs a 'spec' mapping")
        return SimulationRequest(
            spec=JobSpec.from_mapping(payload),
            request_id=request_id,
            deadline_s=deadline_s,
        )
    raise ServeError(
        f"unknown request kind {kind!r}; expected 'decision' or 'simulate'"
    )


def reply_to_mapping(reply: Reply) -> dict[str, Any]:
    """The JSON-serialisable form of a reply, tagged with its kind."""
    if isinstance(reply, DecisionReply):
        return {"kind": "decision", **asdict(reply)}
    if isinstance(reply, SimulationReply):
        return {"kind": "simulation", **asdict(reply)}
    return {"kind": "rejection", **asdict(reply)}
