"""Request/response types of the policy-decision service.

Four request kinds exist; two travel through the queue:

* :class:`DecisionRequest` — one observation → one OPP decision, the
  online analogue of a single governor step.
* :class:`SimulationRequest` — a whole simulation job, delegated to the
  fleet measurement core (:func:`repro.fleet.worker.execute_job`).

and two are answered out-of-band, *bypassing* the bounded worker queue
(an overloaded service must still be able to say how overloaded it is):

* :class:`HealthRequest` — liveness plus sliding-window indicators.
* :class:`StatsRequest` — the raw lifetime counters.

Every request is answered with exactly one reply: a
:class:`DecisionReply`, a :class:`SimulationReply`, a
:class:`HealthReply`, a :class:`StatsReply`, or a :class:`Rejection`
(backpressure, deadline, shutdown, or a handler error).  Rejections are
*responses*, not exceptions — a loaded service saying "no" is a normal
outcome the client must handle.

Correlation: every request and reply carries a ``trace_id`` alongside
the client's ``request_id``.  A client may supply its own trace id (it
is echoed verbatim); when correlation is active server-side and the
field is empty, the server stamps a fresh one at submission, so the
reply, the ops-log record, and every span/instant the request touched
share one id.

All types round-trip through plain JSON-serialisable mappings
(:func:`request_from_mapping` / :func:`reply_to_mapping`) so a future
remote queue backend can ship them without new serialisation code.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Mapping, Union

from repro.errors import ServeError
from repro.fleet.spec import JobSpec
from repro.sim.telemetry import ClusterObservation, initial_observation
from repro.soc.chip import Chip

#: Reasons a request can be rejected instead of answered.
REJECT_OVERLOADED = "overloaded"
REJECT_DEADLINE = "deadline"
REJECT_SHUTDOWN = "shutdown"
REJECT_ERROR = "error"

_INT_OBS_FIELDS = {
    "opp_index", "n_opps", "queue_jobs", "deadline_misses", "completions"
}


@dataclass(frozen=True)
class DecisionRequest:
    """One observation → action decision.

    Attributes:
        observation: The cluster observation to decide on; its
            ``cluster`` field routes it to the right per-cluster policy.
        session: Decision-session id.  Each session owns its own
            featurizer/predictor state, so interleaved clients do not
            perturb each other's state encoding; requests of one session
            must arrive in time order for bit-identity with the offline
            governor.
        request_id: Client-chosen correlation id, echoed on the reply.
        deadline_s: Seconds (from submission) after which the request
            should be rejected rather than served late; ``None`` falls
            back to the server's default.
        trace_id: End-to-end correlation id; empty means "let the
            server stamp one" (when correlation is active).
    """

    observation: ClusterObservation
    session: str = "default"
    request_id: str = ""
    deadline_s: float | None = None
    trace_id: str = ""


@dataclass(frozen=True)
class SimulationRequest:
    """A whole simulation job (the batch workload, served online).

    Attributes:
        spec: The fleet job spec to execute; results are bit-identical
            to ``repro fleet`` running the same spec.
        request_id: Client-chosen correlation id, echoed on the reply.
        deadline_s: Same semantics as on :class:`DecisionRequest`.
        trace_id: Same semantics as on :class:`DecisionRequest`; the
            server forwards it into ``spec.trace_context`` so the
            executor-side flight recorder tags its spans with it.
    """

    spec: JobSpec
    request_id: str = ""
    deadline_s: float | None = None
    trace_id: str = ""


@dataclass(frozen=True)
class HealthRequest:
    """Out-of-band health probe (never enters the worker queue)."""

    request_id: str = ""
    trace_id: str = ""


@dataclass(frozen=True)
class StatsRequest:
    """Out-of-band stats dump (never enters the worker queue)."""

    request_id: str = ""
    trace_id: str = ""


Request = Union[DecisionRequest, SimulationRequest, HealthRequest, StatsRequest]

#: Request kinds answered at submission, bypassing the bounded queue.
OOB_KINDS = (HealthRequest, StatsRequest)


@dataclass(frozen=True)
class DecisionReply:
    """A served decision.

    Attributes:
        request_id: Echo of the request's correlation id.
        cluster: The cluster decided for.
        opp_index: The chosen OPP index (the governor's output).
        latency_s: Submit-to-reply service latency in seconds.
        trace_id: The end-to-end correlation id of this request's path.
    """

    request_id: str
    cluster: str
    opp_index: int
    latency_s: float
    trace_id: str = ""


@dataclass(frozen=True)
class SimulationReply:
    """A served simulation job (one sweep-row worth of metrics)."""

    request_id: str
    job_id: str
    energy_j: float
    mean_qos: float
    deadline_miss_rate: float
    energy_per_qos_j: float
    latency_s: float
    trace_id: str = ""


@dataclass(frozen=True)
class HealthReply:
    """The out-of-band health answer.

    Attributes:
        request_id / trace_id: Correlation echoes.
        status: ``"ok"`` while accepting, ``"stopped"`` once draining.
        queue_depth: Requests currently queued.
        workers: Worker-task count.
        served / rejected: Lifetime totals.
        indicators: Sliding-window numbers from
            :func:`repro.obs.runtime.health_indicators` (empty when the
            server has no metrics window to draw on).
    """

    request_id: str
    status: str
    queue_depth: int
    workers: int
    served: int
    rejected: int
    indicators: dict[str, float | None]
    trace_id: str = ""


@dataclass(frozen=True)
class StatsReply:
    """The out-of-band stats answer (raw lifetime counters)."""

    request_id: str
    stats: dict[str, int]
    trace_id: str = ""


@dataclass(frozen=True)
class Rejection:
    """A request the service explicitly declined to serve.

    Attributes:
        request_id: Echo of the request's correlation id.
        reason: One of ``overloaded`` (queue bound hit), ``deadline``
            (expired while queued), ``shutdown`` (submitted after drain
            began), or ``error`` (the handler raised).
        detail: Human-readable explanation.
        trace_id: The end-to-end correlation id, when one was stamped
            before the rejection.
    """

    request_id: str
    reason: str
    detail: str = ""
    trace_id: str = ""


Reply = Union[DecisionReply, SimulationReply, HealthReply, StatsReply, Rejection]


def observation_from_mapping(
    data: Mapping[str, Any], chip: Chip | None = None
) -> ClusterObservation:
    """Build an observation from a (possibly partial) mapping.

    A ``cluster`` name is always required.  When ``chip`` is given, the
    OPP-table geometry and current operating point seed the defaults, so
    a client may send only the signal fields it cares about
    (``utilization``, ``qos_slack``, ...); without a chip every field
    must be present.

    Raises:
        ServeError: On unknown keys, a missing cluster, or missing
            fields when no chip provides defaults.
    """
    known = {f.name for f in fields(ClusterObservation)}
    unknown = set(data) - known
    if unknown:
        raise ServeError(
            f"unknown observation fields {sorted(unknown)}; "
            f"known: {sorted(known)}"
        )
    if "cluster" not in data:
        raise ServeError("an observation needs a 'cluster' name")
    name = str(data["cluster"])
    if chip is not None:
        if name not in chip.cluster_names:
            raise ServeError(
                f"unknown cluster {name!r}; chip has {list(chip.cluster_names)}"
            )
        cluster = chip.cluster(name)
        base = asdict(
            initial_observation(
                name,
                cluster.opp_index,
                len(cluster.spec.opp_table),
                cluster.freq_hz,
                cluster.spec.opp_table.max_freq_hz,
                0.01,
            )
        )
    else:
        missing = known - set(data) - {"temp_c"}
        if missing:
            raise ServeError(
                f"observation missing fields {sorted(missing)} "
                "(pass a chip for defaults, or send them all)"
            )
        base = {"temp_c": None}
    merged: dict[str, Any] = {**base, **dict(data)}
    for key, value in merged.items():
        if key == "cluster" or value is None:
            continue
        merged[key] = int(value) if key in _INT_OBS_FIELDS else float(value)
    merged["cluster"] = name
    return ClusterObservation(**merged)


def request_from_mapping(
    data: Mapping[str, Any], chip: Chip | None = None
) -> Request:
    """Parse one request mapping (e.g. a JSONL line).

    The ``kind`` key picks the request type: ``"decision"`` (default),
    ``"simulate"``, ``"health"``, or ``"stats"``.

    Raises:
        ServeError: On an unknown kind or a malformed payload.
    """
    kind = str(data.get("kind", "decision"))
    request_id = str(data.get("request_id", ""))
    trace_id = str(data.get("trace_id", ""))
    deadline = data.get("deadline_s")
    deadline_s = float(deadline) if deadline is not None else None
    if deadline_s is not None and deadline_s <= 0:
        raise ServeError(f"deadline must be positive: {deadline_s}")
    if kind == "decision":
        payload = data.get("observation")
        if not isinstance(payload, Mapping):
            raise ServeError("a decision request needs an 'observation' mapping")
        return DecisionRequest(
            observation=observation_from_mapping(payload, chip),
            session=str(data.get("session", "default")),
            request_id=request_id,
            deadline_s=deadline_s,
            trace_id=trace_id,
        )
    if kind == "simulate":
        payload = data.get("spec")
        if not isinstance(payload, Mapping):
            raise ServeError("a simulate request needs a 'spec' mapping")
        return SimulationRequest(
            spec=JobSpec.from_mapping(payload),
            request_id=request_id,
            deadline_s=deadline_s,
            trace_id=trace_id,
        )
    if kind == "health":
        return HealthRequest(request_id=request_id, trace_id=trace_id)
    if kind == "stats":
        return StatsRequest(request_id=request_id, trace_id=trace_id)
    raise ServeError(
        f"unknown request kind {kind!r}; expected 'decision', 'simulate', "
        "'health', or 'stats'"
    )


def reply_to_mapping(reply: Reply) -> dict[str, Any]:
    """The JSON-serialisable form of a reply, tagged with its kind."""
    if isinstance(reply, DecisionReply):
        return {"kind": "decision", **asdict(reply)}
    if isinstance(reply, SimulationReply):
        return {"kind": "simulation", **asdict(reply)}
    if isinstance(reply, HealthReply):
        return {"kind": "health", **asdict(reply)}
    if isinstance(reply, StatsReply):
        return {"kind": "stats", **asdict(reply)}
    return {"kind": "rejection", **asdict(reply)}
