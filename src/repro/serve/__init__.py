"""``repro.serve`` — the long-running policy-decision service.

Loads a trained policy snapshot and serves observation→action decision
requests and whole simulation jobs from a bounded queue with explicit
backpressure, per-request deadlines, and graceful drain-on-shutdown.
Out-of-band ``health``/``stats`` requests bypass the queue, every
request carries a ``trace_id`` for end-to-end correlation, and an
optional structured ops log records one line per outcome.  See
``docs/serving.md`` for the architecture and SLOs.
"""

from repro.serve.client import serve_jsonl, serve_once
from repro.serve.config import ServeConfig
from repro.serve.drift import DriftMonitor
from repro.serve.protocol import (
    REJECT_DEADLINE,
    REJECT_ERROR,
    REJECT_OVERLOADED,
    REJECT_SHUTDOWN,
    DecisionReply,
    DecisionRequest,
    HealthReply,
    HealthRequest,
    Rejection,
    Reply,
    Request,
    SimulationReply,
    SimulationRequest,
    StatsReply,
    StatsRequest,
    observation_from_mapping,
    reply_to_mapping,
    request_from_mapping,
)
from repro.serve.queue import InProcessQueue, QueueBackend
from repro.serve.server import PolicyServer, ServerStats
from repro.serve.session import DecisionSession

__all__ = [
    "REJECT_DEADLINE",
    "REJECT_ERROR",
    "REJECT_OVERLOADED",
    "REJECT_SHUTDOWN",
    "DecisionReply",
    "DecisionRequest",
    "DecisionSession",
    "DriftMonitor",
    "HealthReply",
    "HealthRequest",
    "InProcessQueue",
    "PolicyServer",
    "QueueBackend",
    "Rejection",
    "Reply",
    "Request",
    "ServeConfig",
    "ServerStats",
    "SimulationReply",
    "SimulationRequest",
    "StatsReply",
    "StatsRequest",
    "observation_from_mapping",
    "reply_to_mapping",
    "request_from_mapping",
    "serve_jsonl",
    "serve_once",
]
