"""Serve-side policy drift monitoring against a reference checkpoint.

A deployed policy snapshot goes stale: the fleet retrains, the engine
contract moves, or online learning continues elsewhere while the server
keeps answering from the tables it booted with.  The drift monitor
makes that visible *in production terms*: every decision the live
snapshot serves is shadow-scored against a **reference checkpoint**
(typically the last released one), and the monitor counts how often the
two greedy policies disagree and how far their state values sit apart.

Shadow scoring is read-only and per-session — the reference policies
get their own featurizer clones (via the same
:func:`~repro.serve.session._clone_for_evaluation` path the live
snapshot uses), so both policies see the identical observation sequence
and the live decision stream is bit-identical with or without a monitor
attached.

Three export paths, all optional and all downstream of one
:meth:`DriftMonitor.record` call per decision:

* **metrics** — ``serve.drift.decisions`` / ``serve.drift.disagreements``
  counters and a ``serve.drift.q_delta`` histogram, when an
  observability session is active;
* **ops log** — one ``kind="drift"`` record per shadow-scored decision
  (outcome ``ok`` on agreement, ``failed:drift`` on disagreement), when
  an :class:`~repro.obs.opslog.OpsLogger` is attached;
* **SLOs** — because ``drift`` is a first-class ops-record kind, a
  drift budget is just an :class:`~repro.obs.runtime.SloSpec` with
  ``kind="drift"`` (see ``docs/observability.md``).
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.policy import RLPowerManagementPolicy
from repro.errors import ServeError
from repro.obs import OBS
from repro.obs.context import current_context

if TYPE_CHECKING:
    from repro.obs.opslog import OpsLogger


class DriftMonitor:
    """Counts live-vs-reference policy disagreement, decision by decision.

    One monitor is shared by every session of a server; sessions build
    their own shadow clones of :attr:`reference` so the monitor itself
    holds no per-client state beyond the counters.

    Args:
        reference: Trained per-cluster reference policies (the
            checkpoint the live snapshot is compared against).
        ops_log: Structured ops logger; one ``drift`` record per
            shadow-scored decision when attached.

    Raises:
        ServeError: On an empty reference snapshot.
    """

    def __init__(
        self,
        reference: dict[str, RLPowerManagementPolicy],
        ops_log: "OpsLogger | None" = None,
    ) -> None:
        if not reference:
            raise ServeError("a drift monitor needs a non-empty reference")
        self.reference = reference
        self.decisions = 0
        self.disagreements = 0
        self._ops = ops_log

    @classmethod
    def from_checkpoint(
        cls, directory: str | Path, ops_log: "OpsLogger | None" = None
    ) -> "DriftMonitor":
        """Build a monitor from a reference checkpoint directory.

        Raises:
            PolicyError: For a missing/corrupt/stale checkpoint (the
                same engine-version staleness check serving applies).
        """
        # Deliberate upward reach, mirroring PolicyServer.from_checkpoint:
        # the deferred import keeps serve importable without core loaded.
        from repro.core.checkpoint import load_policies

        return cls(load_policies(directory), ops_log=ops_log)

    @property
    def disagreement_fraction(self) -> float:
        """Fraction of shadow-scored decisions where the actions differ."""
        return self.disagreements / self.decisions if self.decisions else 0.0

    def as_mapping(self) -> dict[str, int]:
        """The drift counters, for a stats reply."""
        return {
            "drift_decisions": self.decisions,
            "drift_disagreements": self.disagreements,
        }

    def record(
        self, cluster: str, action: int, ref_action: int, q_delta: float
    ) -> None:
        """Account one shadow-scored decision.

        Args:
            cluster: Cluster the decision was for.
            action: OPP index the live snapshot chose.
            ref_action: OPP index the reference policy chose for the
                same observation.
            q_delta: ``|V_live(s) - V_ref(s)|`` — how far the two
                policies' state-value estimates sit apart.
        """
        self.decisions += 1
        agreed = action == ref_action
        if not agreed:
            self.disagreements += 1
        if OBS.enabled:
            OBS.metrics.counter("serve.drift.decisions").inc()
            if not agreed:
                OBS.metrics.counter("serve.drift.disagreements").inc()
            OBS.metrics.histogram("serve.drift.q_delta").observe(q_delta)
        if self._ops is not None:
            from repro.obs.opslog import ops_record

            ctx = current_context()
            self._ops.log(ops_record(
                kind="drift",
                outcome="ok" if agreed else "failed:drift",
                latency_s=0.0,
                trace_id=ctx.trace_id if ctx is not None else "",
                request_id=ctx.request_id if ctx is not None else "",
                cluster=cluster,
                action=int(action),
                reference_action=int(ref_action),
                q_delta=float(q_delta),
            ))
