"""Runtime configuration of the policy-decision service."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ServeError


@dataclass(frozen=True)
class ServeConfig:
    """All tunables of a :class:`~repro.serve.server.PolicyServer`.

    Attributes:
        workers: Concurrent worker tasks draining the request queue.
            Decision requests are microseconds of pure CPU and run on
            the event loop; simulation jobs are shipped to an executor,
            so ``workers`` bounds how many simulations run at once.
        queue_size: Bound of the request queue.  A full queue rejects
            new submissions with an explicit ``overloaded`` response
            instead of buffering without limit — that is the
            backpressure contract.
        default_deadline_s: Deadline applied to requests that do not
            carry their own; ``None`` means no deadline.  A request
            still queued when its deadline passes is answered with a
            ``deadline`` rejection, not silently computed late.
        drain_timeout_s: Upper bound on how long a graceful shutdown
            waits for queued work to finish before cancelling the
            remainder.
    """

    workers: int = 2
    queue_size: int = 64
    default_deadline_s: float | None = None
    drain_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServeError(f"need at least one worker: {self.workers}")
        if self.queue_size < 1:
            raise ServeError(
                f"queue bound must be positive: {self.queue_size}"
            )
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ServeError(
                f"default deadline must be positive: {self.default_deadline_s}"
            )
        if self.drain_timeout_s <= 0:
            raise ServeError(
                f"drain timeout must be positive: {self.drain_timeout_s}"
            )
