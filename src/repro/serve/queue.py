"""The pluggable request queue behind the policy server.

The server talks to its queue only through the :class:`QueueBackend`
protocol — put without blocking (full means *reject now*, that is the
backpressure contract), awaitable get, task accounting, and an
awaitable drain barrier.  :class:`InProcessQueue` is the asyncio
implementation every test and the CLI daemon use; a redis-style remote
backend slots in behind the same five methods without the server
changing (the cog-style worker lifecycle: setup → serve → drain →
shutdown).
"""

from __future__ import annotations

import asyncio
from typing import Any, Protocol, runtime_checkable

from repro.errors import ServeError, ServeOverloaded


@runtime_checkable
class QueueBackend(Protocol):
    """What the server requires of a queue implementation.

    Items are opaque to the backend; the in-process backend passes
    object references, a remote backend would serialise the protocol
    mappings (:mod:`repro.serve.protocol`).

    Correlation contract: queued items carry the request's
    ``trace_id``/``request_id`` (and, for simulation jobs, the spec's
    ``trace_context``).  A remote backend must preserve those envelope
    fields byte-for-byte across serialisation — the ids are how
    ``repro trace --merge`` and the ops log stitch a request's path
    back together once it has crossed a process boundary.
    """

    def put_nowait(self, item: Any) -> None:
        """Enqueue ``item`` or raise :class:`ServeOverloaded` when full."""
        ...

    async def get(self) -> Any:
        """Wait for and return the next item."""
        ...

    def task_done(self) -> None:
        """Mark the most recently gotten item as fully processed."""
        ...

    async def join(self) -> None:
        """Wait until every enqueued item has been marked done."""
        ...

    def depth(self) -> int:
        """Number of items currently queued (not yet gotten)."""
        ...


class InProcessQueue:
    """A bounded ``asyncio.Queue`` satisfying :class:`QueueBackend`.

    Args:
        maxsize: Queue bound; a full queue makes :meth:`put_nowait`
            raise :class:`ServeOverloaded` so the caller can reject the
            request explicitly instead of buffering unboundedly.
    """

    def __init__(self, maxsize: int = 64) -> None:
        if maxsize < 1:
            raise ServeError(f"queue bound must be positive: {maxsize}")
        self.maxsize = maxsize
        self._queue: asyncio.Queue[Any] = asyncio.Queue(maxsize=maxsize)

    def put_nowait(self, item: Any) -> None:
        """Enqueue without waiting.

        Raises:
            ServeOverloaded: When the queue is at its bound.
        """
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            raise ServeOverloaded(
                f"queue full ({self.maxsize} pending requests)"
            ) from None

    async def get(self) -> Any:
        """Wait for and return the next item."""
        return await self._queue.get()

    def task_done(self) -> None:
        """Mark the most recently gotten item as fully processed."""
        self._queue.task_done()

    async def join(self) -> None:
        """Wait until every enqueued item has been marked done."""
        await self._queue.join()

    def depth(self) -> int:
        """Number of items currently queued (not yet gotten)."""
        return self._queue.qsize()
