"""Client-side helpers: one-shot serving and the JSONL stdio loop.

Two entry points sit on top of :class:`~repro.serve.server.PolicyServer`:

* :func:`serve_once` — boot, answer a batch of requests, drain, return
  the replies in submission order.  Backs ``repro decide`` and any test
  that wants request/reply semantics without managing the lifecycle.
* :func:`serve_jsonl` — the daemon loop behind ``repro serve``: read
  one JSON request per line, stream one JSON reply per completion.
  Line reads go through the event loop's executor so a slow producer
  never blocks the worker pool (the no-blocking-calls discipline RPL701
  enforces on this package).

Replies stream in *completion* order; clients correlate through
``request_id``, which every reply echoes.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Callable, Sequence

from repro.errors import ReproError, ServeError
from repro.serve.protocol import (
    REJECT_ERROR,
    Rejection,
    Reply,
    Request,
    reply_to_mapping,
    request_from_mapping,
)
from repro.serve.server import PolicyServer


async def serve_once(
    server: PolicyServer, requests: Sequence[Request]
) -> list[Reply]:
    """Start ``server``, answer ``requests``, drain, and shut down.

    Returns the replies in submission order (unlike the streaming loop,
    which replies in completion order).
    """
    await server.start()
    try:
        futures = [server.submit(request) for request in requests]
        return [await future for future in futures]
    finally:
        await server.shutdown()


async def serve_jsonl(
    server: PolicyServer,
    read_line: Callable[[], str],
    write_reply: Callable[[dict[str, Any]], None],
) -> int:
    """Pump JSONL requests into a started server until EOF, then drain.

    Args:
        server: A server whose :meth:`~PolicyServer.start` has already
            run (the CLI owns the lifecycle so it can report stats).
        read_line: Blocking line reader (e.g. ``sys.stdin.readline``);
            an empty string means EOF.  Called via the executor so the
            event loop — and the decision path — never blocks on input.
        write_reply: Sink for one reply mapping; called from the event
            loop in completion order.

    Returns:
        The number of requests submitted (malformed lines are answered
        with an ``error`` rejection and not counted).
    """
    loop = asyncio.get_running_loop()
    submitted = 0
    in_flight: set["asyncio.Future[Reply]"] = set()

    def _emit(future: "asyncio.Future[Reply]") -> None:
        in_flight.discard(future)
        if not future.cancelled():
            write_reply(reply_to_mapping(future.result()))

    while True:
        line = await loop.run_in_executor(None, read_line)
        if not line:
            break
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
            if not isinstance(data, dict):
                raise ServeError("a request line must be a JSON object")
            request = request_from_mapping(data, server.chip)
        except (json.JSONDecodeError, ReproError) as exc:
            request_id = trace_id = ""
            if isinstance(data := _maybe_mapping(line), dict):
                request_id = str(data.get("request_id", ""))
                trace_id = str(data.get("trace_id", ""))
            write_reply(
                reply_to_mapping(
                    Rejection(
                        request_id=request_id,
                        reason=REJECT_ERROR,
                        detail=f"malformed request line: {exc}",
                        trace_id=trace_id,
                    )
                )
            )
            continue
        future = server.submit(request)
        submitted += 1
        in_flight.add(future)
        future.add_done_callback(_emit)
    await server.shutdown(drain=True)
    if in_flight:
        await asyncio.gather(*in_flight, return_exceptions=True)
    return submitted


def _maybe_mapping(line: str) -> Any:
    """Best-effort parse of a rejected line, to recover a request_id."""
    try:
        return json.loads(line)
    except json.JSONDecodeError:
        return None
