"""State featurisation for the RL power-management policy.

The state captures the "behavioural characteristics of systems that run
on mobile devices" the paper conditions on: how loaded the cluster is,
where demand is heading (from the predictor), which OPP it sits at, and
how much QoS slack remains in the pending queue.
"""

from __future__ import annotations

from repro.core.config import PolicyConfig
from repro.core.predictor import WorkloadPredictor
from repro.errors import PolicyError
from repro.rl.discretize import Binner, StateSpace
from repro.sim.telemetry import ClusterObservation


class StateFeaturizer:
    """Turns observations into flat Q-table state indices.

    Args:
        config: Policy configuration (bin counts, predictor parameters).
        n_opps: Size of the controlled cluster's OPP table.
    """

    def __init__(self, config: PolicyConfig, n_opps: int):
        if n_opps < 1:
            raise PolicyError(f"need at least one OPP: {n_opps}")
        self.config = config
        self.n_opps = n_opps
        self.space = StateSpace(
            [
                ("util", config.util_bins),
                ("trend", config.trend_bins),
                ("opp", config.opp_bins),
                ("slack", config.slack_bins),
            ]
        )
        # Utilisation of the busiest core, scaled to the top OPP so the
        # feature is frequency-invariant ("absolute load").  Loads can
        # exceed 1 only through queue backlog, which the slack feature
        # covers, so we bin [0, 1].  A bin count of 1 disables a feature
        # (its digit is constant 0).
        self._util_binner = self._binner(0.0, 1.0, config.util_bins)
        # Predicted per-interval load change; +-6 % per 10 ms is already a
        # strong ramp, so the outer bins catch real phase swings.
        self._trend_binner = self._binner(-0.06, 0.06, config.trend_bins)
        self._slack_binner = self._binner(0.0, 1.0, config.slack_bins)
        self.predictor = WorkloadPredictor(
            alpha=config.predictor_alpha,
            phase_change_threshold=config.phase_change_threshold,
        )

    @staticmethod
    def _binner(lo: float, hi: float, n_bins: int) -> Binner | None:
        """A binner, or ``None`` when the feature is disabled (1 bin)."""
        return Binner.uniform(lo, hi, n_bins) if n_bins > 1 else None

    @property
    def n_states(self) -> int:
        return self.space.n_states

    def digits(self, obs: ClusterObservation) -> tuple[int, int, int, int]:
        """The raw (util, trend, opp, slack) digit vector for an observation.

        Feeds the predictor as a side effect: call exactly once per
        interval, in time order.
        """
        load = obs.absolute_load
        self.predictor.observe(load)
        util_bin = 0 if self._util_binner is None else min(
            self._util_binner.bin(self.predictor.level), self.config.util_bins - 1
        )
        trend_bin = 0 if self._trend_binner is None else min(
            self._trend_binner.bin(self.predictor.trend), self.config.trend_bins - 1
        )
        opp_bin = min(
            obs.opp_index * self.config.opp_bins // max(1, self.n_opps),
            self.config.opp_bins - 1,
        )
        slack_bin = 0 if self._slack_binner is None else min(
            self._slack_binner.bin(obs.qos_slack), self.config.slack_bins - 1
        )
        return util_bin, trend_bin, opp_bin, slack_bin

    def encode(self, obs: ClusterObservation) -> int:
        """Flat state index for an observation (advances the predictor)."""
        return self.space.encode(self.digits(obs))

    def reset(self) -> None:
        """Clear the predictor between runs."""
        self.predictor.reset()
