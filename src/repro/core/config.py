"""Configuration of the RL power-management policy."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PolicyError
from repro.rl.exploration import EpsilonSchedule


@dataclass(frozen=True)
class PolicyConfig:
    """All tunables of the proposed policy in one place.

    Attributes:
        util_bins: Bins for the busiest-core utilisation feature.
        trend_bins: Bins for the predicted-demand-trend feature.
        opp_bins: Bins the current OPP index is quantised into (keeps the
            state space compact on long OPP tables).
        slack_bins: Bins for the QoS-slack feature.
            Setting any feature's bin count to 1 removes that feature from
            the state (used by the A1 state-ablation bench).
        action_deltas: OPP-index moves the agent chooses among.  The
            default five-action set {-2, -1, 0, +1, +2} lets the policy
            both fine-tune and react fast.
        alpha: Q-learning rate.
        gamma: Discount factor.
        epsilon: Exploration schedule used while learning.
        lambda_qos: Reward weight of QoS violations versus energy.
        slack_threshold: Queue slack below which anticipatory penalty
            starts (see :class:`repro.rl.reward.RewardConfig`).
        predictor_alpha: EWMA coefficient of the workload predictor.
        phase_change_threshold: Normalised prediction-error level treated
            as a phase change (resets the predictor).
        seed: Exploration RNG seed.
    """

    util_bins: int = 6
    trend_bins: int = 3
    opp_bins: int = 5
    slack_bins: int = 3
    action_deltas: tuple[int, ...] = (-2, -1, 0, 1, 2)
    alpha: float = 0.3
    gamma: float = 0.85
    epsilon: EpsilonSchedule = field(
        default_factory=lambda: EpsilonSchedule(start=0.5, decay=0.9995, floor=0.05)
    )
    lambda_qos: float = 1.0
    slack_threshold: float = 0.2
    predictor_alpha: float = 0.35
    phase_change_threshold: float = 0.4
    seed: int = 0

    def __post_init__(self) -> None:
        bins = (self.util_bins, self.trend_bins, self.opp_bins, self.slack_bins)
        if min(bins) < 1:
            raise PolicyError("state feature bins must be >= 1")
        if max(bins) < 2:
            raise PolicyError("at least one state feature needs >= 2 bins")
        if not self.action_deltas:
            raise PolicyError("need at least one action delta")
        if len(set(self.action_deltas)) != len(self.action_deltas):
            raise PolicyError(f"duplicate action deltas: {self.action_deltas}")
        if 0 not in self.action_deltas:
            raise PolicyError("the hold action (delta 0) must be available")
        if not 0 < self.predictor_alpha <= 1:
            raise PolicyError(
                f"predictor alpha must be in (0, 1]: {self.predictor_alpha}"
            )
        if self.phase_change_threshold <= 0:
            raise PolicyError(
                f"phase-change threshold must be positive: {self.phase_change_threshold}"
            )

    @property
    def n_actions(self) -> int:
        return len(self.action_deltas)

    @property
    def n_states(self) -> int:
        return self.util_bins * self.trend_bins * self.opp_bins * self.slack_bins
