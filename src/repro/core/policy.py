"""The proposed RL power-management policy.

One :class:`RLPowerManagementPolicy` instance controls one DVFS cluster.
Every sampling interval it:

1. featurises the observation into a state (utilisation level, predicted
   trend, OPP position, QoS slack),
2. applies the Q-learning update for the *previous* decision using the
   energy/QoS reward observed over the interval,
3. epsilon-greedily picks an OPP-index delta and returns the new index.

Learning is online, as in the paper: the Q-table persists across
simulator runs (episodes) unless :meth:`forget` is called, and an
``online`` flag switches between learn-while-running and frozen
(evaluation) behaviour.
"""

from __future__ import annotations

from repro.core.config import PolicyConfig
from repro.core.state import StateFeaturizer
from repro.errors import PolicyError
from repro.governors.base import Governor
from repro.rl.double_q import DoubleQAgent
from repro.rl.qlearning import QLearningAgent
from repro.rl.reward import RewardConfig, default_energy_scale
from repro.rl.sarsa import SarsaAgent
from repro.sim.telemetry import ClusterObservation
from repro.soc.cluster import Cluster


class RLPowerManagementPolicy(Governor):
    """Q-learning DVFS governor (the paper's proposed policy).

    Args:
        config: Policy tunables; defaults reproduce the paper setup.
        online: When True the policy keeps learning while it runs; when
            False it acts greedily from the current Q-table (evaluation
            mode).  Flip at runtime via the attribute.
    """

    name = "rl-policy"

    def __init__(self, config: PolicyConfig | None = None, online: bool = True):
        super().__init__()
        self.config = config or PolicyConfig()
        self.online = online
        self.featurizer: StateFeaturizer | None = None
        self.agent: QLearningAgent | None = None
        self.reward_config: RewardConfig | None = None
        self._prev_state: int | None = None
        self._prev_action: int | None = None
        self.episodes = 0
        self.cumulative_reward = 0.0

    # -- lifecycle ---------------------------------------------------------

    def reset(self, cluster: Cluster) -> None:
        """Bind to a cluster; Q-knowledge survives across runs.

        The first reset (or a reset after :meth:`forget`) builds the
        featurizer, agent, and reward normalisation from the cluster's
        OPP table.  Later resets only clear per-episode state, so the
        policy keeps what it has learned — that is the paper's online
        adaptation story.

        Raises:
            PolicyError: If re-bound to a cluster with a different OPP
                table size (the learned table would be meaningless).
        """
        super().reset(cluster)
        n_opps = len(cluster.spec.opp_table)
        if self.featurizer is not None and self.featurizer.n_opps != n_opps:
            raise PolicyError(
                f"policy learned on a {self.featurizer.n_opps}-OPP cluster; "
                f"cannot re-bind to a {n_opps}-OPP cluster (call forget() first)"
            )
        if self.featurizer is None:
            self.featurizer = StateFeaturizer(self.config, n_opps)
            self.agent = self._make_agent(self.featurizer.n_states)
        top = cluster.spec.opp_table[cluster.spec.opp_table.max_index]
        self.reward_config = RewardConfig(
            energy_scale_j=default_energy_scale(
                cluster.spec.core.ceff_f,
                top.voltage_v,
                top.freq_hz,
                cluster.n_cores,
                interval_s=0.01,
            ),
            lambda_qos=self.config.lambda_qos,
            slack_threshold=self.config.slack_threshold,
        )
        self.featurizer.reset()
        self._prev_state = None
        self._prev_action = None
        # Start a fresh TD-error window so convergence stats read out
        # per run/episode rather than over the policy's whole life.
        self.agent.td_stats.reset()
        self.episodes += 1

    def _make_agent(self, n_states: int) -> QLearningAgent:
        """Build the learner; subclasses swap the TD rule here."""
        return QLearningAgent(
            n_states=n_states,
            n_actions=self.config.n_actions,
            alpha=self.config.alpha,
            gamma=self.config.gamma,
            epsilon=self.config.epsilon,
            seed=self.config.seed,
        )

    def forget(self) -> None:
        """Drop all learned knowledge (fresh Q-table on next reset)."""
        self.featurizer = None
        self.agent = None
        self._prev_state = None
        self._prev_action = None
        self.episodes = 0
        self.cumulative_reward = 0.0

    # -- decision ------------------------------------------------------------

    def decide(self, obs: ClusterObservation) -> int:
        if self.featurizer is None or self.agent is None or self.reward_config is None:
            raise PolicyError("policy.decide called before reset()")
        state = self.featurizer.encode(obs)

        if self.online and self._prev_state is not None and self._prev_action is not None:
            reward = self.reward_config.compute(obs)
            self.cumulative_reward += reward
            self.agent.update(self._prev_state, self._prev_action, reward, state)

        if self.online:
            action = self.agent.act(state)
        else:
            action = self.agent.act_greedy(state)
        self._prev_state = state
        self._prev_action = action

        delta = self.config.action_deltas[action]
        table = self.cluster.spec.opp_table
        return table.clamp_index(obs.opp_index + delta)

    # -- introspection ---------------------------------------------------------

    @property
    def q_coverage(self) -> float:
        """Fraction of Q entries touched by learning so far."""
        if self.agent is None:
            return 0.0
        return self.agent.table.visited_fraction()

    @property
    def epsilon(self) -> float:
        """Current exploration probability (0.0 before the first reset)."""
        if self.agent is None:
            return 0.0
        return self.agent.epsilon

    def convergence_snapshot(self) -> dict[str, float]:
        """Training-introspection numbers for the current episode window.

        Keys: ``td_error_mean_abs`` / ``td_error_last`` /
        ``td_error_max_abs`` / ``updates`` (this window), plus the
        lifetime ``epsilon``, ``q_coverage``, ``cumulative_reward``, and
        ``episodes``.  All zeros before the first reset.
        """
        stats = self.agent.td_stats if self.agent is not None else None
        return {
            "td_error_mean_abs": stats.mean_abs if stats else 0.0,
            "td_error_last": stats.last if stats else 0.0,
            "td_error_max_abs": stats.max_abs if stats else 0.0,
            "updates": float(stats.count) if stats else 0.0,
            "epsilon": self.epsilon,
            "q_coverage": self.q_coverage,
            "cumulative_reward": self.cumulative_reward,
            "episodes": float(self.episodes),
        }


class DoubleQPowerManagementPolicy(RLPowerManagementPolicy):
    """Double-Q-learning variant of the proposed policy — ablation A5.

    Same decision loop as the Q-learning policy; the learner keeps two
    decorrelated tables to counter max-operator overestimation under the
    noisy per-interval energy/miss rewards.
    """

    name = "rl-policy-doubleq"

    def _make_agent(self, n_states: int) -> DoubleQAgent:
        return DoubleQAgent(
            n_states=n_states,
            n_actions=self.config.n_actions,
            alpha=self.config.alpha,
            gamma=self.config.gamma,
            epsilon=self.config.epsilon,
            seed=self.config.seed,
        )


class SarsaPowerManagementPolicy(RLPowerManagementPolicy):
    """On-policy (SARSA) variant of the proposed policy — ablation A3.

    Identical state, actions, and reward; the TD target bootstraps from
    the action the behaviour policy actually takes next instead of the
    greedy one.
    """

    name = "rl-policy-sarsa"

    def _make_agent(self, n_states: int) -> SarsaAgent:
        return SarsaAgent(
            n_states=n_states,
            n_actions=self.config.n_actions,
            alpha=self.config.alpha,
            gamma=self.config.gamma,
            epsilon=self.config.epsilon,
            seed=self.config.seed,
        )

    def decide(self, obs: ClusterObservation) -> int:
        if self.featurizer is None or self.agent is None or self.reward_config is None:
            raise PolicyError("policy.decide called before reset()")
        state = self.featurizer.encode(obs)

        if self.online:
            action = self.agent.act(state)
        else:
            action = self.agent.act_greedy(state)

        if self.online and self._prev_state is not None and self._prev_action is not None:
            reward = self.reward_config.compute(obs)
            self.cumulative_reward += reward
            self.agent.update(self._prev_state, self._prev_action, reward, state, action)

        self._prev_state = state
        self._prev_action = action
        delta = self.config.action_deltas[action]
        return self.cluster.spec.opp_table.clamp_index(obs.opp_index + delta)
