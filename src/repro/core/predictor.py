"""Workload prediction: the "predicts a system's characteristics" part.

A light EWMA tracker of the cluster's absolute load, with phase-change
detection: when the prediction error spikes, the tracker snaps to the
new level instead of converging slowly.  The policy consumes the
*predicted trend* (where demand is heading), which is what lets it
provision ahead of a burst instead of one interval behind it.
"""

from __future__ import annotations

from repro.errors import PolicyError


class WorkloadPredictor:
    """EWMA load predictor with snap-on-phase-change.

    Args:
        alpha: EWMA smoothing coefficient in (0, 1]; higher tracks faster.
        phase_change_threshold: Absolute prediction error (in load units,
            i.e. fractions of peak capacity) treated as a phase change.
    """

    def __init__(self, alpha: float = 0.35, phase_change_threshold: float = 0.4):
        if not 0 < alpha <= 1:
            raise PolicyError(f"alpha must be in (0, 1]: {alpha}")
        if phase_change_threshold <= 0:
            raise PolicyError(
                f"phase-change threshold must be positive: {phase_change_threshold}"
            )
        self.alpha = alpha
        self.phase_change_threshold = phase_change_threshold
        self._level: float | None = None
        self._prev_level: float | None = None
        self.phase_changes = 0

    @property
    def level(self) -> float:
        """Current predicted load level (0 before any observation)."""
        return self._level if self._level is not None else 0.0

    @property
    def trend(self) -> float:
        """Predicted per-interval change in load (level minus previous
        level); 0 until two observations arrive."""
        if self._level is None or self._prev_level is None:
            return 0.0
        return self._level - self._prev_level

    def observe(self, load: float) -> float:
        """Feed one interval's absolute load; returns the updated level.

        Raises:
            PolicyError: For negative load (loads may exceed 1 transiently
                when queues back up, which is allowed).
        """
        if load < 0:
            raise PolicyError(f"load must be non-negative: {load}")
        if self._level is None:
            self._prev_level = None
            self._level = load
            return self._level
        error = load - self._level
        self._prev_level = self._level
        if abs(error) > self.phase_change_threshold:
            # Phase change: snap instead of crawling.
            self._level = load
            self.phase_changes += 1
        else:
            self._level = self._level + self.alpha * error
        return self._level

    def reset(self) -> None:
        """Forget all history."""
        self._level = None
        self._prev_level = None
        self.phase_changes = 0
