"""Policy introspection: what did the Q-table actually learn?

A trained policy is a lookup table; unlike a neural policy it can be
*read*.  This module extracts the greedy decision surface — for each
(utilisation, trend, OPP, slack) state, the OPP delta the policy would
take — and renders the slices a human checks first:

* at relaxed slack, does the action descend as utilisation falls?
* at critical slack, does the policy ramp up regardless of utilisation?

Used by the test suite to verify the learned policy is *sensible*, not
just effective, and available to users debugging a training run.

The same machinery backs the ``repro policy`` CLI: ``repro policy
show`` renders a checkpoint's greedy-action tables and visitation
heatmaps, and ``repro policy diff`` (:func:`diff_policies`) compares
two checkpoints state by state — action disagreement, Q-delta
quantiles, and coverage drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.checkpoint import load_policies
from repro.core.policy import RLPowerManagementPolicy
from repro.errors import PolicyError


@dataclass(frozen=True)
class DecisionSurface:
    """The greedy action (as an OPP delta) for every state.

    Attributes:
        deltas: Array of shape (util_bins, trend_bins, opp_bins,
            slack_bins) of greedy OPP deltas.
        visits: Same shape; True where learning ever touched the state's
            Q-row (unvisited states hold the tie-break default and should
            not be over-interpreted).
    """

    deltas: np.ndarray
    visits: np.ndarray

    @property
    def coverage(self) -> float:
        """Fraction of states that were visited during learning."""
        return float(self.visits.mean())

    def mean_delta(
        self,
        util_bin: int | None = None,
        trend_bin: int | None = None,
        opp_bin: int | None = None,
        slack_bin: int | None = None,
        visited_only: bool = True,
    ) -> float:
        """Mean greedy delta over a state slice (None = marginalise).

        Raises:
            PolicyError: If the slice contains no (visited) states.
        """
        index = [
            slice(None) if b is None else b
            for b in (util_bin, trend_bin, opp_bin, slack_bin)
        ]
        deltas = self.deltas[tuple(index)]
        visits = self.visits[tuple(index)]
        if visited_only:
            deltas = deltas[visits]
        if np.size(deltas) == 0:
            raise PolicyError("slice contains no visited states")
        return float(np.mean(deltas))

    def render_slice(self, slack_bin: int, trend_bin: int = 1) -> str:
        """An ASCII map of greedy deltas over (utilisation x OPP) at one
        slack/trend slice; ``.`` marks unvisited states."""
        n_util, _, n_opp, _ = self.deltas.shape
        lines = [f"greedy OPP delta at slack bin {slack_bin}, trend bin {trend_bin}"]
        header = "util\\opp " + " ".join(f"{o:>3d}" for o in range(n_opp))
        lines.append(header)
        for u in range(n_util):
            cells = []
            for o in range(n_opp):
                if self.visits[u, trend_bin, o, slack_bin]:
                    cells.append(f"{self.deltas[u, trend_bin, o, slack_bin]:+3d}")
                else:
                    cells.append("  .")
            lines.append(f"{u:>8d} " + " ".join(cells))
        return "\n".join(lines)


def decision_surface(policy: RLPowerManagementPolicy) -> DecisionSurface:
    """Extract a trained policy's greedy decision surface.

    Raises:
        PolicyError: If the policy has not been trained/bound.
    """
    if policy.agent is None or policy.featurizer is None:
        raise PolicyError("policy has not been trained")
    cfg = policy.config
    shape = (cfg.util_bins, cfg.trend_bins, cfg.opp_bins, cfg.slack_bins)
    deltas = np.zeros(shape, dtype=int)
    visits = np.zeros(shape, dtype=bool)
    table = policy.agent.table
    for u in range(cfg.util_bins):
        for t in range(cfg.trend_bins):
            for o in range(cfg.opp_bins):
                for s in range(cfg.slack_bins):
                    idx = policy.featurizer.space.encode((u, t, o, s))
                    action = table.argmax(idx)
                    deltas[u, t, o, s] = cfg.action_deltas[action]
                    visits[u, t, o, s] = bool(
                        np.any(table.row(idx) != table.initial_value)
                    )
    return DecisionSurface(deltas=deltas, visits=visits)


def sanity_report(policy: RLPowerManagementPolicy) -> str:
    """A short plain-language reading of the learned behaviour."""
    surface = decision_surface(policy)
    cfg = policy.config
    lines = [f"coverage: {surface.coverage:.1%} of states visited"]
    try:
        relaxed = surface.mean_delta(slack_bin=cfg.slack_bins - 1)
        lines.append(f"relaxed slack: mean delta {relaxed:+.2f}")
    except PolicyError:
        lines.append("relaxed slack: (no visited states)")
    try:
        critical = surface.mean_delta(slack_bin=0)
        lines.append(f"critical slack: mean delta {critical:+.2f}")
    except PolicyError:
        lines.append("critical slack: (no visited states)")
    return "\n".join(lines)


#: Ten shades from never-visited to fully-visited (heatmap cells).
_HEAT_CHARS = " .:-=+*#%@"


def visitation_heatmap(surface: DecisionSurface) -> str:
    """An ASCII heatmap of visitation over (utilisation x OPP).

    Each cell is the fraction of (trend, slack) states visited at that
    utilisation/OPP pair, shaded from `` `` (never) to ``@`` (all) —
    the quickest read of *where* in state space training actually went.
    """
    fractions = surface.visits.mean(axis=(1, 3))
    n_util, n_opp = fractions.shape
    lines = ["visitation (util rows x OPP columns; ' '=0% .. '@'=100%)"]
    lines.append("util\\opp " + " ".join(f"{o:>1d}" for o in range(n_opp)))
    for u in range(n_util):
        cells = []
        for o in range(n_opp):
            level = min(int(fractions[u, o] * len(_HEAT_CHARS)),
                        len(_HEAT_CHARS) - 1)
            cells.append(_HEAT_CHARS[level])
        lines.append(f"{u:>8d} " + " ".join(cells))
    return "\n".join(lines)


def policy_summary(policy: RLPowerManagementPolicy) -> dict[str, Any]:
    """One cluster's ``repro policy show --format json`` payload.

    Deterministic in the policy: coverage, training episodes, the
    greedy-delta histogram, and the per-(util, opp) visitation grid.
    """
    surface = decision_surface(policy)
    deltas, counts = np.unique(surface.deltas, return_counts=True)
    return {
        "coverage": surface.coverage,
        "episodes": policy.episodes,
        "greedy_delta_histogram": {
            f"{int(d):+d}": int(c) for d, c in zip(deltas, counts)
        },
        "visitation_by_util_opp": [
            [float(f) for f in row]
            for row in surface.visits.mean(axis=(1, 3))
        ],
        "greedy_deltas": [
            [[[int(d) for d in s3] for s3 in s2] for s2 in s1]
            for s1 in surface.deltas
        ],
    }


# -- checkpoint diffing -----------------------------------------------------


@dataclass(frozen=True)
class ClusterDiff:
    """How one cluster's Q-table differs between two checkpoints.

    Attributes:
        cluster: Cluster name.
        states: Q-table row count (shared geometry).
        disagreements: States whose greedy action differs.
        q_delta_p50: Median ``|Q_a - Q_b|`` over all table entries.
        q_delta_p90: 90th percentile of the same.
        q_delta_p99: 99th percentile of the same.
        q_delta_max: Largest entry-wise Q difference.
        coverage_a: Visited-state fraction in the first checkpoint.
        coverage_b: Visited-state fraction in the second.
    """

    cluster: str
    states: int
    disagreements: int
    q_delta_p50: float
    q_delta_p90: float
    q_delta_p99: float
    q_delta_max: float
    coverage_a: float
    coverage_b: float

    @property
    def disagreement_fraction(self) -> float:
        """Fraction of states whose greedy action differs."""
        return self.disagreements / self.states if self.states else 0.0


@dataclass(frozen=True)
class PolicyDiff:
    """A full checkpoint-vs-checkpoint comparison.

    Attributes:
        clusters: Per-cluster diffs for clusters present in both.
        only_a: Cluster names only the first checkpoint has.
        only_b: Cluster names only the second checkpoint has.
    """

    clusters: tuple[ClusterDiff, ...]
    only_a: tuple[str, ...] = ()
    only_b: tuple[str, ...] = ()

    @property
    def identical(self) -> bool:
        """Whether the checkpoints serve byte-for-byte the same tables."""
        return (
            not self.only_a
            and not self.only_b
            and all(
                d.disagreements == 0 and d.q_delta_max == 0.0
                for d in self.clusters
            )
        )

    def as_mapping(self) -> dict[str, Any]:
        """The JSON payload ``repro policy diff --format json`` prints."""
        return {
            "identical": self.identical,
            "only_a": list(self.only_a),
            "only_b": list(self.only_b),
            "clusters": [
                {
                    "cluster": d.cluster,
                    "states": d.states,
                    "disagreements": d.disagreements,
                    "disagreement_fraction": d.disagreement_fraction,
                    "q_delta_p50": d.q_delta_p50,
                    "q_delta_p90": d.q_delta_p90,
                    "q_delta_p99": d.q_delta_p99,
                    "q_delta_max": d.q_delta_max,
                    "coverage_a": d.coverage_a,
                    "coverage_b": d.coverage_b,
                }
                for d in self.clusters
            ],
        }


def diff_policies(
    a: dict[str, RLPowerManagementPolicy],
    b: dict[str, RLPowerManagementPolicy],
) -> PolicyDiff:
    """Compare two policy sets state by state.

    Raises:
        PolicyError: When a shared cluster's Q-table geometries differ
            (different bins/actions are not comparable state by state),
            or a shared policy is unbound.
    """
    shared = sorted(set(a) & set(b))
    diffs: list[ClusterDiff] = []
    for name in shared:
        pa, pb = a[name], b[name]
        if pa.agent is None or pb.agent is None:
            raise PolicyError(f"policy for cluster {name!r} is not trained")
        ta, tb = pa.agent.table, pb.agent.table
        if ta.values.shape != tb.values.shape:
            raise PolicyError(
                f"cluster {name!r}: Q-table geometries differ "
                f"({ta.values.shape} vs {tb.values.shape})"
            )
        disagree = int(np.count_nonzero(
            np.argmax(ta.values, axis=1) != np.argmax(tb.values, axis=1)
        ))
        delta = np.abs(ta.values - tb.values)
        diffs.append(ClusterDiff(
            cluster=name,
            states=int(ta.values.shape[0]),
            disagreements=disagree,
            q_delta_p50=float(np.quantile(delta, 0.50)),
            q_delta_p90=float(np.quantile(delta, 0.90)),
            q_delta_p99=float(np.quantile(delta, 0.99)),
            q_delta_max=float(delta.max()),
            coverage_a=ta.visited_fraction(),
            coverage_b=tb.visited_fraction(),
        ))
    return PolicyDiff(
        clusters=tuple(diffs),
        only_a=tuple(sorted(set(a) - set(b))),
        only_b=tuple(sorted(set(b) - set(a))),
    )


def diff_checkpoints(dir_a: str | Path, dir_b: str | Path) -> PolicyDiff:
    """Load two checkpoint directories and diff them."""
    return diff_policies(load_policies(dir_a), load_policies(dir_b))


def render_policy_diff(diff: PolicyDiff) -> str:
    """Human-readable rendering of a :class:`PolicyDiff`."""
    lines: list[str] = []
    for d in diff.clusters:
        lines.append(
            f"{d.cluster}: {d.disagreements}/{d.states} states disagree "
            f"({d.disagreement_fraction:.1%}); |dQ| p50 {d.q_delta_p50:.4g}, "
            f"p90 {d.q_delta_p90:.4g}, p99 {d.q_delta_p99:.4g}, "
            f"max {d.q_delta_max:.4g}; coverage {d.coverage_a:.1%} -> "
            f"{d.coverage_b:.1%}"
        )
    if diff.only_a:
        lines.append(f"only in A: {', '.join(diff.only_a)}")
    if diff.only_b:
        lines.append(f"only in B: {', '.join(diff.only_b)}")
    lines.append(
        "checkpoints are identical" if diff.identical
        else "checkpoints differ"
    )
    return "\n".join(lines)
