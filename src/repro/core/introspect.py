"""Policy introspection: what did the Q-table actually learn?

A trained policy is a lookup table; unlike a neural policy it can be
*read*.  This module extracts the greedy decision surface — for each
(utilisation, trend, OPP, slack) state, the OPP delta the policy would
take — and renders the slices a human checks first:

* at relaxed slack, does the action descend as utilisation falls?
* at critical slack, does the policy ramp up regardless of utilisation?

Used by the test suite to verify the learned policy is *sensible*, not
just effective, and available to users debugging a training run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.policy import RLPowerManagementPolicy
from repro.errors import PolicyError


@dataclass(frozen=True)
class DecisionSurface:
    """The greedy action (as an OPP delta) for every state.

    Attributes:
        deltas: Array of shape (util_bins, trend_bins, opp_bins,
            slack_bins) of greedy OPP deltas.
        visits: Same shape; True where learning ever touched the state's
            Q-row (unvisited states hold the tie-break default and should
            not be over-interpreted).
    """

    deltas: np.ndarray
    visits: np.ndarray

    @property
    def coverage(self) -> float:
        """Fraction of states that were visited during learning."""
        return float(self.visits.mean())

    def mean_delta(
        self,
        util_bin: int | None = None,
        trend_bin: int | None = None,
        opp_bin: int | None = None,
        slack_bin: int | None = None,
        visited_only: bool = True,
    ) -> float:
        """Mean greedy delta over a state slice (None = marginalise).

        Raises:
            PolicyError: If the slice contains no (visited) states.
        """
        index = [
            slice(None) if b is None else b
            for b in (util_bin, trend_bin, opp_bin, slack_bin)
        ]
        deltas = self.deltas[tuple(index)]
        visits = self.visits[tuple(index)]
        if visited_only:
            deltas = deltas[visits]
        if np.size(deltas) == 0:
            raise PolicyError("slice contains no visited states")
        return float(np.mean(deltas))

    def render_slice(self, slack_bin: int, trend_bin: int = 1) -> str:
        """An ASCII map of greedy deltas over (utilisation x OPP) at one
        slack/trend slice; ``.`` marks unvisited states."""
        n_util, _, n_opp, _ = self.deltas.shape
        lines = [f"greedy OPP delta at slack bin {slack_bin}, trend bin {trend_bin}"]
        header = "util\\opp " + " ".join(f"{o:>3d}" for o in range(n_opp))
        lines.append(header)
        for u in range(n_util):
            cells = []
            for o in range(n_opp):
                if self.visits[u, trend_bin, o, slack_bin]:
                    cells.append(f"{self.deltas[u, trend_bin, o, slack_bin]:+3d}")
                else:
                    cells.append("  .")
            lines.append(f"{u:>8d} " + " ".join(cells))
        return "\n".join(lines)


def decision_surface(policy: RLPowerManagementPolicy) -> DecisionSurface:
    """Extract a trained policy's greedy decision surface.

    Raises:
        PolicyError: If the policy has not been trained/bound.
    """
    if policy.agent is None or policy.featurizer is None:
        raise PolicyError("policy has not been trained")
    cfg = policy.config
    shape = (cfg.util_bins, cfg.trend_bins, cfg.opp_bins, cfg.slack_bins)
    deltas = np.zeros(shape, dtype=int)
    visits = np.zeros(shape, dtype=bool)
    table = policy.agent.table
    for u in range(cfg.util_bins):
        for t in range(cfg.trend_bins):
            for o in range(cfg.opp_bins):
                for s in range(cfg.slack_bins):
                    idx = policy.featurizer.space.encode((u, t, o, s))
                    action = table.argmax(idx)
                    deltas[u, t, o, s] = cfg.action_deltas[action]
                    visits[u, t, o, s] = bool(
                        np.any(table.row(idx) != table.initial_value)
                    )
    return DecisionSurface(deltas=deltas, visits=visits)


def sanity_report(policy: RLPowerManagementPolicy) -> str:
    """A short plain-language reading of the learned behaviour."""
    surface = decision_surface(policy)
    cfg = policy.config
    lines = [f"coverage: {surface.coverage:.1%} of states visited"]
    try:
        relaxed = surface.mean_delta(slack_bin=cfg.slack_bins - 1)
        lines.append(f"relaxed slack: mean delta {relaxed:+.2f}")
    except PolicyError:
        lines.append("relaxed slack: (no visited states)")
    try:
        critical = surface.mean_delta(slack_bin=0)
        lines.append(f"critical slack: mean delta {critical:+.2f}")
    except PolicyError:
        lines.append("critical slack: (no visited states)")
    return "\n".join(lines)
