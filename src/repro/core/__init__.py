"""The paper's contribution: the RL power-management policy and trainer."""

from repro.core.checkpoint import load_policies, save_policies
from repro.core.config import PolicyConfig
from repro.core.introspect import DecisionSurface, decision_surface, sanity_report
from repro.core.policy import (
    DoubleQPowerManagementPolicy,
    RLPowerManagementPolicy,
    SarsaPowerManagementPolicy,
)
from repro.core.predictor import WorkloadPredictor
from repro.core.state import StateFeaturizer
from repro.core.trainer import (
    EpisodeRecord,
    TrainingResult,
    evaluate_policy,
    make_policies,
    train_curriculum,
    train_policy,
)

__all__ = [
    "DecisionSurface",
    "DoubleQPowerManagementPolicy",
    "EpisodeRecord",
    "PolicyConfig",
    "RLPowerManagementPolicy",
    "SarsaPowerManagementPolicy",
    "StateFeaturizer",
    "TrainingResult",
    "WorkloadPredictor",
    "decision_surface",
    "evaluate_policy",
    "load_policies",
    "make_policies",
    "sanity_report",
    "save_policies",
    "train_curriculum",
    "train_policy",
]
