"""Episode-based training and evaluation drivers for the RL policy.

The paper's policy learns online; for reproducible tables we train it
over a fixed number of episodes of a scenario (each episode a fresh
seeded trace) and then evaluate greedily on a held-out seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.config import PolicyConfig
from repro.core.policy import RLPowerManagementPolicy
from repro.errors import PolicyError
from repro.obs.learn import LearnRecorder, learn_record
from repro.power.model import PowerModel
from repro.rl.stats import TDErrorStats
from repro.sim.engine import Simulator
from repro.sim.result import SimulationResult
from repro.soc.chip import Chip
from repro.workload.scenarios import Scenario
from repro.workload.trace import Trace


@dataclass(frozen=True)
class EpisodeRecord:
    """Summary of one training episode.

    The convergence fields (``td_error_mean_abs``, ``epsilon``,
    ``reward``) aggregate over the episode's updates across all
    clusters' policies — the per-episode curve the paper's E5 experiment
    and ``repro trace`` report.
    """

    episode: int
    total_energy_j: float
    mean_qos: float
    energy_per_qos_j: float
    q_coverage: float
    td_error_mean_abs: float = 0.0
    epsilon: float = 0.0
    reward: float = 0.0


@dataclass
class TrainingResult:
    """Outcome of :func:`train_policy`.

    Attributes:
        policies: One trained policy per cluster name; still in online
            mode (set ``online=False`` to freeze, or use
            :func:`evaluate_policy`).
        history: Per-episode learning curve (E5's data).
    """

    policies: dict[str, RLPowerManagementPolicy]
    history: list[EpisodeRecord] = field(default_factory=list)

    @property
    def final_energy_per_qos(self) -> float:
        if not self.history:
            raise PolicyError("no training episodes recorded")
        return self.history[-1].energy_per_qos_j


def make_policies(
    chip: Chip, config: PolicyConfig | None = None
) -> dict[str, RLPowerManagementPolicy]:
    """One fresh policy instance per cluster, with decorrelated seeds."""
    base = (config or PolicyConfig()).seed
    policies: dict[str, RLPowerManagementPolicy] = {}
    for i, name in enumerate(chip.cluster_names):
        cfg = config or PolicyConfig()
        if i > 0:
            # Decorrelate exploration across clusters.  replace() keeps
            # every other field — including ones added later — intact.
            cfg = replace(cfg, seed=base + 1000 * i)
        policies[name] = RLPowerManagementPolicy(cfg, online=True)
    return policies


def train_policy(
    chip: Chip,
    scenario: Scenario,
    episodes: int = 12,
    episode_duration_s: float = 30.0,
    base_seed: int = 0,
    config: PolicyConfig | None = None,
    interval_s: float = 0.01,
    power_model: PowerModel | None = None,
    policies: dict[str, RLPowerManagementPolicy] | None = None,
    recorder: LearnRecorder | None = None,
    episode_offset: int = 0,
) -> TrainingResult:
    """Train the RL policy on a scenario over several episodes.

    Args:
        chip: The MPSoC to control.
        scenario: Workload scenario; each episode draws a fresh seed.
        episodes: Number of training episodes.
        episode_duration_s: Simulated seconds per episode.
        base_seed: First trace seed; episode ``k`` uses ``base_seed + k``.
        config: Policy configuration (shared across clusters).
        interval_s: DVFS sampling interval.
        power_model: Chip power model (default model when omitted).
        policies: Pre-existing policies to continue training (e.g. for
            curriculum over several scenarios); fresh ones when omitted.
        recorder: Learning ledger to append one record per episode to.
            Training is bit-identical with or without one — the
            recorder only *reads* learner state (greedy snapshots,
            Q norms, TD statistics) after each episode.
        episode_offset: Added to the ledger's ``episode`` field so
            curriculum stages and resumed runs keep a global index
            (the returned history stays zero-based regardless).

    Returns:
        A :class:`TrainingResult` with the per-episode learning curve.
    """
    if episodes < 1:
        raise PolicyError(f"need at least one episode: {episodes}")
    policies = policies or make_policies(chip, config)
    missing = set(chip.cluster_names) - set(policies)
    if missing:
        raise PolicyError(f"no policy for clusters: {sorted(missing)}")
    power_model = power_model or PowerModel()

    prev_greedy: dict[str, np.ndarray] | None = None
    if recorder is not None:
        prev_greedy = _greedy_snapshot(policies)
    history: list[EpisodeRecord] = []
    reward_before = sum(p.cumulative_reward for p in policies.values())
    for episode in range(episodes):
        trace = scenario.trace(episode_duration_s, seed=base_seed + episode)
        sim = Simulator(
            chip, trace, policies, power_model=power_model, interval_s=interval_s
        )
        result = sim.run()
        record = _episode_record(episode, result, policies, reward_before)
        reward_before += record.reward
        history.append(record)
        _emit_episode_obs(record)
        if recorder is not None and prev_greedy is not None:
            greedy = _greedy_snapshot(policies)
            _record_episode(
                recorder, record, policies, scenario.name,
                churn=_policy_churn(prev_greedy, greedy),
                episode_offset=episode_offset,
            )
            prev_greedy = greedy
    return TrainingResult(policies=policies, history=history)


def _greedy_snapshot(
    policies: dict[str, RLPowerManagementPolicy],
) -> dict[str, np.ndarray]:
    """Greedy action per state for every bound policy's Q-table."""
    return {
        name: np.argmax(p.agent.table.values, axis=1)
        for name, p in policies.items()
        if p.agent is not None
    }


def _policy_churn(
    before: dict[str, np.ndarray], after: dict[str, np.ndarray]
) -> float:
    """Fraction of states whose greedy action changed between snapshots.

    Measured over the clusters present in both snapshots; a policy whose
    table only came into existence this episode contributes nothing (the
    first episode of a fresh run therefore reports 0.0 churn).
    """
    changed = 0
    total = 0
    for name, current in after.items():
        prev = before.get(name)
        if prev is None or prev.shape != current.shape:
            continue
        changed += int(np.count_nonzero(prev != current))
        total += int(current.size)
    return changed / total if total else 0.0


def _record_episode(
    recorder: LearnRecorder,
    record: EpisodeRecord,
    policies: dict[str, RLPowerManagementPolicy],
    scenario_name: str,
    churn: float,
    episode_offset: int,
) -> None:
    """Append one episode's learning record to the ledger."""
    sq = 0.0
    peak = 0.0
    merged = TDErrorStats()
    for p in policies.values():
        if p.agent is None:
            continue
        values = p.agent.table.values
        sq += float(np.sum(values * values))
        peak = max(peak, float(np.max(np.abs(values))))
        merged = merged.merge(p.agent.td_stats)
    recorder.log(learn_record(
        episode=episode_offset + record.episode,
        scenario=scenario_name,
        reward=record.reward,
        td_error_mean_abs=record.td_error_mean_abs,
        td_error_var=merged.variance,
        epsilon=record.epsilon,
        q_norm_l2=math.sqrt(sq),
        q_max_abs=peak,
        coverage=record.q_coverage,
        churn=churn,
        energy_per_qos_j=record.energy_per_qos_j,
        mean_qos=record.mean_qos,
        updates=merged.count,
    ))


def _episode_record(
    episode: int,
    result: SimulationResult,
    policies: dict[str, RLPowerManagementPolicy],
    reward_before: float,
) -> EpisodeRecord:
    """One episode's summary, with cross-cluster convergence aggregates."""
    snapshots = [p.convergence_snapshot() for p in policies.values()]
    updates = sum(s["updates"] for s in snapshots)
    td_mean = (
        sum(s["td_error_mean_abs"] * s["updates"] for s in snapshots) / updates
        if updates
        else 0.0
    )
    reward_now = sum(p.cumulative_reward for p in policies.values())
    return EpisodeRecord(
        episode=episode,
        total_energy_j=result.total_energy_j,
        mean_qos=result.qos.mean_qos,
        energy_per_qos_j=result.energy_per_qos_j,
        q_coverage=max(s["q_coverage"] for s in snapshots),
        td_error_mean_abs=td_mean,
        epsilon=max(s["epsilon"] for s in snapshots),
        reward=reward_now - reward_before,
    )


def _emit_episode_obs(record: EpisodeRecord) -> None:
    """Publish one episode's convergence metrics when observability is on."""
    from repro.obs import OBS

    if not OBS.enabled:
        return
    m = OBS.metrics
    m.counter("rl.episodes").inc()
    m.histogram("rl.td_error_mean_abs").observe(record.td_error_mean_abs)
    m.gauge("rl.epsilon").set(record.epsilon)
    m.gauge("rl.q_coverage").set(record.q_coverage)
    m.gauge("rl.last_episode_reward").set(record.reward)
    OBS.tracer.instant(
        "rl.episode",
        cat="rl",
        episode=record.episode,
        td_error_mean_abs=record.td_error_mean_abs,
        epsilon=record.epsilon,
        q_coverage=record.q_coverage,
        reward=record.reward,
        energy_per_qos_j=record.energy_per_qos_j,
        mean_qos=record.mean_qos,
    )


def train_curriculum(
    chip: Chip,
    scenarios: list[Scenario],
    episodes_per_scenario: int = 8,
    episode_duration_s: float = 20.0,
    base_seed: int = 0,
    config: PolicyConfig | None = None,
    interval_s: float = 0.01,
    power_model: PowerModel | None = None,
    recorder: LearnRecorder | None = None,
) -> TrainingResult:
    """Train one policy set across several scenarios in sequence.

    The same policies carry their Q-tables through the whole curriculum,
    producing a generalist (the paper's "regardless of the application
    scenario" deployment mode) rather than a per-scenario specialist.
    The returned history concatenates all scenarios' episodes; seeds are
    offset per scenario so no trace repeats.  When a ``recorder`` is
    given, ledger episodes carry the concatenated (global) index.

    Raises:
        PolicyError: On an empty curriculum.
    """
    if not scenarios:
        raise PolicyError("curriculum needs at least one scenario")
    policies = make_policies(chip, config)
    history: list[EpisodeRecord] = []
    for i, scenario in enumerate(scenarios):
        result = train_policy(
            chip,
            scenario,
            episodes=episodes_per_scenario,
            episode_duration_s=episode_duration_s,
            base_seed=base_seed + 10_000 * i,
            config=config,
            interval_s=interval_s,
            power_model=power_model,
            policies=policies,
            recorder=recorder,
            episode_offset=len(history),
        )
        offset = len(history)
        history.extend(
            replace(r, episode=offset + r.episode) for r in result.history
        )
    return TrainingResult(policies=policies, history=history)


def evaluate_policy(
    chip: Chip,
    policies: dict[str, RLPowerManagementPolicy],
    trace: Trace,
    interval_s: float = 0.01,
    power_model: PowerModel | None = None,
    record_samples: bool = False,
) -> SimulationResult:
    """Run trained policies greedily (no exploration, no updates).

    The online flags are restored afterwards, so training can continue.
    """
    saved = {name: p.online for name, p in policies.items()}
    try:
        for p in policies.values():
            p.online = False
        sim = Simulator(
            chip,
            trace,
            policies,
            power_model=power_model or PowerModel(),
            interval_s=interval_s,
            record_samples=record_samples,
        )
        return sim.run()
    finally:
        for name, p in policies.items():
            p.online = saved[name]
