"""Saving and restoring trained policies.

A checkpoint is a directory: one JSON manifest with the policy
configuration and geometry, plus one ``.npz`` Q-table per cluster.  This
is what a deployment would flash/ship: the learned table plus the exact
featurisation that indexes it.

Manifest format 2 stamps the simulation engine version
(:data:`repro.sim.engine.ENGINE_VERSION`) the tables were trained
under; loading under a different engine contract is refused, because a
Q-table indexed by one engine's numerics can be silently wrong under
another's.  Format-1 checkpoints (pre-stamp) still load.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from repro.core.config import PolicyConfig
from repro.core.policy import RLPowerManagementPolicy
from repro.errors import PolicyError
from repro.rl.exploration import EpsilonSchedule
from repro.rl.qtable import QTable
from repro.sim.engine import ENGINE_VERSION
from repro.soc.chip import Chip

_MANIFEST = "policy.json"
_FORMAT_VERSION = 2
#: Manifest formats this loader still understands.  Format 1 predates
#: the engine-version stamp, so it loads without the staleness check.
_SUPPORTED_VERSIONS = (1, 2)


def _config_to_dict(config: PolicyConfig) -> dict:
    data = asdict(config)
    data["action_deltas"] = list(config.action_deltas)
    return data


def _config_from_dict(data: dict) -> PolicyConfig:
    data = dict(data)
    data["epsilon"] = EpsilonSchedule(**data["epsilon"])
    data["action_deltas"] = tuple(data["action_deltas"])
    return PolicyConfig(**data)


def save_policies(
    policies: dict[str, RLPowerManagementPolicy], directory: str | Path
) -> Path:
    """Write a checkpoint for a set of per-cluster policies.

    Args:
        policies: Trained (bound) policies keyed by cluster name.
        directory: Target directory; created if missing.

    Returns:
        The checkpoint directory path.

    Raises:
        PolicyError: If any policy has not been trained/bound yet.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest: dict = {
        "version": _FORMAT_VERSION,
        "engine_version": ENGINE_VERSION,
        "clusters": {},
    }
    for name, policy in policies.items():
        if policy.agent is None or policy.featurizer is None:
            raise PolicyError(f"policy for cluster {name!r} has not been trained")
        table_file = f"qtable_{name}.npz"
        policy.agent.table.save(directory / table_file)
        manifest["clusters"][name] = {
            "config": _config_to_dict(policy.config),
            "n_opps": policy.featurizer.n_opps,
            "table_file": table_file,
            "episodes": policy.episodes,
        }
    (directory / _MANIFEST).write_text(json.dumps(manifest, indent=1))
    return directory


def load_policies(
    directory: str | Path, chip: Chip | None = None
) -> dict[str, RLPowerManagementPolicy]:
    """Restore policies from a checkpoint directory.

    The restored policies are in evaluation mode (``online=False``);
    flip the flag to resume learning.

    Args:
        directory: A directory written by :func:`save_policies`.
        chip: Optional chip to validate against — cluster names must
            match and each cluster's OPP-table size must equal the
            checkpointed geometry.

    Raises:
        PolicyError: On a missing/corrupt manifest or a chip mismatch.
    """
    directory = Path(directory)
    manifest_path = directory / _MANIFEST
    if not manifest_path.is_file():
        raise PolicyError(f"no checkpoint manifest at {manifest_path}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise PolicyError(f"corrupt checkpoint manifest: {exc}") from exc
    if manifest.get("version") not in _SUPPORTED_VERSIONS:
        raise PolicyError(
            f"unsupported checkpoint version {manifest.get('version')!r}"
        )
    saved_engine = manifest.get("engine_version")
    if manifest["version"] >= 2 and saved_engine != ENGINE_VERSION:
        raise PolicyError(
            f"checkpoint at {directory} was trained under engine version "
            f"{saved_engine!r} but this build runs {ENGINE_VERSION!r}; "
            "retrain (repro train --save) before serving it"
        )

    clusters: dict = manifest["clusters"]
    if chip is not None:
        missing = set(chip.cluster_names) - set(clusters)
        if missing:
            raise PolicyError(f"checkpoint lacks clusters: {sorted(missing)}")

    policies: dict[str, RLPowerManagementPolicy] = {}
    for name, entry in clusters.items():
        try:
            config = _config_from_dict(entry["config"])
            n_opps = int(entry["n_opps"])
            table = QTable.load(directory / entry["table_file"])
        except (KeyError, TypeError, ValueError) as exc:
            raise PolicyError(f"corrupt checkpoint entry for {name!r}: {exc}") from exc
        if chip is not None:
            actual = len(chip.cluster(name).spec.opp_table)
            if actual != n_opps:
                raise PolicyError(
                    f"cluster {name!r}: checkpoint trained on {n_opps} OPPs, "
                    f"chip has {actual}"
                )
        policy = RLPowerManagementPolicy(config, online=False)
        # Materialise the featurizer/agent, then install the saved table.
        from repro.core.state import StateFeaturizer

        policy.featurizer = StateFeaturizer(config, n_opps)
        policy.agent = policy._make_agent(policy.featurizer.n_states)
        if table.values.shape != policy.agent.table.values.shape:
            raise PolicyError(
                f"cluster {name!r}: saved table shape {table.values.shape} does "
                f"not match config geometry {policy.agent.table.values.shape}"
            )
        policy.agent.table = table
        policy.episodes = int(entry.get("episodes", 0))
        policies[name] = policy
    return policies
