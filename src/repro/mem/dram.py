"""LPDDR DRAM power model.

Mobile SoC energy is not all CPU: the LPDDR interface contributes a
bandwidth-dependent term plus state-dependent background power.  The
model has three states with the structure of LPDDR4 datasheet power
numbers:

* ``active``      — at least one bank open, traffic flowing;
* ``standby``     — clocked but no traffic this interval;
* ``self-refresh``— entered after ``self_refresh_after_s`` of no traffic.

Traffic is derived from executed work: each reference-core cycle of a
work unit moves ``bytes_per_cycle`` bytes on average (an L2-miss-rate
proxy).  The engine integrates the resulting power into the uncore
energy component when a memory model is attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass
class DRAMModel:
    """Bandwidth- and state-dependent LPDDR power.

    Attributes:
        bytes_per_cycle: Average bytes of DRAM traffic per executed
            reference-core cycle (workload memory intensity).  Mobile
            SPEC-class mixes sit around 0.05-0.3 B/cycle.
        energy_per_byte_j: Access energy, joules per byte moved.  LPDDR4
            is in the tens of pJ/byte range including I/O.
        active_background_w: Background power while actively serving.
        standby_w: Clocked-idle background power.
        self_refresh_w: Self-refresh power.
        self_refresh_after_s: Contiguous idle time before the controller
            drops to self-refresh.
        peak_bandwidth_bps: Interface ceiling; demanded traffic above it
            is clamped (and reported via :attr:`saturated_intervals`).
    """

    bytes_per_cycle: float = 0.12
    energy_per_byte_j: float = 40e-12
    active_background_w: float = 0.10
    standby_w: float = 0.035
    self_refresh_w: float = 0.006
    self_refresh_after_s: float = 0.05
    peak_bandwidth_bps: float = 12.8e9
    saturated_intervals: int = 0
    _idle_run_s: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.bytes_per_cycle < 0 or self.energy_per_byte_j < 0:
            raise ConfigurationError("traffic parameters must be non-negative")
        if not self.self_refresh_w <= self.standby_w <= self.active_background_w:
            raise ConfigurationError(
                "background powers must order self-refresh <= standby <= active"
            )
        if self.self_refresh_after_s < 0:
            raise ConfigurationError("self-refresh threshold must be non-negative")
        if self.peak_bandwidth_bps <= 0:
            raise ConfigurationError("peak bandwidth must be positive")

    def interval_power_w(self, completed_work: float, interval_s: float) -> float:
        """Average DRAM power over one interval.

        Args:
            completed_work: Reference-core cycles executed chip-wide in
                the interval.
            interval_s: Interval length in seconds.

        Returns:
            Average power in watts (background state + access energy).
        """
        if completed_work < 0:
            raise ConfigurationError(f"work must be non-negative: {completed_work}")
        if interval_s <= 0:
            raise ConfigurationError(f"interval must be positive: {interval_s}")

        demanded_bps = completed_work * self.bytes_per_cycle / interval_s
        bandwidth_bps = min(demanded_bps, self.peak_bandwidth_bps)
        if demanded_bps > self.peak_bandwidth_bps:
            self.saturated_intervals += 1

        if completed_work > 0:
            self._idle_run_s = 0.0
            background = self.active_background_w
        else:
            self._idle_run_s += interval_s
            if self._idle_run_s >= self.self_refresh_after_s:
                background = self.self_refresh_w
            else:
                background = self.standby_w
        return background + bandwidth_bps * self.energy_per_byte_j

    @property
    def state(self) -> str:
        """The background state the model is currently in."""
        if self._idle_run_s == 0.0:
            return "active"
        if self._idle_run_s >= self.self_refresh_after_s:
            return "self-refresh"
        return "standby"

    def reset(self) -> None:
        """Return to the active state and clear counters."""
        self._idle_run_s = 0.0
        self.saturated_intervals = 0
