"""Memory substrate: LPDDR DRAM power model."""

from repro.mem.dram import DRAMModel

__all__ = ["DRAMModel"]
