"""Baseline DVFS governors (Linux/Android cpufreq reimplementations).

``BASELINE_SIX`` lists the six previous governors the paper compares
against; :func:`repro.governors.base.create` builds any registered
governor by name.
"""

from repro.governors.base import Governor, available, create, register
from repro.governors.tunables import create_many, create_tuned, tunables_of
from repro.governors.conservative import ConservativeGovernor
from repro.governors.interactive import InteractiveGovernor
from repro.governors.ondemand import OndemandGovernor
from repro.governors.performance import PerformanceGovernor
from repro.governors.powersave import PowersaveGovernor
from repro.governors.scenario_aware import ScenarioAwareGovernor
from repro.governors.schedutil import SchedutilGovernor
from repro.governors.userspace import UserspaceGovernor

register("performance", PerformanceGovernor)
register("powersave", PowersaveGovernor)
register("userspace", UserspaceGovernor)
register("ondemand", OndemandGovernor)
register("conservative", ConservativeGovernor)
register("interactive", InteractiveGovernor)
register("schedutil", SchedutilGovernor)
register("scenario-aware", ScenarioAwareGovernor)

BASELINE_SIX = [
    "performance",
    "powersave",
    "userspace",
    "ondemand",
    "conservative",
    "interactive",
]
"""The six previous DVFS governors of the paper's comparison."""

__all__ = [
    "BASELINE_SIX",
    "ConservativeGovernor",
    "Governor",
    "InteractiveGovernor",
    "OndemandGovernor",
    "PerformanceGovernor",
    "PowersaveGovernor",
    "ScenarioAwareGovernor",
    "SchedutilGovernor",
    "UserspaceGovernor",
    "available",
    "create",
    "create_many",
    "create_tuned",
    "register",
    "tunables_of",
]
