"""The ``powersave`` governor: pin the cluster at its lowest OPP.

Minimises instantaneous power but starves deadline work, so its energy
*per delivered QoS* is typically poor — the lower anchor of the paper's
comparison.
"""

from __future__ import annotations

from repro.governors.base import Governor
from repro.sim.telemetry import ClusterObservation


class PowersaveGovernor(Governor):
    """Always selects the bottom operating point."""

    name = "powersave"

    def decide(self, obs: ClusterObservation) -> int:
        return 0
