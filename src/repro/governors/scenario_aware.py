"""Scenario-aware "just enough" governor.

A reimplementation of the heuristic policy from the authors' companion
paper (Han et al., *Proactive Scenario Characteristic-Aware Online Power
Management on Mobile Systems*, IEEE Access 2020): characterise the
running scenario online by its demanded work and parallelism and provide
"just enough processing speed to process the requested amount of work".

Unlike the cpufreq baselines it provisions from *demand* (work arrived
plus backlog) rather than utilisation, so it does not share their
saturation blind spot; unlike the paper's RL policy it does not learn a
value function — it is a fixed formula over the same observations.
Included as an extra (seventh+) comparator and as the strongest
heuristic the RL policy has to beat.
"""

from __future__ import annotations

from repro.errors import GovernorError
from repro.governors.base import Governor
from repro.sim.telemetry import ClusterObservation
from repro.soc.cluster import Cluster


class ScenarioAwareGovernor(Governor):
    """Demand-predictive "just enough" frequency provisioning.

    Each interval it estimates next-interval demand as an EWMA of
    arriving work, adds the current backlog with an urgency boost, and
    picks the lowest OPP that serves it at the target utilisation.

    Args:
        target_util: Utilisation the provisioned frequency should yield
            (headroom against estimation error).
        ewma_alpha: Demand-tracking coefficient.
        urgency_boost: Extra provisioning factor applied as queue slack
            approaches zero (clears backlog before deadlines hit).
    """

    name = "scenario-aware"

    def __init__(
        self,
        target_util: float = 0.8,
        ewma_alpha: float = 0.4,
        urgency_boost: float = 2.0,
    ):
        super().__init__()
        if not 0 < target_util <= 1:
            raise GovernorError(f"target_util must be in (0, 1]: {target_util}")
        if not 0 < ewma_alpha <= 1:
            raise GovernorError(f"ewma_alpha must be in (0, 1]: {ewma_alpha}")
        if urgency_boost < 1:
            raise GovernorError(f"urgency_boost must be >= 1: {urgency_boost}")
        self.target_util = target_util
        self.ewma_alpha = ewma_alpha
        self.urgency_boost = urgency_boost
        self._demand = 0.0

    def reset(self, cluster: Cluster) -> None:
        super().reset(cluster)
        self._demand = 0.0

    def decide(self, obs: ClusterObservation) -> int:
        cluster = self.cluster
        table = cluster.spec.opp_table
        # Track demand (work per interval) with an EWMA.
        self._demand += self.ewma_alpha * (obs.arrived_work - self._demand)
        # Work to serve next interval: predicted arrivals plus the
        # backlog, boosted when the queue is getting urgent.
        boost = 1.0 + (self.urgency_boost - 1.0) * (1.0 - obs.qos_slack)
        work = (self._demand + obs.queue_work) * boost
        if work <= 0:
            return 0
        # Frequency so that the cluster serves `work` at target_util.
        capacity_per_hz = (
            cluster.spec.core.capacity * cluster.n_cores * obs.interval_s
        )
        required_hz = work / (capacity_per_hz * self.target_util)
        return table.ceil_index(required_hz)
