"""The ``schedutil`` governor (modern kernel cpufreq).

Uses scheduler utilisation directly:

    next_freq = C * max_freq * util_at_max

with C = 1.25 headroom, as in ``kernel/sched/cpufreq_schedutil.c``.  The
utilisation signal is frequency-invariant (rescaled to the top OPP), so
unlike ondemand it does not conflate "busy at a low clock" with "needs
the top clock".  Included as a seventh, newer baseline beyond the
paper's six.
"""

from __future__ import annotations

from repro.errors import GovernorError
from repro.governors.base import Governor
from repro.sim.telemetry import ClusterObservation


class SchedutilGovernor(Governor):
    """Utilisation-proportional governor with fixed headroom.

    Args:
        headroom: The C factor (kernel value 1.25).
    """

    name = "schedutil"

    def __init__(self, headroom: float = 1.25):
        super().__init__()
        if headroom < 1.0:
            raise GovernorError(f"headroom must be >= 1: {headroom}")
        self.headroom = headroom

    def decide(self, obs: ClusterObservation) -> int:
        table = self.cluster.spec.opp_table
        util_at_max = obs.max_core_utilization * (obs.freq_hz / obs.max_freq_hz)
        target_hz = self.headroom * util_at_max * table.max_freq_hz
        return table.ceil_index(target_hz)
