"""The ``userspace`` governor: a fixed OPP chosen by the user.

Models a statically tuned frequency cap, the third of the classic
kernel governors.  The default of the middle OPP reflects the common
"set it to a mid frequency" usage.
"""

from __future__ import annotations

from repro.errors import GovernorError
from repro.governors.base import Governor
from repro.sim.telemetry import ClusterObservation
from repro.soc.cluster import Cluster


class UserspaceGovernor(Governor):
    """Holds the cluster at a fixed OPP index.

    Args:
        opp_index: The index to hold; ``None`` selects the middle of the
            bound cluster's table at reset time.
    """

    name = "userspace"

    def __init__(self, opp_index: int | None = None):
        super().__init__()
        if opp_index is not None and opp_index < 0:
            raise GovernorError(f"userspace OPP index must be >= 0: {opp_index}")
        self._requested = opp_index
        self._index = 0

    def reset(self, cluster: Cluster) -> None:
        super().reset(cluster)
        if self._requested is None:
            self._index = cluster.spec.opp_table.max_index // 2
        else:
            self._index = cluster.spec.opp_table.clamp_index(self._requested)

    def decide(self, obs: ClusterObservation) -> int:
        return self._index
