"""The ``ondemand`` governor (Linux cpufreq dbs semantics).

Algorithm, per sampling interval, as in the kernel's
``drivers/cpufreq/cpufreq_ondemand.c``:

* if the busiest core's load exceeds ``up_threshold`` (default 80 %),
  jump straight to the maximum frequency and stay there for at least
  ``sampling_down_factor`` further samples;
* otherwise pick the lowest table frequency covering
  ``load * max_freq / up_threshold`` — proportional provisioning with
  the same headroom the threshold implies.
"""

from __future__ import annotations

from repro.errors import GovernorError
from repro.governors.base import Governor
from repro.sim.telemetry import ClusterObservation
from repro.soc.cluster import Cluster


class OndemandGovernor(Governor):
    """Reactive jump-to-max / proportional-down governor.

    Args:
        up_threshold: Load fraction above which the governor jumps to the
            top OPP (kernel default 0.80).
        sampling_down_factor: Number of samples to hold the top OPP after
            a jump before re-evaluating downward (kernel default 1).
    """

    name = "ondemand"

    def __init__(self, up_threshold: float = 0.80, sampling_down_factor: int = 1):
        super().__init__()
        if not 0 < up_threshold <= 1:
            raise GovernorError(f"up_threshold must be in (0, 1]: {up_threshold}")
        if sampling_down_factor < 1:
            raise GovernorError(
                f"sampling_down_factor must be >= 1: {sampling_down_factor}"
            )
        self.up_threshold = up_threshold
        self.sampling_down_factor = sampling_down_factor
        self._hold = 0

    def reset(self, cluster: Cluster) -> None:
        super().reset(cluster)
        self._hold = 0

    def decide(self, obs: ClusterObservation) -> int:
        table = self.cluster.spec.opp_table
        load = obs.max_core_utilization
        if load >= self.up_threshold:
            self._hold = self.sampling_down_factor
            return table.max_index
        if self._hold > 0:
            self._hold -= 1
            return table.max_index
        # Below threshold: provision load*max/up_threshold at current freq
        # scale, then round up to a table frequency.
        target_hz = load * obs.freq_hz / self.up_threshold
        return table.ceil_index(target_hz)
