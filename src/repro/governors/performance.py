"""The ``performance`` governor: pin the cluster at its highest OPP.

Maximises QoS at maximal energy; the upper anchor of the energy/QoS
trade-off in the paper's comparison.
"""

from __future__ import annotations

from repro.governors.base import Governor
from repro.sim.telemetry import ClusterObservation


class PerformanceGovernor(Governor):
    """Always selects the top operating point."""

    name = "performance"

    def decide(self, obs: ClusterObservation) -> int:
        return obs.n_opps - 1
